#!/usr/bin/env python
"""Repo-root entry point for the parameter-sweep harness.

Usage (from the repository root, no install needed)::

    python experiments/sweep.py cells    --spec ci
    python experiments/sweep.py run      --spec ci --results-dir .sweep-results
    python experiments/sweep.py snapshot --spec ci --results-dir .sweep-results
    python experiments/sweep.py compare
    python experiments/sweep.py report

The real implementation lives in :mod:`repro.experiments.sweep`; this
shim only makes ``src/`` importable when the package is not installed.
"""

import sys
from pathlib import Path

try:
    from repro.experiments.sweep.cli import main
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.experiments.sweep.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
