"""Trace analysis: phases, ROIs, and what the classifier sees.

Run with::

    python examples/trace_analysis.py

Generates one user's traces, prints the zoom-level sawtooth (the
paper's Figure 9 view), steps Algorithm 1's ROI tracker through a
session, and shows the SVM's phase predictions next to the ground-truth
labels.
"""

from repro.core.roi import ROITracker
from repro.modis.dataset import MODISDataset
from repro.phases.classifier import PhaseClassifier
from repro.users.study import run_study


def sawtooth_row(level: int, max_level: int) -> str:
    """Render one zoom level as an indented bar (coarse at left)."""
    return "  " * level + "#" + " " * (2 * (max_level - level))


def main() -> None:
    print("building world and study...")
    dataset = MODISDataset.build(size=1024, tile_size=32, days=1, seed=7)
    study = run_study(dataset, num_users=4, seed=17)

    # ------------------------------------------------------------------
    # 1. The zoom-level sawtooth (Figure 9).
    # ------------------------------------------------------------------
    trace = max(study.by_task(2), key=len)
    max_level = dataset.num_levels - 1
    print(
        f"\nzoom-level sawtooth: user {trace.user_id}, task 2 "
        f"({len(trace)} requests)"
    )
    print(f"{'req':>4} {'move':<12} level 0 {'-' * (2 * max_level - 8)} level {max_level}")
    for request in trace.requests:
        move = request.move.value if request.move else "(start)"
        print(f"{request.index:>4} {move:<12} {sawtooth_row(request.tile.level, max_level)}")

    # ------------------------------------------------------------------
    # 2. Algorithm 1: ROI tracking through the same session.
    # ------------------------------------------------------------------
    print("\nAlgorithm 1 (UpdateROI) through that session:")
    tracker = ROITracker()
    previous = ()
    for request in trace.requests:
        roi = tracker.update(request.move, request.tile)
        if roi != previous:
            tiles = ", ".join(str(t) for t in roi)
            print(f"  after request {request.index}: ROI = [{tiles}]")
            previous = roi
    if not previous:
        print("  (no zoom-in/zoom-out cycle completed: ROI stayed empty)")

    # ------------------------------------------------------------------
    # 3. Phase classification vs ground truth.
    # ------------------------------------------------------------------
    print(f"\ntraining classifier on the other users; predicting user {trace.user_id}...")
    classifier = PhaseClassifier()
    classifier.fit_traces(study.excluding_user(trace.user_id))
    agree = 0
    print(f"{'req':>4} {'truth':<12} {'predicted':<12}")
    for request in trace.requests:
        predicted = classifier.predict(request.tile, request.move)
        match = "" if predicted is request.phase else "  <-- miss"
        if predicted is request.phase:
            agree += 1
        print(f"{request.index:>4} {request.phase.value:<12} {predicted.value:<12}{match}")
    print(f"\nagreement: {agree}/{len(trace)} = {agree / len(trace):.0%}")


if __name__ == "__main__":
    main()
