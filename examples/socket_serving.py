"""Serve tiles over a real TCP socket, then browse them as a client.

Run with::

    python examples/socket_serving.py [--framing lines|length] [--port 0]
                                      [--push] [--payload json|binary|mixed]
                                      [--fidelity off|progressive]

Starts the ForeCache socket server on a loopback port (ephemeral by
default), connects both clients — the blocking ``SocketTransport`` and
the asyncio ``AsyncSocketTransport`` — replays a short browsing walk
through each, and shuts the server down gracefully.  Every byte crosses
a real socket: framed JSON requests in, framed JSON tile payloads out.
With ``--push`` both sides negotiate continuous push prefetch: the
server streams predicted tiles into each client's push cache and
requests those tiles answer locally, without touching the wire.
``--payload binary`` has both clients negotiate the dense binary tile
encoding (raw array bytes instead of JSON float lists — several times
fewer bytes per tile); ``--payload mixed`` keeps the sync client on
JSON and the async client on binary, on the *same* server — the
encoding is a per-connection capability.  ``--fidelity progressive``
turns on the multi-resolution ladder: pushed tiles arrive as coarse
frames first and refine in place on leftover round budget, and under
overload the server answers from a cached pyramid ancestor at reduced
fidelity instead of queueing behind the backend.
"""

import argparse
import asyncio
import os

from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.middleware.client import AsyncBrowsingSession, BrowsingSession
from repro.middleware.config import PrefetchPolicy, ServiceConfig
from repro.middleware.net import (
    AsyncSocketTransport,
    SocketTransport,
    ThreadedSocketServer,
)
from repro.modis.dataset import MODISDataset
from repro.recommenders.momentum import MomentumRecommender
from repro.tiles.moves import Move

WALK = [
    Move.ZOOM_IN_NW,
    Move.ZOOM_IN_SE,
    Move.PAN_RIGHT,
    Move.PAN_DOWN,
    Move.ZOOM_OUT,
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--size", type=int, default=int(os.environ.get("REPRO_SIZE", "512"))
    )
    parser.add_argument("--framing", choices=("lines", "length"), default="lines")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--push",
        action="store_true",
        help="negotiate continuous push prefetch on both clients",
    )
    parser.add_argument(
        "--payload",
        choices=("json", "binary", "mixed"),
        default="json",
        help="tile payload encoding: json, binary, or mixed "
        "(sync client json, async client binary)",
    )
    parser.add_argument(
        "--fidelity",
        choices=("off", "progressive"),
        default="off",
        help="progressive multi-resolution fidelity: coarse push frames "
        "refined on leftover budget, degraded ancestor carves under "
        "overload (off = bit-identical to the pre-fidelity stack)",
    )
    args = parser.parse_args()
    sync_payload = "binary" if args.payload == "binary" else "json"
    async_payload = "binary" if args.payload in ("binary", "mixed") else "json"

    print(f"building a {args.size}px world...")
    dataset = MODISDataset.build(size=args.size, tile_size=32, days=1, seed=7)
    pyramid = dataset.pyramid

    def engine_factory() -> PredictionEngine:
        model = MomentumRecommender()
        return PredictionEngine(
            pyramid.grid, {model.name: model}, SingleModelStrategy(model.name)
        )

    config = ServiceConfig(
        prefetch=PrefetchPolicy(
            k=5,
            push="on" if args.push else "off",
            fidelity=args.fidelity,
        )
    )
    with ThreadedSocketServer(
        pyramid,
        config,
        engine_factory=engine_factory,
        framing=args.framing,
        port=args.port,
    ) as server:
        host, port = server.address
        print(f"serving on {host}:{port} ({args.framing} framing)\n")

        # --- blocking client ------------------------------------------
        with SocketTransport(
            host,
            port,
            pyramid=pyramid,
            framing=args.framing,
            push=args.push,
            payload=sync_payload,
        ) as transport:
            print(
                f"sync client: negotiated v{transport.server_version} "
                f"with {transport.server_name!r}, "
                f"{transport.payload} payloads"
                + (" (push enabled)" if transport.push_enabled else "")
            )
            conn = transport.connect(session_id="sync-browser")
            session = BrowsingSession(conn)
            response = session.start()
            print(f"  start  {str(session.current):>8}  "
                  f"{response.latency_seconds * 1000:7.1f} ms")
            for move in WALK:
                if move not in session.available_moves:
                    continue
                target = pyramid.grid.apply(session.current, move)
                pushed = (
                    conn.push_cache is not None
                    and target is not None
                    and target in conn.push_cache
                )
                response = session.move(move)
                source = "push" if pushed else (
                    "cache" if response.hit else "DBMS"
                )
                print(f"  {move.value:<12} {str(session.current):>8}  "
                      f"{response.latency_seconds * 1000:7.1f} ms  ({source})")
            if conn.push_cache is not None:
                print(
                    f"  push cache: {conn.push_cache.hits} local hits, "
                    f"{len(conn.push_cache)} tiles held"
                )
            conn.close()
            print(
                f"  wire: {transport.bytes_received} bytes received "
                f"({transport.payload} payloads)"
            )

        # --- asyncio client -------------------------------------------
        async def browse_async() -> tuple[int, int, str]:
            async with await AsyncSocketTransport.open(
                host,
                port,
                pyramid=pyramid,
                framing=args.framing,
                payload=async_payload,
            ) as transport:
                conn = await transport.connect(session_id="async-browser")
                session = AsyncBrowsingSession(conn)
                await session.start()
                hits = 0
                for move in WALK:
                    if move not in session.available_moves:
                        continue
                    response = await session.move(move)
                    hits += response.hit
                await conn.close()
                return hits, transport.bytes_received, transport.payload

        hits, wire_bytes, negotiated = asyncio.run(browse_async())
        print(f"\nasync client replayed the walk too ({hits} cache hits "
              "— the sync client warmed the shared cache)")
        print(
            f"  wire: {wire_bytes} bytes received ({negotiated} payloads)"
        )
    print("server drained and stopped cleanly")


if __name__ == "__main__":
    main()
