"""Beyond imagery: browsing a time-series dataset (Section 6.2).

Run with::

    python examples/timeseries_browsing.py

The paper proposes a general-purpose signature toolbox so ForeCache can
prefetch for non-imagery data — "counting outliers or computing linear
correlations may work well for prefetching time series data".  This
example builds a synthetic heart-rate-style dataset as a 2-D array
(episodes x time), registers the toolbox signatures alongside the
defaults, and uses :func:`select_best_signature` to learn which
signature predicts a browsing session best — the automatic selection
the paper lists as future work.
"""

import numpy as np

from repro.arraydb import ArraySchema, Attribute, Database, Dimension
from repro.signatures.base import SignatureRegistry
from repro.signatures.histogram import HistogramSignature
from repro.signatures.provider import SignatureProvider
from repro.signatures.selection import select_best_signature
from repro.signatures.stats import NormalSignature
from repro.signatures.toolbox import LinearCorrelationSignature, OutlierCountSignature
from repro.phases.model import AnalysisPhase
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TilePyramid
from repro.users.session import Request, Trace


def synthesize_heart_rates(episodes: int = 512, samples: int = 512) -> np.ndarray:
    """Heart-rate monitoring as a 2-D array: episodes x time.

    Baseline sinus rhythm everywhere, with a band of episodes containing
    arrhythmic spikes — the "unusually high peaks" a clinician browses
    for.
    """
    rng = np.random.default_rng(42)
    time = np.arange(samples)
    rates = 70 + 8 * np.sin(2 * np.pi * time / 97)[None, :]
    rates = rates + rng.normal(0, 2.0, (episodes, samples))
    # Arrhythmia band: episodes 180-260 spike intermittently.
    for episode in range(180, 260):
        for _ in range(rng.integers(2, 6)):
            at = rng.integers(0, samples - 8)
            rates[episode, at : at + 8] += rng.uniform(40, 70)
    # Normalize into the signature value range [-1, 1].
    return np.clip((rates - 70.0) / 70.0, -1.0, 1.0)


def browsing_session(pyramid: TilePyramid, data: np.ndarray) -> Trace:
    """A clinician's session: scan coarse, drill into the spiky band."""
    grid = pyramid.grid
    deepest = grid.deepest_level
    requests = [Request(0, grid.root, None, AnalysisPhase.FORAGING)]
    current = grid.root

    def record(move: Move, tile: TileKey, phase: AnalysisPhase) -> None:
        nonlocal current
        requests.append(Request(len(requests), tile, move, phase))
        current = tile

    # Drill toward the arrhythmia band (episodes ~180-260 of 512 -> the
    # tile whose y-range covers it), following the spikiest quadrant.
    while current.level < deepest:
        scores = {}
        for dx in (0, 1):
            for dy in (0, 1):
                child = current.child(dx, dy)
                region = pyramid.tile_region(child)
                block = data[region[0][0] : region[0][1], region[1][0] : region[1][1]]
                scores[(dx, dy)] = float(np.abs(block).max())
        (dx, dy) = max(scores, key=scores.get)
        record(
            Move.ZOOM_IN_NW if (dx, dy) == (0, 0) else
            Move.ZOOM_IN_NE if (dx, dy) == (1, 0) else
            Move.ZOOM_IN_SW if (dx, dy) == (0, 1) else Move.ZOOM_IN_SE,
            current.child(dx, dy),
            AnalysisPhase.NAVIGATION,
        )
    # Pan along the time axis comparing episodes (sensemaking).
    for move in (Move.PAN_RIGHT, Move.PAN_RIGHT, Move.PAN_DOWN, Move.PAN_RIGHT):
        target = grid.apply(current, move)
        if target is not None:
            record(move, target, AnalysisPhase.SENSEMAKING)
    return Trace(user_id=1, task_id=1, requests=requests)


def main() -> None:
    print("synthesizing heart-rate episodes...")
    data = synthesize_heart_rates()

    db = Database()
    schema = ArraySchema(
        "HR",
        attributes=(Attribute("rate"),),
        dimensions=(
            Dimension("y", 0, data.shape[0], data.shape[0]),
            Dimension("x", 0, data.shape[1], data.shape[1]),
        ),
    )
    db.create_array(schema)
    db.write("HR", "rate", data)
    pyramid = TilePyramid.build(db, "HR", tile_size=32)
    print(f"  pyramid: {pyramid.num_levels} levels")

    registry = SignatureRegistry(
        (
            NormalSignature(),
            HistogramSignature(),
            OutlierCountSignature(),
            LinearCorrelationSignature(),
        )
    )
    provider = SignatureProvider(pyramid, registry, "rate")

    print("recording a browsing session over the arrhythmia band...")
    traces = [browsing_session(pyramid, data)]

    print("selecting the best signature for this dataset (Section 6.2)...")
    result = select_best_signature(provider, traces, k=4)
    print("\nper-signature SB accuracy at k=4:")
    for name in sorted(result.scores, key=result.scores.get, reverse=True):
        marker = "  <-- selected" if name == result.best else ""
        print(f"  {name:<12} {result.scores[name]:.3f}{marker}")
    print(
        f"\nFor spiky time-series data the toolbox signature "
        f"({result.best!r}) is chosen automatically — no imagery "
        f"assumptions required."
    )


if __name__ == "__main__":
    main()
