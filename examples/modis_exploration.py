"""Full study-scale scenario: simulated scientists exploring snow cover.

Run with::

    python examples/modis_exploration.py [--size 1024] [--users 8]
        [--frontend server|service|async|socket] [--models momentum,hybrid]
        [--prefetch-mode sync|background] [--shared-hotspots off|observe|boost]

Reproduces the paper's evaluation loop end to end: build the NDSI
dataset, run a simulated user study over the three search tasks, train
every model with leave-one-user-out cross validation, and print
per-phase accuracy plus replayed latency — the content of Figures 11
and 13.

``--frontend`` chooses who serves the latency replay: the legacy
``ForeCacheServer`` (default), the ``ForeCacheService`` facade, its
asyncio front end, or the real TCP socket transport replaying over
loopback (``socket``) — all four must (and do) produce identical
virtual-time numbers.  ``--prefetch-mode background`` routes every
prefetch round through the rank-aware priority scheduler's worker pool
instead of the inline sync path (a smoke path for the concurrent
serving stack; latency numbers then depend on physical timing).
``--shared-hotspots`` turns on the cross-session popularity model
(``observe`` collects the signal, ``boost`` also acts on it — live
hotspot recommenders plus scheduler rank boost); ``off``/``observe``
leave every number bit-identical.  ``REPRO_SIZE`` / ``REPRO_USERS``
environment variables downscale the world (CI smoke runs use them).
"""

import argparse
import os

from repro.experiments.context import ExperimentContext
from repro.experiments.crossval import evaluate_engine_cv
from repro.experiments.report import Table
from repro.experiments.runner import (
    REPLAY_FRONTENDS,
    hybrid_factory,
    replay_model_latency,
)
from repro.phases.model import ALL_PHASES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--size", type=int, default=int(os.environ.get("REPRO_SIZE", "1024"))
    )
    parser.add_argument(
        "--users", type=int, default=int(os.environ.get("REPRO_USERS", "8"))
    )
    parser.add_argument(
        "--frontend",
        choices=REPLAY_FRONTENDS,
        default="server",
        help="serving front end for the latency replay",
    )
    parser.add_argument(
        "--models",
        default="momentum,hotspot,markov3,hybrid",
        help="comma-separated subset of models to evaluate",
    )
    parser.add_argument(
        "--prefetch-mode",
        choices=("sync", "background"),
        default="sync",
        help="who executes prefetch rounds during the latency replay",
    )
    parser.add_argument(
        "--shared-hotspots",
        choices=("off", "observe", "boost"),
        default="off",
        help="cross-session popularity sharing during the latency replay",
    )
    args = parser.parse_args()

    print(f"building context: {args.size}px world, {args.users} users...")
    context = ExperimentContext.build(size=args.size, num_users=args.users)
    study = context.study
    print(f"  {len(study)} traces, {study.total_requests()} requests")

    ks = (1, 3, 5, 8)
    all_factories = {
        "momentum": context.momentum_engine,
        "hotspot": context.hotspot_engine,
        "markov3": lambda tr: context.markov_engine(tr, 3),
        "hybrid": hybrid_factory(context),
    }
    selected = [name.strip() for name in args.models.split(",") if name.strip()]
    unknown = sorted(set(selected) - set(all_factories))
    if unknown:
        parser.error(f"unknown models {unknown}; choose from {sorted(all_factories)}")
    factories = {name: all_factories[name] for name in selected}

    print("\nevaluating models (leave-one-user-out)...")
    results = {}
    for name, factory in factories.items():
        results[name] = evaluate_engine_cv(study, factory, ks)
        print(f"  {name} done")

    accuracy_table = Table(
        ["model"] + [f"k={k}" for k in ks], title="\nOverall prediction accuracy"
    )
    for name, result in results.items():
        accuracy_table.add_row(name, *(result.accuracy(k) for k in ks))
    print(accuracy_table)

    for phase in ALL_PHASES:
        phase_table = Table(
            ["model"] + [f"k={k}" for k in ks],
            title=f"\nAccuracy — {phase.value}",
        )
        for name, result in results.items():
            phase_table.add_row(name, *(result.accuracy(k, phase) for k in ks))
        print(phase_table)

    print(
        f"\nreplaying latency at k=5 (virtual clock, "
        f"{args.frontend} front end, {args.prefetch_mode} prefetch, "
        f"shared hotspots {args.shared_hotspots})..."
    )
    latency_table = Table(["model", "avg_latency_ms"], title="")
    for name, factory in factories.items():
        recorder = replay_model_latency(
            context,
            factory,
            k=5,
            frontend=args.frontend,
            prefetch_mode=args.prefetch_mode,
            shared_hotspots=args.shared_hotspots,
        )
        latency_table.add_row(name, recorder.average_seconds * 1000.0)
    latency_table.add_row("(no prefetching)", 984.0)
    print(latency_table)


if __name__ == "__main__":
    main()
