"""Quickstart: build a world, start ForeCache, browse interactively.

Run with::

    python examples/quickstart.py

Builds a small synthetic satellite dataset, wires up the full
prefetching middleware (Markov + signature recommenders under the SVM
phase classifier), and drives a short browsing session — printing, for
every request, whether the middleware already had the tile waiting.
"""

from repro.core.allocation import PaperFinalStrategy
from repro.core.engine import PredictionEngine
from repro.middleware.client import BrowsingSession
from repro.middleware.config import PrefetchPolicy, ServiceConfig
from repro.middleware.service import ForeCacheService
from repro.modis.dataset import MODISDataset
from repro.phases.classifier import PhaseClassifier
from repro.recommenders.markov import MarkovRecommender
from repro.recommenders.signature_based import SignatureBasedRecommender
from repro.signatures.base import SignatureRegistry
from repro.signatures.histogram import HistogramSignature
from repro.signatures.provider import SignatureProvider
from repro.signatures.stats import NormalSignature
from repro.tiles.moves import Move
from repro.users.study import run_study


def main() -> None:
    # 1. Build the dataset: synthetic MODIS bands -> NDSI -> tile pyramid.
    print("building synthetic MODIS world (1024px, 6 zoom levels)...")
    dataset = MODISDataset.build(size=1024, tile_size=32, days=2, seed=7)

    # 2. Collect training traces (a small simulated study).
    print("running a 6-user training study...")
    study = run_study(dataset, num_users=6, seed=17)
    print(f"  {len(study)} traces, {study.total_requests()} requests")

    # 3. Train the two-level prediction engine.
    ab = MarkovRecommender(order=3)
    ab.train(study.traces)
    registry = SignatureRegistry((NormalSignature(), HistogramSignature()))
    provider = SignatureProvider(dataset.pyramid, registry, "ndsi_avg")
    sb = SignatureBasedRecommender(provider, ("normal",))
    classifier = PhaseClassifier()
    classifier.fit_traces(study.traces)
    engine = PredictionEngine(
        dataset.pyramid.grid,
        {ab.name: ab, sb.name: sb},
        PaperFinalStrategy(ab.name, sb.name),
        phase_predictor=classifier.predict,
    )

    # 4. Serve tiles with prefetching: one facade, one open session.
    service = ForeCacheService(
        dataset.pyramid, ServiceConfig(prefetch=PrefetchPolicy(k=5))
    )
    handle = service.open_session(engine)
    session = BrowsingSession(handle)

    print("\nbrowsing: zoom toward the Rockies, pan along the range\n")
    response = session.start()
    walk = [
        Move.ZOOM_IN_NW,   # toward North America
        Move.ZOOM_IN_NW,
        Move.ZOOM_IN_SE,
        Move.PAN_RIGHT,
        Move.PAN_DOWN,
        Move.ZOOM_OUT,
        Move.ZOOM_IN_SW,
    ]
    print(f"{'move':<12} {'tile':>8} {'phase':<12} {'latency':>9}  served from")
    print("-" * 58)
    print(
        f"{'(start)':<12} {str(session.current):>8} {'-':<12} "
        f"{response.latency_seconds * 1000:>7.1f}ms  backend DBMS"
    )
    for move in walk:
        if move not in session.available_moves:
            continue
        response = session.move(move)
        source = "middleware cache" if response.hit else "backend DBMS"
        phase = response.phase.value if response.phase else "-"
        print(
            f"{move.value:<12} {str(session.current):>8} {phase:<12} "
            f"{response.latency_seconds * 1000:>7.1f}ms  {source}"
        )

    recorder = handle.recorder
    print(
        f"\n{recorder.count} requests, hit rate "
        f"{recorder.hit_rate:.0%}, average latency "
        f"{recorder.average_seconds * 1000:.1f}ms "
        f"(a non-prefetching system averages ~984ms)"
    )

    # What the user is looking at right now (the study interface's
    # snow-cover heatmap, as ASCII: brighter = more snow).
    from repro.tiles.render import render_ascii

    print(f"\ncurrent tile {session.current} (ndsi_avg):")
    print(render_ascii(response.tile, "ndsi_avg", width=24))


if __name__ == "__main__":
    main()
