"""Run a small parameter sweep and gate it against itself.

Run with::

    python examples/parameter_sweep.py [--spec smoke] [--keep DIR]

Walks the whole harness loop in one sitting: expand a declarative grid
spec into cells, execute each cell through the real serving stack
(resumable — re-running the example skips completed cells), aggregate
the per-cell records into a ``BENCH_<date>_<sha>.json`` snapshot, print
the markdown report, and run the regression gate (self-comparison here,
so it always passes).  The CI trajectory does exactly this with
``--spec ci`` against the committed baseline in
``benchmarks/trajectory/``.
"""

import argparse
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.sweep import resolve_spec, run_sweep  # noqa: E402
from repro.experiments.sweep.cli import main as sweep_cli  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--spec",
        default="smoke",
        help="built-in spec (smoke, ci) or path to a JSON spec file",
    )
    parser.add_argument(
        "--keep",
        default=None,
        metavar="DIR",
        help="persist results/snapshot under DIR (default: temp dir)",
    )
    args = parser.parse_args()

    spec = resolve_spec(args.spec)
    print(f"spec {spec.name!r}: {len(spec.cells())} cells")
    print(f"axes: {', '.join(spec.parameters)}")
    print()

    with tempfile.TemporaryDirectory() as scratch:
        base = Path(args.keep) if args.keep else Path(scratch)
        results = base / "results"
        trajectory = base / "trajectory"

        summary = run_sweep(spec, results, log=print)
        print(
            f"\n{len(summary.executed)} executed, "
            f"{len(summary.skipped)} skipped (resume)\n"
        )

        code = sweep_cli(
            [
                "snapshot",
                "--spec",
                args.spec,
                "--results-dir",
                str(results),
                "--out-dir",
                str(trajectory),
            ]
        )
        if code:
            return code
        print()
        sweep_cli(["report", "--current", str(trajectory)])
        print()
        return sweep_cli(
            [
                "compare",
                "--baseline",
                str(trajectory),
                "--current",
                str(trajectory),
            ]
        )


if __name__ == "__main__":
    raise SystemExit(main())
