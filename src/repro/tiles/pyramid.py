"""Zoom levels as materialized views, partitioned into data tiles.

:class:`TileGrid` is the pure geometry of a quadtree pyramid (which keys
exist, which moves are legal).  :class:`TilePyramid` binds that geometry
to a :class:`~repro.arraydb.executor.Database`: building it creates one
materialized view per zoom level (Section 2.3, "Building Materialized
Views"), chunk-aligned to the tile size so a tile fetch reads exactly one
chunk per attribute.

Dimension convention: the first array dimension is ``y`` (rows,
latitude), the second is ``x`` (columns, longitude).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.arraydb import query as Q
from repro.arraydb.executor import Database
from repro.arraydb.schema import ArraySchema, Attribute, Dimension
from repro.tiles.key import TileKey
from repro.tiles.moves import ALL_MOVES, Move
from repro.tiles.tile import DataTile


class TileGrid:
    """Bounds-checked quadtree geometry: level ``l`` has ``2^l`` tiles/dim."""

    def __init__(self, num_levels: int) -> None:
        if num_levels < 1:
            raise ValueError(f"a pyramid needs at least one level, got {num_levels}")
        self.num_levels = num_levels

    @property
    def root(self) -> TileKey:
        """The single tile at level 0."""
        return TileKey(0, 0, 0)

    @property
    def deepest_level(self) -> int:
        """The raw-data level."""
        return self.num_levels - 1

    def tiles_per_dim(self, level: int) -> int:
        """Number of tiles along each dimension of ``level``."""
        if not 0 <= level < self.num_levels:
            raise ValueError(
                f"level {level} outside pyramid (has {self.num_levels} levels)"
            )
        return 1 << level

    def tile_count(self, level: int) -> int:
        """Total tiles at ``level``."""
        return self.tiles_per_dim(level) ** 2

    def total_tiles(self) -> int:
        """Total tiles across all levels."""
        return sum(self.tile_count(level) for level in range(self.num_levels))

    def valid(self, key: TileKey) -> bool:
        """True if ``key`` exists in this pyramid."""
        if not 0 <= key.level < self.num_levels:
            return False
        n = self.tiles_per_dim(key.level)
        return 0 <= key.x < n and 0 <= key.y < n

    def keys_at_level(self, level: int) -> Iterator[TileKey]:
        """Iterate all keys at one level in row-major order."""
        n = self.tiles_per_dim(level)
        for y in range(n):
            for x in range(n):
                yield TileKey(level, x, y)

    def all_keys(self) -> Iterator[TileKey]:
        """Iterate all keys in the pyramid, coarsest level first."""
        for level in range(self.num_levels):
            yield from self.keys_at_level(level)

    # ------------------------------------------------------------------
    # movement
    # ------------------------------------------------------------------
    def apply(self, key: TileKey, move: Move) -> TileKey | None:
        """The key reached by ``move``, or None if it leaves the pyramid."""
        if not self.valid(key):
            raise ValueError(f"key {key} is not in this pyramid")
        if move is Move.ZOOM_OUT and key.level == 0:
            return None
        try:
            target = key.apply(move)
        except ValueError:
            # Pans off the left/top edge produce negative coordinates.
            return None
        return target if self.valid(target) else None

    def available_moves(self, key: TileKey) -> list[tuple[Move, TileKey]]:
        """All legal (move, destination) pairs from ``key``, in move order."""
        result = []
        for move in ALL_MOVES:
            target = self.apply(key, move)
            if target is not None:
                result.append((move, target))
        return result

    def neighbors(self, key: TileKey) -> list[TileKey]:
        """Destinations of all legal moves from ``key``."""
        return [target for _, target in self.available_moves(key)]

    def candidates(self, key: TileKey, d: int = 1) -> list[TileKey]:
        """All tiles reachable in at most ``d`` moves (Section 4.3.1).

        Breadth-first order: tiles one move away come before tiles two
        moves away, matching the prediction problem's candidate set ``C``.
        ``key`` itself is excluded.
        """
        if d < 1:
            raise ValueError(f"prefetch distance d must be >= 1, got {d}")
        seen = {key}
        order: list[TileKey] = []
        frontier = deque([(key, 0)])
        while frontier:
            current, depth = frontier.popleft()
            if depth == d:
                continue
            for neighbor in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    order.append(neighbor)
                    frontier.append((neighbor, depth + 1))
        return order


class TilePyramid:
    """Materialized zoom levels of a source array, tiled for fetching."""

    def __init__(
        self,
        db: Database,
        source: str,
        tile_size: int,
        num_levels: int,
        attributes: tuple[str, ...],
    ) -> None:
        self.db = db
        self.source = source
        self.tile_size = tile_size
        self.grid = TileGrid(num_levels)
        self.attributes = attributes

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        db: Database,
        source: str,
        tile_size: int,
        attributes: tuple[str, ...] | None = None,
        aggregates: dict[str, str] | None = None,
    ) -> "TilePyramid":
        """Build every zoom level of ``source`` as materialized views.

        ``source`` must be a square 2-D array whose side is
        ``tile_size * 2^k`` for some ``k >= 0``; the pyramid then has
        ``k + 1`` levels.  ``aggregates`` maps attribute name to the
        regrid aggregate used when coarsening it (default ``"avg"``;
        e.g. a land/sea mask wants ``"max"``).
        """
        schema = db.schema(source)
        if schema.ndim != 2:
            raise ValueError(
                f"pyramids require 2-D arrays, {source!r} has {schema.ndim} dims"
            )
        side = schema.shape[0]
        if schema.shape[1] != side:
            raise ValueError(
                f"pyramids require square arrays, {source!r} is {schema.shape}"
            )
        if schema.origin != (0, 0):
            raise ValueError(f"pyramids require a (0, 0) origin, {source!r} starts at {schema.origin}")
        if tile_size <= 0 or side % tile_size != 0:
            raise ValueError(
                f"tile size {tile_size} does not divide array side {side}"
            )
        factor = side // tile_size
        if factor & (factor - 1) != 0:
            raise ValueError(
                f"array side / tile size must be a power of two, got {factor}"
            )
        num_levels = factor.bit_length()

        if attributes is None:
            attributes = tuple(a.name for a in schema.attributes)
        aggregates = aggregates or {}

        pyramid = cls(db, source, tile_size, num_levels, tuple(attributes))
        for level in range(num_levels):
            pyramid._materialize_level(level, aggregates)
        return pyramid

    def _materialize_level(self, level: int, aggregates: dict[str, str]) -> None:
        """Create the materialized view for one zoom level (Figures 3-4)."""
        interval = 1 << (self.grid.deepest_level - level)
        side = self.grid.tiles_per_dim(level) * self.tile_size
        dims = (
            Dimension("y", 0, side, self.tile_size),
            Dimension("x", 0, side, self.tile_size),
        )
        source_schema = self.db.schema(self.source)
        attrs = tuple(
            Attribute(name, source_schema.attribute(name).dtype)
            for name in self.attributes
        )
        view = self.db.create_array(
            ArraySchema(self.view_name(level), attributes=attrs, dimensions=dims)
        )
        for name in self.attributes:
            if interval == 1:
                data = self.db.read(self.source, name)
            else:
                agg = aggregates.get(name, "avg")
                plan = Q.regrid(
                    Q.project(Q.scan(self.source), (name,)),
                    (interval, interval),
                    agg,
                )
                data = self.db.execute(plan).attribute(name)
            view.write(name, data)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        """Number of zoom levels (level 0 is coarsest)."""
        return self.grid.num_levels

    @property
    def tile_cells(self) -> int:
        """Cells per tile (``tile_size ** 2``)."""
        return self.tile_size * self.tile_size

    def view_name(self, level: int) -> str:
        """Name of the materialized view backing one zoom level."""
        if not 0 <= level < self.num_levels:
            raise ValueError(
                f"level {level} outside pyramid (has {self.num_levels} levels)"
            )
        return f"{self.source}__z{level}"

    def tile_region(self, key: TileKey) -> tuple[tuple[int, int], tuple[int, int]]:
        """The (y, x) cell bounds of ``key`` within its level's view."""
        if not self.grid.valid(key):
            raise ValueError(f"key {key} is not in this pyramid")
        ts = self.tile_size
        return (
            (key.y * ts, (key.y + 1) * ts),
            (key.x * ts, (key.x + 1) * ts),
        )

    def fetch_tile(self, key: TileKey, charge: bool = True) -> DataTile:
        """Fetch one tile's payload from the backing DBMS.

        With ``charge=True`` (the default) the fetch runs as a real
        ``subarray(scan(...))`` query and is charged to the database's
        cost model/clock — this is the "cache miss" path.  With
        ``charge=False`` the read bypasses the executor (used when
        precomputing metadata at build time).
        """
        if charge:
            tile, _ = self.fetch_tile_timed(key)
            return tile
        region = self.tile_region(key)
        view = self.view_name(key.level)
        attributes = {
            name: self.db.read(view, name, region) for name in self.attributes
        }
        return DataTile(key=key, attributes=attributes)

    def fetch_tile_timed(self, key: TileKey) -> tuple[DataTile, float]:
        """Charged tile fetch returning ``(tile, virtual seconds charged)``.

        The cost comes from the query's own stats ledger rather than
        clock deltas, so concurrent fetches report their individual
        costs even while a shared clock advances under them.
        """
        region = self.tile_region(key)
        view = self.view_name(key.level)
        result = self.db.execute(Q.subarray(Q.scan(view), region))
        attributes = {name: result.attribute(name) for name in self.attributes}
        return DataTile(key=key, attributes=attributes), result.stats.elapsed_seconds
