"""Per-tile metadata (signature vectors).

Section 2.3 of the paper computes tile metadata at build time and keeps
it "in a shared data structure for later use by our prediction engine".
:class:`MetadataStore` is that structure: a map from
``(tile key, signature name)`` to a numeric vector, with a
compute-on-first-use path so large pyramids only pay for the tiles the
engine actually inspects.
"""

from __future__ import annotations

from collections.abc import Callable
from pathlib import Path

import numpy as np

from repro.tiles.key import TileKey


class MetadataStore:
    """Shared store of per-tile signature vectors."""

    def __init__(self) -> None:
        self._vectors: dict[tuple[TileKey, str], np.ndarray] = {}
        self._computes = 0
        self._hits = 0

    def put(self, key: TileKey, name: str, vector: np.ndarray) -> None:
        """Store a signature vector for one tile."""
        self._vectors[(key, name)] = np.asarray(vector, dtype="float64")

    def get(self, key: TileKey, name: str) -> np.ndarray | None:
        """Fetch a stored vector, or None if absent."""
        return self._vectors.get((key, name))

    def has(self, key: TileKey, name: str) -> bool:
        """True if a vector is stored for (key, name)."""
        return (key, name) in self._vectors

    def get_or_compute(
        self,
        key: TileKey,
        name: str,
        compute: Callable[[], np.ndarray],
    ) -> np.ndarray:
        """Fetch a vector, computing and caching it on first use."""
        cached = self._vectors.get((key, name))
        if cached is not None:
            self._hits += 1
            return cached
        vector = np.asarray(compute(), dtype="float64")
        self._vectors[(key, name)] = vector
        self._computes += 1
        return vector

    @property
    def compute_count(self) -> int:
        """How many vectors were computed (vs served from the store)."""
        return self._computes

    @property
    def hit_count(self) -> int:
        """How many lookups were served from the store."""
        return self._hits

    def __len__(self) -> int:
        return len(self._vectors)

    def signature_names(self) -> set[str]:
        """All signature names present in the store."""
        return {name for _, name in self._vectors}

    def clear(self) -> None:
        """Drop all stored vectors and reset counters."""
        self._vectors.clear()
        self._computes = 0
        self._hits = 0

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist the store as a compressed ``.npz`` archive."""
        arrays = {
            f"{key.to_string()}|{name}": vector
            for (key, name), vector in self._vectors.items()
        }
        np.savez_compressed(Path(path), **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "MetadataStore":
        """Load a store previously written by :meth:`save`."""
        store = cls()
        with np.load(Path(path)) as archive:
            for field in archive.files:
                key_str, _, name = field.partition("|")
                store.put(TileKey.from_string(key_str), name, archive[field])
        return store
