"""The ForeCache tile data model (Section 2 of the paper).

Zoom levels are materialized views of the raw array, each partitioned
into equal-size data tiles.  Aggregation intervals double at each coarser
level, so one tile at level ``i`` covers the same data as four tiles at
level ``i + 1`` — a quadtree.  Level 0 is the single coarsest tile; the
deepest level is the raw data.
"""

from repro.tiles.key import TileKey
from repro.tiles.metadata import MetadataStore
from repro.tiles.moves import (
    ALL_MOVES,
    Move,
    MoveCategory,
    PAN_MOVES,
    ZOOM_IN_MOVES,
)
from repro.tiles.pyramid import TileGrid, TilePyramid
from repro.tiles.render import render_ascii, render_ppm, snow_colormap
from repro.tiles.tile import DataTile

__all__ = [
    "ALL_MOVES",
    "DataTile",
    "MetadataStore",
    "Move",
    "MoveCategory",
    "PAN_MOVES",
    "TileGrid",
    "TileKey",
    "TilePyramid",
    "ZOOM_IN_MOVES",
    "render_ascii",
    "render_ppm",
    "snow_colormap",
]
