"""The nine-move interaction vocabulary.

The study interface (Section 5.3.2) supports exactly nine moves: pan
left/right/up/down, zoom out, and zoom in to one of the four quadrants of
the current tile.  At ``k = 9`` prefetched tiles the next request is
guaranteed to be covered (Section 5.2.2) precisely because this
vocabulary is exhaustive.

Axis convention: ``x`` grows rightward (longitude), ``y`` grows downward
(latitude row index).  ``PAN_UP`` therefore decreases ``y``.
"""

from __future__ import annotations

from enum import Enum


class MoveCategory(Enum):
    """Coarse grouping used by Table 1's flags and Figure 8's bars."""

    PAN = "pan"
    ZOOM_IN = "zoom_in"
    ZOOM_OUT = "zoom_out"


class Move(Enum):
    """One user interaction in the browsing interface."""

    PAN_LEFT = "pan_left"
    PAN_RIGHT = "pan_right"
    PAN_UP = "pan_up"
    PAN_DOWN = "pan_down"
    ZOOM_OUT = "zoom_out"
    ZOOM_IN_NW = "zoom_in_nw"
    ZOOM_IN_NE = "zoom_in_ne"
    ZOOM_IN_SW = "zoom_in_sw"
    ZOOM_IN_SE = "zoom_in_se"

    @property
    def category(self) -> MoveCategory:
        """The move's coarse category (pan / zoom in / zoom out)."""
        if self in PAN_MOVES:
            return MoveCategory.PAN
        if self in ZOOM_IN_MOVES:
            return MoveCategory.ZOOM_IN
        return MoveCategory.ZOOM_OUT

    @property
    def is_pan(self) -> bool:
        return self in PAN_MOVES

    @property
    def is_zoom_in(self) -> bool:
        return self in ZOOM_IN_MOVES

    @property
    def is_zoom_out(self) -> bool:
        return self is Move.ZOOM_OUT

    def __str__(self) -> str:
        return self.value


#: The four panning moves.
PAN_MOVES: frozenset[Move] = frozenset(
    {Move.PAN_LEFT, Move.PAN_RIGHT, Move.PAN_UP, Move.PAN_DOWN}
)

#: The four quadrant zoom-ins.
ZOOM_IN_MOVES: frozenset[Move] = frozenset(
    {Move.ZOOM_IN_NW, Move.ZOOM_IN_NE, Move.ZOOM_IN_SW, Move.ZOOM_IN_SE}
)

#: All nine moves in a stable order (pans, zoom out, zoom ins).
ALL_MOVES: tuple[Move, ...] = (
    Move.PAN_LEFT,
    Move.PAN_RIGHT,
    Move.PAN_UP,
    Move.PAN_DOWN,
    Move.ZOOM_OUT,
    Move.ZOOM_IN_NW,
    Move.ZOOM_IN_NE,
    Move.ZOOM_IN_SW,
    Move.ZOOM_IN_SE,
)

#: (dx, dy) offsets for pans.
PAN_OFFSETS: dict[Move, tuple[int, int]] = {
    Move.PAN_LEFT: (-1, 0),
    Move.PAN_RIGHT: (1, 0),
    Move.PAN_UP: (0, -1),
    Move.PAN_DOWN: (0, 1),
}

#: Child quadrant offsets for zoom-ins: (dx, dy) in {0, 1}^2.
ZOOM_IN_OFFSETS: dict[Move, tuple[int, int]] = {
    Move.ZOOM_IN_NW: (0, 0),
    Move.ZOOM_IN_NE: (1, 0),
    Move.ZOOM_IN_SW: (0, 1),
    Move.ZOOM_IN_SE: (1, 1),
}

_ZOOM_IN_BY_OFFSET = {offset: move for move, offset in ZOOM_IN_OFFSETS.items()}
_PAN_BY_OFFSET = {offset: move for move, offset in PAN_OFFSETS.items()}


def zoom_in_move_for_quadrant(dx: int, dy: int) -> Move:
    """The zoom-in move that lands on child quadrant ``(dx, dy)``."""
    try:
        return _ZOOM_IN_BY_OFFSET[(dx, dy)]
    except KeyError:
        raise ValueError(f"quadrant offsets must be 0 or 1, got ({dx}, {dy})") from None


def pan_move_for_offset(dx: int, dy: int) -> Move:
    """The pan move with displacement ``(dx, dy)``."""
    try:
        return _PAN_BY_OFFSET[(dx, dy)]
    except KeyError:
        raise ValueError(f"no pan move with offset ({dx}, {dy})") from None


def move_from_string(value: str) -> Move:
    """Parse a move from its serialized string value."""
    for move in Move:
        if move.value == value:
            return move
    raise ValueError(f"unknown move {value!r}")
