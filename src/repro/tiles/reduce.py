"""Multi-resolution tile reduction: coarse stand-ins for data tiles.

Progressive fidelity needs a cheap low-resolution representation of any
tile, two ways:

- :func:`downsample_tile` — block-average a full tile down by a factor
  (the payload a coarse *push* frame carries: a factor-4 reduction is
  16x fewer bytes on the wire),
- :func:`carve_from_ancestor` — slice a tile's footprint out of a
  *cached ancestor* pyramid level and upsample it back to full shape
  (the degraded-serving path: the quadtree guarantees the ancestor's
  sub-block covers exactly the same world region, so an overloaded
  service can answer from cache instead of queueing on the backend).

Both return **new** :class:`~repro.tiles.tile.DataTile` instances —
cached tiles are shared references and must never be mutated.  Fidelity
is expressed as the linear resolution fraction per axis: a factor-4
downsample (or a depth-2 ancestor carve) has fidelity ``0.25``; ``1.0``
is the full-resolution tile.
"""

from __future__ import annotations

import numpy as np

from repro.tiles.key import TileKey
from repro.tiles.tile import DataTile


def reduction_fidelity(factor: int) -> float:
    """The fidelity of a factor-``factor`` linear reduction."""
    _check_factor(factor)
    return 1.0 / factor


def _check_factor(factor: int) -> None:
    if not isinstance(factor, int) or factor < 2 or factor & (factor - 1):
        raise ValueError(
            f"reduction factor must be a power of two >= 2, got {factor!r}"
        )


def _block_reduce(array: np.ndarray, factor: int) -> np.ndarray:
    """Mean over ``factor x factor`` blocks, dtype preserved."""
    rows, cols = array.shape
    coarse = array.reshape(
        rows // factor, factor, cols // factor, factor
    ).mean(axis=(1, 3))
    return coarse.astype(array.dtype, copy=False)


def downsample_tile(tile: DataTile, factor: int) -> DataTile:
    """A coarse stand-in: every attribute block-averaged by ``factor``.

    The result keeps the tile's key (it stands in for the same world
    region) but carries ``factor**2`` fewer cells per attribute.
    """
    _check_factor(factor)
    rows, cols = tile.shape
    if rows % factor or cols % factor or rows < factor or cols < factor:
        raise ValueError(
            f"tile shape {tile.shape} is not divisible by factor {factor}"
        )
    return DataTile(
        key=tile.key,
        attributes={
            name: _block_reduce(array, factor)
            for name, array in tile.attributes.items()
        },
    )


def upsample_tile(tile: DataTile, factor: int) -> DataTile:
    """Nearest-neighbor upsample (inverse shape of :func:`downsample_tile`).

    Content stays coarse — each source cell is repeated into a
    ``factor x factor`` block — which is exactly what a client renders
    while it waits for the refinement frame.
    """
    _check_factor(factor)
    return DataTile(
        key=tile.key,
        attributes={
            name: np.repeat(np.repeat(array, factor, axis=0), factor, axis=1)
            for name, array in tile.attributes.items()
        },
    )


def carve_from_ancestor(ancestor: DataTile, key: TileKey) -> DataTile:
    """Carve ``key``'s footprint out of a cached ancestor tile.

    The quadtree invariant makes this exact: at depth ``d`` below the
    ancestor's level, ``key`` covers a ``(ts >> d) x (ts >> d)``
    sub-block of the ancestor's ``ts x ts`` payload.  The sub-block is
    upsampled back to the full tile shape, so the result is a
    full-shape, fidelity ``2**-d`` stand-in for the real tile.
    """
    depth = key.level - ancestor.key.level
    if depth < 1:
        raise ValueError(
            f"{ancestor.key} is not a proper ancestor of {key}"
        )
    if key.ancestor(ancestor.key.level) != ancestor.key:
        raise ValueError(f"{ancestor.key} does not contain {key}")
    scale = 1 << depth
    rows, cols = ancestor.shape
    sub_rows, sub_cols = rows // scale, cols // scale
    if sub_rows < 1 or sub_cols < 1 or rows % scale or cols % scale:
        raise ValueError(
            f"ancestor shape {ancestor.shape} cannot be split {scale} ways"
        )
    rx = key.x - (ancestor.key.x << depth)
    ry = key.y - (ancestor.key.y << depth)
    r0, c0 = ry * sub_rows, rx * sub_cols
    return DataTile(
        key=key,
        attributes={
            name: np.repeat(
                np.repeat(
                    array[r0 : r0 + sub_rows, c0 : c0 + sub_cols],
                    scale,
                    axis=0,
                ),
                scale,
                axis=1,
            )
            for name, array in ancestor.attributes.items()
        },
    )


def carve_fidelity(ancestor_level: int, level: int) -> float:
    """Fidelity of a depth-``level - ancestor_level`` ancestor carve."""
    depth = level - ancestor_level
    if depth < 1:
        raise ValueError(
            f"ancestor level {ancestor_level} is not above level {level}"
        )
    return 1.0 / (1 << depth)
