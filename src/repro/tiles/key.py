"""Tile keys and quadtree coordinate math.

A :class:`TileKey` addresses one data tile: ``(level, x, y)``.  Level 0
is the single coarsest tile; level ``l`` has ``2^l`` tiles per dimension.
Zooming in maps a tile to one of its four children at level ``l + 1``;
zooming out maps to its parent at ``l - 1``.

Keys are pure values with no knowledge of how many levels exist — bounds
checking against a concrete pyramid lives in
:class:`repro.tiles.pyramid.TileGrid`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tiles.moves import (
    Move,
    PAN_OFFSETS,
    ZOOM_IN_OFFSETS,
    pan_move_for_offset,
    zoom_in_move_for_quadrant,
)


@dataclass(frozen=True, order=True)
class TileKey:
    """Address of one tile in the zoom-level pyramid."""

    level: int
    x: int
    y: int

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ValueError(f"tile level must be non-negative, got {self.level}")
        if self.x < 0 or self.y < 0:
            raise ValueError(
                f"tile coordinates must be non-negative, got ({self.x}, {self.y})"
            )

    # ------------------------------------------------------------------
    # quadtree relations
    # ------------------------------------------------------------------
    @property
    def parent(self) -> "TileKey":
        """The tile one zoom level coarser that contains this one."""
        if self.level == 0:
            raise ValueError("the root tile has no parent")
        return TileKey(self.level - 1, self.x // 2, self.y // 2)

    @property
    def quadrant(self) -> tuple[int, int]:
        """This tile's (dx, dy) position within its parent."""
        return (self.x % 2, self.y % 2)

    def children(self) -> tuple["TileKey", ...]:
        """The four tiles at the next zoom level covering this tile."""
        return tuple(
            TileKey(self.level + 1, 2 * self.x + dx, 2 * self.y + dy)
            for dy in (0, 1)
            for dx in (0, 1)
        )

    def child(self, dx: int, dy: int) -> "TileKey":
        """The child in quadrant ``(dx, dy)`` with each offset in {0, 1}."""
        if dx not in (0, 1) or dy not in (0, 1):
            raise ValueError(f"quadrant offsets must be 0 or 1, got ({dx}, {dy})")
        return TileKey(self.level + 1, 2 * self.x + dx, 2 * self.y + dy)

    def ancestor(self, level: int) -> "TileKey":
        """The containing tile at a coarser ``level``."""
        if level > self.level:
            raise ValueError(
                f"ancestor level {level} is deeper than tile level {self.level}"
            )
        shift = self.level - level
        return TileKey(level, self.x >> shift, self.y >> shift)

    def contains(self, other: "TileKey") -> bool:
        """True if ``other`` lies within this tile's coverage (any depth)."""
        if other.level < self.level:
            return False
        return other.ancestor(self.level) == self

    # ------------------------------------------------------------------
    # movement
    # ------------------------------------------------------------------
    def apply(self, move: Move) -> "TileKey":
        """The key reached by ``move``; raises if it leaves the quadrant
        coordinate space (negative coordinates or zoom-out at the root).

        Use :meth:`TileGrid.apply <repro.tiles.pyramid.TileGrid.apply>` for
        bounds-checked movement within a concrete pyramid.
        """
        if move in PAN_OFFSETS:
            dx, dy = PAN_OFFSETS[move]
            return TileKey(self.level, self.x + dx, self.y + dy)
        if move in ZOOM_IN_OFFSETS:
            dx, dy = ZOOM_IN_OFFSETS[move]
            return self.child(dx, dy)
        return self.parent  # ZOOM_OUT

    def move_to(self, other: "TileKey") -> Move | None:
        """The single move taking this tile to ``other``, if one exists."""
        if other.level == self.level:
            dx, dy = other.x - self.x, other.y - self.y
            try:
                return pan_move_for_offset(dx, dy)
            except ValueError:
                return None
        if other.level == self.level + 1:
            if other.x // 2 == self.x and other.y // 2 == self.y:
                return zoom_in_move_for_quadrant(other.x % 2, other.y % 2)
            return None
        if other.level == self.level - 1 and self.level > 0:
            if self.parent == other:
                return Move.ZOOM_OUT
            return None
        return None

    def manhattan_distance(self, other: "TileKey") -> int:
        """Grid distance used by Algorithm 3's physical-distance penalty.

        For tiles on the same level this is the plain Manhattan distance.
        Across levels, the shallower tile's coordinates are projected to
        the deeper level (center of its coverage) and the level difference
        is added, so "one zoom away" costs 1.
        """
        if self.level == other.level:
            return abs(self.x - other.x) + abs(self.y - other.y)
        hi, lo = (self, other) if self.level > other.level else (other, self)
        shift = hi.level - lo.level
        scale = 1 << shift
        # Project the coarser tile to the deeper level at its center.
        cx = lo.x * scale + scale // 2
        cy = lo.y * scale + scale // 2
        return abs(hi.x - cx) + abs(hi.y - cy) + shift

    # ------------------------------------------------------------------
    # normalized geometry
    # ------------------------------------------------------------------
    def normalized_bounds(self) -> tuple[float, float, float, float]:
        """This tile's coverage on the unit square: (x_min, y_min, x_max, y_max).

        Level ``l`` splits the unit square into ``2^l x 2^l`` tiles, so the
        same normalized rectangle is covered by one tile at level ``l`` and
        its four children at ``l + 1``.
        """
        n = 1 << self.level
        return (self.x / n, self.y / n, (self.x + 1) / n, (self.y + 1) / n)

    def normalized_center(self) -> tuple[float, float]:
        """Center of this tile's coverage on the unit square."""
        n = 1 << self.level
        return ((self.x + 0.5) / n, (self.y + 0.5) / n)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_string(self) -> str:
        """Compact serialized form, e.g. ``"3/5/2"``."""
        return f"{self.level}/{self.x}/{self.y}"

    @classmethod
    def from_string(cls, value: str) -> "TileKey":
        """Parse a key serialized by :meth:`to_string`."""
        try:
            level, x, y = (int(part) for part in value.split("/"))
        except ValueError:
            raise ValueError(f"malformed tile key {value!r}") from None
        return cls(level, x, y)

    def __str__(self) -> str:
        return self.to_string()
