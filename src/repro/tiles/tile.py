"""The data tile itself: a key plus its attribute payloads."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tiles.key import TileKey


@dataclass(frozen=True)
class DataTile:
    """One fetched tile: its key and a dense block per attribute.

    All attribute blocks share the tile's shape.  Tiles are immutable —
    the middleware cache hands out shared references, so payloads must
    never be mutated in place.
    """

    key: TileKey
    attributes: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError(f"tile {self.key} has no attributes")
        shapes = {name: arr.shape for name, arr in self.attributes.items()}
        if len(set(shapes.values())) != 1:
            raise ValueError(f"tile {self.key} attribute shapes differ: {shapes}")

    @property
    def shape(self) -> tuple[int, ...]:
        """The tile's cell dimensions."""
        return next(iter(self.attributes.values())).shape

    @property
    def nbytes(self) -> int:
        """Total payload size in bytes (used for cache budgeting)."""
        return sum(arr.nbytes for arr in self.attributes.values())

    def attribute(self, name: str) -> np.ndarray:
        """Fetch one attribute's block."""
        try:
            return self.attributes[name]
        except KeyError:
            raise KeyError(
                f"tile {self.key} has no attribute {name!r}; "
                f"available: {sorted(self.attributes)}"
            ) from None

    def attribute_names(self) -> list[str]:
        """Names of the attributes carried by this tile."""
        return list(self.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataTile):
            return NotImplemented
        if self.key != other.key:
            return False
        if set(self.attributes) != set(other.attributes):
            return False
        return all(
            np.array_equal(self.attributes[name], other.attributes[name])
            for name in self.attributes
        )

    def __hash__(self) -> int:
        return hash(self.key)
