"""Tile rendering: the visualizer's view of a data tile.

The study interface (Figure 7) renders each tile as a heatmap where
snow shows orange-to-yellow and snow-free land green-to-blue.  This
module provides the two renderings a headless reproduction can offer:
ASCII art for terminals/docs and binary PPM images for files — no
plotting dependencies required.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.tiles.tile import DataTile

#: Dark-to-bright ASCII luminance ramp.
_ASCII_RAMP = " .:-=+*#%@"

#: Color stops for the snow-cover colormap: (value in [0, 1], RGB).
_COLOR_STOPS = (
    (0.00, (20, 40, 120)),    # deep blue (no snow / water)
    (0.35, (30, 120, 60)),    # green (bare land)
    (0.60, (200, 120, 30)),   # orange (patchy snow)
    (0.80, (255, 190, 60)),   # bright orange
    (1.00, (255, 255, 200)),  # near-white (full snow)
)


def _normalize(values: np.ndarray, value_range: tuple[float, float]) -> np.ndarray:
    lo, hi = value_range
    if hi <= lo:
        raise ValueError(f"empty value range {value_range}")
    return np.clip((np.asarray(values, dtype="float64") - lo) / (hi - lo), 0.0, 1.0)


def render_ascii(
    tile: DataTile,
    attribute: str,
    value_range: tuple[float, float] = (-1.0, 1.0),
    width: int = 32,
) -> str:
    """Render one tile attribute as ASCII art.

    The tile is downsampled (by averaging) to at most ``width`` columns;
    rows use two-character cells so the aspect ratio looks square in a
    terminal.
    """
    if width < 2:
        raise ValueError(f"width must be >= 2, got {width}")
    values = _normalize(tile.attribute(attribute), value_range)
    h, w = values.shape
    step = max(1, w // width)
    if step > 1:
        trim_h, trim_w = h - h % step, w - w % step
        values = values[:trim_h, :trim_w]
        values = values.reshape(
            trim_h // step, step, trim_w // step, step
        ).mean(axis=(1, 3))
    indices = np.minimum(
        (values * len(_ASCII_RAMP)).astype(int), len(_ASCII_RAMP) - 1
    )
    return "\n".join(
        "".join(_ASCII_RAMP[i] * 2 for i in row) for row in indices
    )


def snow_colormap(values: np.ndarray) -> np.ndarray:
    """Map normalized values in [0, 1] to RGB (uint8) via the study's
    blue→green→orange→white snow palette."""
    values = np.clip(np.asarray(values, dtype="float64"), 0.0, 1.0)
    rgb = np.zeros(values.shape + (3,), dtype="float64")
    for (v0, c0), (v1, c1) in zip(_COLOR_STOPS, _COLOR_STOPS[1:]):
        mask = (values >= v0) & (values <= v1)
        if not mask.any():
            continue
        t = (values[mask] - v0) / (v1 - v0)
        for channel in range(3):
            rgb[..., channel][mask] = c0[channel] + t * (
                c1[channel] - c0[channel]
            )
    return rgb.astype("uint8")


def render_ppm(
    tile: DataTile,
    attribute: str,
    path: str | Path,
    value_range: tuple[float, float] = (-1.0, 1.0),
    scale: int = 4,
) -> Path:
    """Write one tile attribute as a binary PPM (P6) image.

    ``scale`` repeats each cell into a ``scale x scale`` pixel block so
    32 px tiles produce viewable images.  Returns the written path.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    values = _normalize(tile.attribute(attribute), value_range)
    rgb = snow_colormap(values)
    rgb = np.repeat(np.repeat(rgb, scale, axis=0), scale, axis=1)
    h, w, _ = rgb.shape
    path = Path(path)
    with open(path, "wb") as handle:
        handle.write(f"P6\n{w} {h}\n255\n".encode("ascii"))
        handle.write(rgb.tobytes())
    return path
