"""The build-all-tiles pipeline (Section 2.3).

ForeCache prepares a dataset in three steps: build a materialized view
per zoom level, partition each view into tiles, and compute per-tile
metadata.  :func:`build_tiles` runs all three and returns the pyramid
plus the populated metadata store; :class:`BuildReport` summarizes what
was produced (used by the tile-size ablation).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.arraydb.executor import Database
from repro.tiles.metadata import MetadataStore
from repro.tiles.pyramid import TilePyramid


@dataclass(frozen=True)
class BuildReport:
    """What a tile build produced."""

    num_levels: int
    total_tiles: int
    tile_size: int
    metadata_vectors: int
    bytes_per_tile: int

    @property
    def total_bytes(self) -> int:
        """Approximate payload footprint of all tiles."""
        return self.total_tiles * self.bytes_per_tile


def build_tiles(
    db: Database,
    source: str,
    tile_size: int,
    attributes: tuple[str, ...] | None = None,
    aggregates: dict[str, str] | None = None,
    metadata: dict[str, Callable[[np.ndarray], np.ndarray]] | None = None,
    metadata_attribute: str | None = None,
    metadata_levels: Sequence[int] | None = None,
    store: MetadataStore | None = None,
) -> tuple[TilePyramid, MetadataStore, BuildReport]:
    """Build zoom levels, tiles, and (optionally) tile metadata.

    ``metadata`` maps signature names to functions over a tile's block of
    ``metadata_attribute``; each is evaluated for every tile of the
    requested levels (all levels by default) and stored in the shared
    metadata store the prediction engine reads.
    """
    pyramid = TilePyramid.build(
        db, source, tile_size, attributes=attributes, aggregates=aggregates
    )
    if store is None:
        store = MetadataStore()

    if metadata:
        if metadata_attribute is None:
            metadata_attribute = pyramid.attributes[0]
        if metadata_levels is None:
            metadata_levels = range(pyramid.num_levels)
        for level in metadata_levels:
            for key in pyramid.grid.keys_at_level(level):
                tile = pyramid.fetch_tile(key, charge=False)
                block = tile.attribute(metadata_attribute)
                for name, compute in metadata.items():
                    store.put(key, name, np.asarray(compute(block), dtype="float64"))

    sample_tile = pyramid.fetch_tile(pyramid.grid.root, charge=False)
    report = BuildReport(
        num_levels=pyramid.num_levels,
        total_tiles=pyramid.grid.total_tiles(),
        tile_size=tile_size,
        metadata_vectors=len(store),
        bytes_per_tile=sample_tile.nbytes,
    )
    return pyramid, store, report
