"""Cache allocation strategies (Sections 4.4 and 5.4.3).

A strategy maps (predicted analysis phase, prefetch budget ``k``) to an
ordered list of ``(model name, tile quota)`` pairs.  The engine fills
the prefetch list by taking each model's top predictions in that order.

Two strategies reproduce the paper:

- :class:`PerPhaseSplitStrategy` — the initial design of Section 4.4:
  Navigation gets the AB model, Sensemaking the SB model, Foraging an
  even split.
- :class:`PaperFinalStrategy` — the tuned strategy of Section 5.4.3 the
  final engine actually uses: SB-only in Sensemaking; otherwise the
  first four tiles from AB, with SB filling anything beyond ``k = 4``.
"""

from __future__ import annotations

import abc

from repro.phases.model import AnalysisPhase

Allocation = list[tuple[str, int]]


class AllocationStrategy(abc.ABC):
    """Maps phase and budget to per-model tile quotas."""

    @abc.abstractmethod
    def allocate(self, phase: AnalysisPhase | None, k: int) -> Allocation:
        """Ordered ``(model name, quota)`` pairs; quotas sum to ``k``.

        ``phase`` is None when no classifier is attached (single-model
        deployments).
        """

    @staticmethod
    def _check_budget(k: int) -> None:
        if k < 1:
            raise ValueError(f"prefetch budget k must be >= 1, got {k}")


class SingleModelStrategy(AllocationStrategy):
    """The whole budget to one model, regardless of phase."""

    def __init__(self, model_name: str) -> None:
        self.model_name = model_name

    def allocate(self, phase: AnalysisPhase | None, k: int) -> Allocation:
        self._check_budget(k)
        return [(self.model_name, k)]


class InterleavedStrategy(AllocationStrategy):
    """Round-robin the budget across several models, one tile at a time."""

    def __init__(self, model_names: tuple[str, ...]) -> None:
        if not model_names:
            raise ValueError("need at least one model name")
        self.model_names = tuple(model_names)

    def allocate(self, phase: AnalysisPhase | None, k: int) -> Allocation:
        self._check_budget(k)
        quotas = {name: 0 for name in self.model_names}
        for i in range(k):
            quotas[self.model_names[i % len(self.model_names)]] += 1
        return [(name, quotas[name]) for name in self.model_names if quotas[name]]


class PerPhaseSplitStrategy(AllocationStrategy):
    """Section 4.4's initial strategy.

    Navigation → all AB; Sensemaking → all SB; Foraging → equal split
    (AB first, covering the zoom-outs that return the user to scanning).
    Unknown phase falls back to the Foraging split.
    """

    def __init__(self, ab_model: str, sb_model: str) -> None:
        self.ab_model = ab_model
        self.sb_model = sb_model

    def allocate(self, phase: AnalysisPhase | None, k: int) -> Allocation:
        self._check_budget(k)
        if phase is AnalysisPhase.NAVIGATION:
            return [(self.ab_model, k)]
        if phase is AnalysisPhase.SENSEMAKING:
            return [(self.sb_model, k)]
        ab_share = (k + 1) // 2
        allocation: Allocation = [(self.ab_model, ab_share)]
        if k - ab_share:
            allocation.append((self.sb_model, k - ab_share))
        return allocation


class PaperFinalStrategy(AllocationStrategy):
    """Section 5.4.3's tuned strategy, used by the final engine.

    When the ``sb_only_phase`` is predicted (the paper tuned this to
    Sensemaking on its study data), fetch from the SB model only.
    Otherwise fetch the first ``min(ab_first, k)`` predictions from the
    AB model and fill the remainder (``k > ab_first``) from SB.

    The paper derived this strategy from its observed per-phase accuracy
    results; reproductions should do the same — pass
    ``sb_only_phase=None`` when the AB model also wins Sensemaking on
    your traces, which keeps AB first everywhere with SB topping up.
    """

    def __init__(
        self,
        ab_model: str,
        sb_model: str,
        ab_first: int = 4,
        sb_only_phase: AnalysisPhase | None = AnalysisPhase.SENSEMAKING,
    ) -> None:
        if ab_first < 1:
            raise ValueError(f"ab_first must be >= 1, got {ab_first}")
        self.ab_model = ab_model
        self.sb_model = sb_model
        self.ab_first = ab_first
        self.sb_only_phase = sb_only_phase

    def allocate(self, phase: AnalysisPhase | None, k: int) -> Allocation:
        self._check_budget(k)
        if self.sb_only_phase is not None and phase is self.sb_only_phase:
            return [(self.sb_model, k)]
        ab_share = min(self.ab_first, k)
        allocation: Allocation = [(self.ab_model, ab_share)]
        if k > ab_share:
            allocation.append((self.sb_model, k - ab_share))
        return allocation
