"""The paper's primary contribution: the two-level prediction engine.

At the top level an analysis-phase classifier infers the user's frame of
mind (Foraging / Navigation / Sensemaking) from her recent requests; at
the bottom, multiple recommendation models run in parallel and a
per-phase allocation strategy decides how much of the prefetch budget
each model's predictions receive (Sections 4.2-4.4).
"""

from repro.core.allocation import (
    AllocationStrategy,
    InterleavedStrategy,
    PaperFinalStrategy,
    PerPhaseSplitStrategy,
    SingleModelStrategy,
)
from repro.core.engine import PredictionEngine, PredictionResult
from repro.core.history import SessionHistory
from repro.core.popularity import SharedHotspotRegistry
from repro.core.roi import ROITracker

__all__ = [
    "AllocationStrategy",
    "InterleavedStrategy",
    "PaperFinalStrategy",
    "PerPhaseSplitStrategy",
    "PredictionEngine",
    "PredictionResult",
    "ROITracker",
    "SessionHistory",
    "SharedHotspotRegistry",
    "SingleModelStrategy",
]
