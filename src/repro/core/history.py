"""Session history ``H`` (Section 4.1).

The cache manager records the user's last ``n`` moves and forwards them
to the prediction engine as an ordered request list.  ``n`` (the history
length) is a system parameter fixed before the session starts.
"""

from __future__ import annotations

from collections import deque

from repro.tiles.key import TileKey
from repro.tiles.moves import Move


class SessionHistory:
    """A bounded record of the user's most recent requests."""

    def __init__(self, length: int = 10) -> None:
        if length < 1:
            raise ValueError(f"history length must be >= 1, got {length}")
        self.length = length
        self._tiles: deque[TileKey] = deque(maxlen=length)
        self._moves: deque[Move] = deque(maxlen=length)

    def record(self, move: Move | None, tile: TileKey) -> None:
        """Append one request.  The initial request has no move and only
        contributes its tile."""
        self._tiles.append(tile)
        if move is not None:
            self._moves.append(move)

    @property
    def tiles(self) -> tuple[TileKey, ...]:
        """Recently requested tiles, oldest first."""
        return tuple(self._tiles)

    @property
    def moves(self) -> tuple[Move, ...]:
        """Recent moves, oldest first."""
        return tuple(self._moves)

    @property
    def current(self) -> TileKey | None:
        """The most recently requested tile."""
        return self._tiles[-1] if self._tiles else None

    @property
    def last_move(self) -> Move | None:
        """The most recent move."""
        return self._moves[-1] if self._moves else None

    def recent_moves(self, n: int) -> tuple[Move, ...]:
        """The last ``n`` moves (fewer if the session is young)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        moves = tuple(self._moves)
        return moves[len(moves) - min(n, len(moves)) :]

    def previous_tile(self) -> TileKey | None:
        """The tile requested just before the current one."""
        return self._tiles[-2] if len(self._tiles) >= 2 else None

    def __len__(self) -> int:
        return len(self._tiles)

    def clear(self) -> None:
        """Forget everything (new session)."""
        self._tiles.clear()
        self._moves.clear()
