"""The two-level prediction engine (Section 4).

After every user request the engine:

1. updates the session history ``H`` and the ROI tracker (Algorithm 1),
2. asks the top-level classifier for the user's current analysis phase,
3. asks the allocation strategy how to split the prefetch budget ``k``
   across the bottom-level recommendation models,
4. collects each model's ranked predictions over the candidate set
   (tiles at most ``d`` moves away) and merges them into one ordered
   prefetch list ``P``.

The engine is deliberately ignorant of caches and DBMSs — the cache
manager consumes ``P`` (Section 3).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.allocation import AllocationStrategy
from repro.core.history import SessionHistory
from repro.core.popularity import SharedHotspotRegistry
from repro.core.roi import ROITracker
from repro.phases.model import AnalysisPhase
from repro.recommenders.base import PredictionContext, Recommender
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TileGrid

#: A phase predictor: (current tile, current move) -> phase.
PhasePredictor = Callable[[TileKey, Move | None], AnalysisPhase]


@dataclass
class PredictionResult:
    """Output of one prediction round."""

    phase: AnalysisPhase | None
    tiles: list[TileKey]
    per_model: dict[str, list[TileKey]] = field(default_factory=dict)
    allocation: list[tuple[str, int]] = field(default_factory=list)
    #: Which model's allocation each chosen tile was charged to.
    attributions: dict[TileKey, str] = field(default_factory=dict)

    def attributed_tiles(self) -> list[tuple[TileKey, str]]:
        """(tile, model) pairs in prefetch priority order."""
        return [(tile, self.attributions[tile]) for tile in self.tiles]

    def ranked(self) -> list[tuple[int, TileKey, str]]:
        """(rank, tile, model) triples in prefetch priority order.

        The scheduler-facing view of ``P``: each triple becomes one
        cancellable prefetch job, rank 0 the most urgent.  A later
        prediction round supersedes these jobs wholesale (the engine
        re-ranks from scratch every observation), which is what lets the
        scheduler cancel stale work by generation instead of diffing
        lists.
        """
        return [
            (rank, tile, self.attributions[tile])
            for rank, tile in enumerate(self.tiles)
        ]


class PredictionEngine:
    """Two-level prediction: phase classifier over recommender suite."""

    def __init__(
        self,
        grid: TileGrid,
        recommenders: dict[str, Recommender],
        strategy: AllocationStrategy,
        phase_predictor: PhasePredictor | None = None,
        history_length: int = 10,
        prefetch_distance: int = 1,
        hotspot_registry: SharedHotspotRegistry | None = None,
    ) -> None:
        if not recommenders:
            raise ValueError("the engine needs at least one recommender")
        if prefetch_distance < 1:
            raise ValueError(
                f"prefetch distance d must be >= 1, got {prefetch_distance}"
            )
        self.grid = grid
        self.recommenders = dict(recommenders)
        self.strategy = strategy
        self.phase_predictor = phase_predictor
        self.prefetch_distance = prefetch_distance
        #: "fresh" hands the SB model the in-progress ROI (the tiles
        #: visited since the last zoom-in) when one exists, falling back
        #: to the last committed ROI; "committed" uses only Algorithm 1's
        #: committed set.  Fresh is the default: mid-Sensemaking, the
        #: region being explored right now is the most recent ROI.
        self.roi_source = "fresh"
        #: Live cross-session popularity: when set, every observation is
        #: mirrored into the shared registry (many engines, one model).
        self.hotspot_registry = hotspot_registry
        self.history = SessionHistory(history_length)
        self.roi_tracker = ROITracker()
        # Recommender outputs are deterministic between observations, so
        # multiple predict() calls per request (e.g. sweeping k) reuse
        # each model's ranking.
        self._round_cache: dict[str, list[TileKey]] = {}
        self._round_phase: AnalysisPhase | None = None

    # ------------------------------------------------------------------
    # session state
    # ------------------------------------------------------------------
    def observe(self, move: Move | None, tile: TileKey) -> None:
        """Record one user request (history + ROI update).

        With a bound :attr:`hotspot_registry` the request also feeds the
        shared cross-session popularity model, before prediction — this
        round's prediction already sees this request's weight.
        """
        if not self.grid.valid(tile):
            raise ValueError(f"requested tile {tile} is not in the pyramid")
        self.history.record(move, tile)
        self.roi_tracker.update(move, tile)
        if self.hotspot_registry is not None:
            self.hotspot_registry.observe(tile)
        self._round_cache.clear()
        self._round_phase = None

    def bind_hotspot_registry(
        self,
        registry: SharedHotspotRegistry | None,
        live: bool = False,
    ) -> None:
        """Attach (or detach, with ``None``) the shared popularity model.

        Observations feed the registry from the next request on.  With
        ``live=True`` every recommender that understands a registry
        (``bind_registry``, e.g. the live
        :class:`~repro.recommenders.hotspot.HotspotRecommender`) starts
        consulting it too, so this session's predictions are steered by
        *all* sessions' traffic.
        """
        self.hotspot_registry = registry
        if live:
            for recommender in self.recommenders.values():
                bind = getattr(recommender, "bind_registry", None)
                if bind is not None:
                    bind(registry)

    def reset(self) -> None:
        """Clear all per-session state."""
        self.history.clear()
        self.roi_tracker.reset()
        self._round_cache.clear()
        self._round_phase = None

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def context(self) -> PredictionContext:
        """The current :class:`PredictionContext` for the recommenders."""
        current = self.history.current
        if current is None:
            raise RuntimeError("no request observed yet")
        roi = self.roi_tracker.roi
        if self.roi_source == "fresh" and self.roi_tracker.in_progress:
            roi = self.roi_tracker.in_progress
        return PredictionContext(
            current=current,
            grid=self.grid,
            candidates=tuple(
                self.grid.candidates(current, self.prefetch_distance)
            ),
            history_moves=self.history.moves,
            history_tiles=self.history.tiles,
            roi=roi,
        )

    def predict_phase(self) -> AnalysisPhase | None:
        """Top level: classify the user's current analysis phase.

        Cached per observation round (the classifier is deterministic in
        the session state)."""
        if self.phase_predictor is None:
            return None
        current = self.history.current
        if current is None:
            raise RuntimeError("no request observed yet")
        cached = self._round_phase
        if cached is None:
            cached = self.phase_predictor(current, self.history.last_move)
            self._round_phase = cached
        return cached

    def predict(self, k: int) -> PredictionResult:
        """Produce the ordered prefetch list ``P`` for budget ``k``.

        Models run over the same candidate set; the allocation strategy
        decides whose predictions fill which slots.  If a model returns
        fewer tiles than its quota, the shortfall is refilled from the
        other allocated models' remaining predictions (the cache manager
        never leaves paid-for slots empty).
        """
        if k < 1:
            raise ValueError(f"prefetch budget k must be >= 1, got {k}")
        phase = self.predict_phase()
        allocation = self.strategy.allocate(phase, k)
        context = self.context()

        per_model: dict[str, list[TileKey]] = {}
        for name, _ in allocation:
            if name not in self.recommenders:
                raise KeyError(
                    f"allocation references unknown recommender {name!r}"
                )
            if name not in per_model:
                if name not in self._round_cache:
                    self._round_cache[name] = self.recommenders[name].predict(
                        context
                    )
                per_model[name] = self._round_cache[name]

        chosen: list[TileKey] = []
        attributions: dict[TileKey, str] = {}
        for name, quota in allocation:
            taken = 0
            for tile in per_model[name]:
                if taken >= quota or len(chosen) >= k:
                    break
                if tile not in attributions:
                    attributions[tile] = name
                    chosen.append(tile)
                    taken += 1

        # Refill unused budget from any remaining predictions, in
        # allocation order.
        if len(chosen) < k:
            for name, _ in allocation:
                for tile in per_model[name]:
                    if len(chosen) >= k:
                        break
                    if tile not in attributions:
                        attributions[tile] = name
                        chosen.append(tile)

        return PredictionResult(
            phase=phase,
            tiles=chosen,
            per_model=per_model,
            allocation=list(allocation),
            attributions=attributions,
        )
