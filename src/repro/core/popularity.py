"""Live cross-session tile popularity (the shared hotspot model).

The paper's multi-user scheme (Section 6.2) shares *tiles* across
sessions; this module shares the *signal*: every session's request
stream feeds one :class:`SharedHotspotRegistry`, a thread-safe
popularity model over :class:`~repro.tiles.key.TileKey` that prediction
(live :class:`~repro.recommenders.hotspot.HotspotRecommender`) and
prefetch scheduling (rank boost for globally hot tiles) consult in real
time.  User A exploring a region teaches the system what user B is
likely to want next — the cross-client coordination Khameleon-style
continuous prefetching and Kyrix's shared backend exploit.

Design constraints, in order:

- **Determinism.**  ``snapshot(top_n)`` orders entries by
  ``(count desc, key asc)``; with no decay (the default) the snapshot
  is a pure function of the *multiset* of observations — any
  interleaving of concurrent observers yields the same top-N, and the
  shard count never changes the result (per-key arithmetic is
  independent of shard membership).
- **Current, not cumulative.**  Counts decay exponentially on a
  *virtual monotonic tick*, never wall time: each ``advance()`` by the
  owner multiplies every count by ``decay`` (applied lazily, per key),
  so hotspots track current traffic and a burst from last epoch fades.
  Tests and replays drive the tick explicitly; a live deployment can
  advance it from a timer or a request counter.
- **Concurrency.**  Counters are hash-sharded: each shard owns an
  independent lock, so concurrent sessions observing different tiles do
  not serialize on one mutex (the same striping discipline as the
  middleware cache).
"""

from __future__ import annotations

import heapq
import threading
from collections.abc import Iterable

from repro.tiles.key import TileKey


def _hotness(item: tuple[TileKey, float]) -> tuple[float, TileKey]:
    """Snapshot sort key: count descending, key ascending."""
    return (-item[1], item[0])


class SharedHotspotRegistry:
    """Decaying, sharded request-popularity counters keyed by tile.

    All public methods are thread-safe.  ``decay`` is the factor every
    count is multiplied by per elapsed tick (1.0 = never forget, the
    default — and the only setting whose snapshots are exactly
    interleaving-independent under concurrent ``advance()``).

    ``prune_epsilon`` bounds memory under decaying traffic: a counter
    whose decayed weight falls below it is *dropped* instead of being
    carried forever.  Pruning happens during the same lazy-decay
    arithmetic reads already perform (``observe``/``count``/snapshots),
    so it adds no extra pass; snapshots therefore sweep dead entries as
    a side effect, which keeps long adversarial random-walk sweeps from
    growing the key set without bound.  Determinism is preserved: a
    pruned entry is exactly one whose decayed weight would have been
    below ``prune_epsilon`` anyway, so ``snapshot(top_n)`` equals the
    unpruned registry's snapshot with sub-epsilon tails dropped (pass
    ``prune_epsilon=0.0``, the default, for bit-identical legacy
    behavior).
    """

    def __init__(
        self, shards: int = 1, decay: float = 1.0, prune_epsilon: float = 0.0
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if prune_epsilon < 0.0:
            raise ValueError(
                f"prune_epsilon must be >= 0, got {prune_epsilon}"
            )
        self.shards = shards
        self.decay = decay
        self.prune_epsilon = prune_epsilon
        #: Per-shard ``{key: [weight, tick_of_weight]}``.
        self._entries: list[dict[TileKey, list]] = [{} for _ in range(shards)]
        self._locks = [threading.Lock() for _ in range(shards)]
        #: Per-shard observation tallies (each guarded by its shard lock,
        #: so concurrent observers never race on one shared counter).
        self._observed = [0] * shards
        self._tick_lock = threading.Lock()
        self._tick = 0

    # ------------------------------------------------------------------
    # virtual time
    # ------------------------------------------------------------------
    @property
    def tick(self) -> int:
        """The current virtual time (monotonic, caller-advanced)."""
        with self._tick_lock:
            return self._tick

    def advance(self, ticks: int = 1) -> int:
        """Advance virtual time; every count decays by ``decay**ticks``.

        Decay is applied lazily (per key, on next touch), so advancing
        is O(1) regardless of how many tiles are tracked.  Returns the
        new tick.
        """
        if ticks < 0:
            raise ValueError(f"ticks must be >= 0, got {ticks}")
        with self._tick_lock:
            self._tick += ticks
            return self._tick

    def _decayed(self, weight: float, elapsed: int) -> float:
        if elapsed == 0 or self.decay == 1.0:
            return weight
        return weight * self.decay**elapsed

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def _shard(self, key: TileKey) -> int:
        return hash(key) % self.shards

    def observe(self, key: TileKey, weight: float = 1.0) -> float:
        """Record one request for ``key``; returns its updated count."""
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        with self._tick_lock:
            tick = self._tick
        index = self._shard(key)
        with self._locks[index]:
            entry = self._entries[index].get(key)
            if entry is None:
                self._entries[index][key] = [float(weight), tick]
                new_weight = float(weight)
            else:
                # Lazy decay: bring the stored count to the current
                # tick, then add.  The arithmetic per key is identical
                # whatever the shard count.  A concurrent advance() may
                # have stamped the entry with a tick newer than the one
                # we captured; never "un-decay" in that case.
                elapsed = tick - entry[1]
                if elapsed > 0:
                    decayed = self._decayed(entry[0], elapsed)
                    # Sub-epsilon pruning: a count that decayed to dust
                    # restarts from scratch, exactly as if the key had
                    # been dropped between requests.
                    entry[0] = (
                        0.0 if decayed < self.prune_epsilon else decayed
                    )
                    entry[1] = tick
                entry[0] += weight
                new_weight = entry[0]
            self._observed[index] += 1
        return new_weight

    def observe_many(self, keys: Iterable[TileKey], weight: float = 1.0) -> None:
        """Record one request per key (convenience for replays)."""
        for key in keys:
            self.observe(key, weight)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def count(self, key: TileKey) -> float:
        """The decayed count of ``key`` at the current tick (0 if unseen)."""
        with self._tick_lock:
            tick = self._tick
        index = self._shard(key)
        with self._locks[index]:
            entry = self._entries[index].get(key)
            if entry is None:
                return 0.0
            weight = self._decayed(entry[0], max(0, tick - entry[1]))
            if weight < self.prune_epsilon:
                del self._entries[index][key]
                return 0.0
            return weight

    def _snapshot_at(
        self, top_n: int | None
    ) -> tuple[int, list[tuple[TileKey, float]]]:
        """(tick, ordered entries) with both taken from one tick read."""
        with self._tick_lock:
            tick = self._tick
        entries: list[tuple[TileKey, float]] = []
        for index in range(self.shards):
            with self._locks[index]:
                shard = self._entries[index]
                dead: list[TileKey] = []
                for key, (weight, seen_tick) in shard.items():
                    decayed = self._decayed(weight, max(0, tick - seen_tick))
                    if decayed < self.prune_epsilon:
                        # Snapshots walk every entry anyway; sweeping the
                        # sub-epsilon dead here is what bounds memory
                        # for keys that are never touched again.
                        dead.append(key)
                        continue
                    entries.append((key, decayed))
                for key in dead:
                    del shard[key]
        if top_n is None:
            entries.sort(key=_hotness)
        else:
            # O(T log top_n), not a full sort: this runs per prediction
            # round on the request path.
            entries = heapq.nsmallest(top_n, entries, key=_hotness)
        return tick, entries

    def snapshot(self, top_n: int | None = None) -> list[tuple[TileKey, float]]:
        """The hottest tiles, deterministically ordered.

        Entries are sorted by ``(count desc, key asc)`` — the tie-break
        makes the top-N a pure function of the counter state, never of
        insertion or shard order.  ``top_n=None`` returns everything.
        """
        if top_n is not None and top_n < 1:
            raise ValueError(f"top_n must be >= 1, got {top_n}")
        return self._snapshot_at(top_n)[1]

    def gossip_snapshot(
        self, top_n: int | None = None
    ) -> tuple[int, list[tuple[TileKey, float]]]:
        """``(tick, snapshot)`` taken from one tick read.

        The gossip wire format carries the tick its weights are
        expressed at; reading ``tick`` and ``snapshot()`` separately
        could straddle a concurrent ``advance()`` and mis-stamp the
        entries by an epoch, so cluster nodes serialize from this
        atomic pair instead.
        """
        if top_n is not None and top_n < 1:
            raise ValueError(f"top_n must be >= 1, got {top_n}")
        return self._snapshot_at(top_n)

    def hot_keys(self, top_n: int) -> list[TileKey]:
        """Just the keys of :meth:`snapshot`, hottest first."""
        return [key for key, _ in self.snapshot(top_n)]

    @property
    def total_observations(self) -> int:
        """Observations absorbed so far (undecayed; merges count theirs)."""
        total = 0
        for index in range(self.shards):
            with self._locks[index]:
                total += self._observed[index]
        return total

    def __len__(self) -> int:
        """Number of distinct tiles tracked."""
        return sum(
            len(self._entries[index]) for index in range(self.shards)
        )

    # ------------------------------------------------------------------
    # combination / lifecycle
    # ------------------------------------------------------------------
    def merge(self, other: "SharedHotspotRegistry") -> None:
        """Fold another registry's counts into this one.

        Both registries' counts are aligned to ``max(self.tick,
        other.tick)`` before adding, so merging is commutative (and,
        with exactly representable weights, associative).  The decay
        factors must match — merging differently-decaying counters has
        no meaningful unit.
        """
        if other.decay != self.decay:
            raise ValueError(
                f"cannot merge registries with different decay factors "
                f"({self.decay} vs {other.decay})"
            )
        # Tick and counts come from one atomic read — a concurrent
        # advance() on ``other`` cannot mis-align the decay below.
        other_tick, incoming = other._snapshot_at(None)
        target = max(self.tick, other_tick)
        if target > self.tick:
            self.advance(target - self.tick)
        elapsed = target - other_tick
        merged_keys = 0
        for key, weight in incoming:
            decayed = self._decayed(weight, elapsed)
            if decayed > 0:
                self.observe(key, decayed)
                merged_keys += 1
        # observe() tallied each merged key as one observation; correct
        # the total to carry the other registry's true history.
        adjustment = other.total_observations - merged_keys
        if adjustment and self.shards:
            with self._locks[0]:
                self._observed[0] += adjustment

    def merge_max(self, other: "SharedHotspotRegistry") -> None:
        """Raise this registry's counts to at least ``other``'s.

        Per-key **maximum** after aligning both sides to ``max(self.tick,
        other.tick)`` — the gossip-safe combinator.  Unlike the additive
        :meth:`merge`, this is *idempotent*: absorbing the same snapshot
        twice (or absorbing a rebroadcast that already contains your own
        counts) changes nothing, so a router can rebroadcast merged
        cluster views every tick without the loop inflating anyone's
        weights.  It stays commutative and associative, and a set of
        nodes max-merging each other's snapshots converges to the
        element-wise envelope — one shared view.

        ``total_observations`` is untouched: a max is an envelope over
        histories, not extra history.  Decay factors must match, as in
        :meth:`merge`.
        """
        if other.decay != self.decay:
            raise ValueError(
                f"cannot merge registries with different decay factors "
                f"({self.decay} vs {other.decay})"
            )
        other_tick, incoming = other._snapshot_at(None)
        target = max(self.tick, other_tick)
        if target > self.tick:
            self.advance(target - self.tick)
        elapsed = target - other_tick
        for key, weight in incoming:
            decayed = self._decayed(weight, elapsed)
            if decayed <= 0 or decayed < self.prune_epsilon:
                continue
            index = self._shard(key)
            with self._locks[index]:
                entry = self._entries[index].get(key)
                if entry is None:
                    self._entries[index][key] = [decayed, target]
                    continue
                # Bring the held count to the merge tick (same lazy
                # arithmetic as observe()), then keep the larger side.
                held_elapsed = target - entry[1]
                if held_elapsed > 0:
                    held = self._decayed(entry[0], held_elapsed)
                    entry[0] = (
                        0.0 if held < self.prune_epsilon else held
                    )
                    entry[1] = target
                if decayed > entry[0]:
                    entry[0] = decayed

    @classmethod
    def from_snapshot(
        cls,
        entries: Iterable[tuple[TileKey, float]],
        tick: int = 0,
        decay: float = 1.0,
    ) -> "SharedHotspotRegistry":
        """Build a throwaway registry holding ``entries`` at ``tick``.

        The gossip path deserializes wire snapshots into one of these so
        :meth:`merge_max` can do the tick alignment; it is not meant as
        a live registry (``total_observations`` stays 0).
        """
        registry = cls(shards=1, decay=decay)
        if tick:
            registry.advance(tick)
        for key, weight in entries:
            if weight > 0:
                registry._entries[0][key] = [float(weight), tick]
        return registry

    def prune(self, epsilon: float | None = None) -> int:
        """Drop every counter whose decayed weight is below ``epsilon``.

        ``epsilon`` defaults to the registry's ``prune_epsilon``.  The
        lazy sweeps in :meth:`observe`/:meth:`snapshot` already bound
        memory on touched paths; this is the explicit O(T) version for
        owners that want the bound enforced *now* (e.g. between sweep
        cells).  Returns the number of entries removed.
        """
        limit = self.prune_epsilon if epsilon is None else epsilon
        if limit < 0.0:
            raise ValueError(f"epsilon must be >= 0, got {limit}")
        with self._tick_lock:
            tick = self._tick
        removed = 0
        for index in range(self.shards):
            with self._locks[index]:
                shard = self._entries[index]
                dead = [
                    key
                    for key, (weight, seen_tick) in shard.items()
                    if self._decayed(weight, max(0, tick - seen_tick)) < limit
                ]
                for key in dead:
                    del shard[key]
                removed += len(dead)
        return removed

    def clear(self) -> None:
        """Forget everything (counts, tick, totals)."""
        for index in range(self.shards):
            with self._locks[index]:
                self._entries[index].clear()
                self._observed[index] = 0
        with self._tick_lock:
            self._tick = 0

    def __repr__(self) -> str:
        return (
            f"<SharedHotspotRegistry shards={self.shards} "
            f"decay={self.decay} tiles={len(self)} tick={self.tick}>"
        )
