"""Region-of-interest tracking (Algorithm 1, UPDATEROI).

The user's most recent ROI is the set of tiles she visited between her
last zoom-in and the following zoom-out: a zoom-in opens a temporary
ROI, pans while "inside" extend it, and the next zoom-out commits it as
the current ROI.  The SB recommender compares candidate tiles against
this set.
"""

from __future__ import annotations

from repro.tiles.key import TileKey
from repro.tiles.moves import Move


class ROITracker:
    """Stateful implementation of the paper's UPDATEROI heuristic."""

    def __init__(self) -> None:
        self._roi: list[TileKey] = []
        self._temp: list[TileKey] = []
        self._in_flag = False

    @property
    def roi(self) -> tuple[TileKey, ...]:
        """The user's last committed region of interest (may be empty)."""
        return tuple(self._roi)

    @property
    def in_progress(self) -> tuple[TileKey, ...]:
        """Tiles collected since the last zoom-in (``tempROI``)."""
        return tuple(self._temp)

    @property
    def collecting(self) -> bool:
        """True between a zoom-in and the next zoom-out (``inFlag``)."""
        return self._in_flag

    def update(self, move: Move | None, tile: TileKey) -> tuple[TileKey, ...]:
        """Process one request and return the (possibly updated) ROI.

        Follows Algorithm 1 line by line: zoom-in starts a fresh tempROI
        seeded with the requested tile; zoom-out commits tempROI as the
        ROI if one was being collected; pans while collecting append the
        requested tile.  The initial request (``move is None``) leaves
        all state untouched.
        """
        if move is None:
            return self.roi
        if move.is_zoom_in:
            self._in_flag = True
            self._temp = [tile]
        elif move.is_zoom_out:
            if self._in_flag:
                self._roi = self._temp
            self._in_flag = False
            self._temp = []
        elif self._in_flag:
            if tile not in self._temp:
                self._temp.append(tile)
        return self.roi

    def reset(self) -> None:
        """Forget all state (new session)."""
        self._roi = []
        self._temp = []
        self._in_flag = False
