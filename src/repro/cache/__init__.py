"""The middleware tile cache (Section 3).

A main-memory cache in front of the DBMS with two regions: space for the
last ``n`` tiles the user actually requested (LRU), and per-model
allocations that the cache manager refills with each recommender's
predictions after every request.
"""

from repro.cache.lru import LRUCache, ShardedLRUCache
from repro.cache.manager import CacheManager, FetchOutcome
from repro.cache.tile_cache import TileCache

__all__ = [
    "CacheManager",
    "FetchOutcome",
    "LRUCache",
    "ShardedLRUCache",
    "TileCache",
]
