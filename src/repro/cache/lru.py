"""Least-recently-used caches with hit/miss accounting.

:class:`LRUCache` is lock-guarded: every operation holds an internal
:class:`threading.RLock`, so one instance may be shared by the request
path and the background prefetch workers without external coordination.
:class:`ShardedLRUCache` hash-stripes keys over several independently
locked :class:`LRUCache` segments, so concurrent sessions' recency
updates stop serializing on one mutex; with one shard it *is* a plain
LRU (bit-identical semantics, one extra indirection).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable
from typing import Generic, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Fixed-capacity LRU: reads refresh recency, inserts evict the
    least recently used entry.  Thread-safe."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._entries: OrderedDict[K, V] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: K) -> V | None:
        """Fetch and refresh an entry; None (and a counted miss) if absent."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def peek(self, key: K) -> V | None:
        """Fetch without touching recency or counters."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: K, value: V) -> K | None:
        """Insert/overwrite; returns the evicted key, if any."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return None
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                return evicted
            return None

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[K]:
        """Keys from least to most recently used."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop all entries (counters persist)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get`` calls served from cache."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0


class ShardedLRUCache(Generic[K, V]):
    """``shards`` independently locked LRU segments behind one face.

    Each key hashes to one segment, which owns an equal slice of the
    total capacity (early segments absorb the remainder), so capacity
    is still bounded globally while unrelated keys never contend on a
    lock.  The trade-off is recency scope: eviction picks the least
    recently used entry *of the full segment*, not of the whole cache —
    with ``shards=1`` (the default) the two notions coincide and the
    behavior is exactly :class:`LRUCache`'s.
    """

    def __init__(self, capacity: int, shards: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.capacity = capacity
        # Every segment needs at least one slot to be useful.
        self.shards = min(shards, capacity)
        base, extra = divmod(capacity, self.shards)
        self._segments: list[LRUCache[K, V]] = [
            LRUCache(base + (1 if i < extra else 0))
            for i in range(self.shards)
        ]

    def _segment(self, key: K) -> LRUCache[K, V]:
        return self._segments[hash(key) % self.shards]

    def get(self, key: K) -> V | None:
        """Fetch and refresh an entry; None (and a counted miss) if absent."""
        return self._segment(key).get(key)

    def peek(self, key: K) -> V | None:
        """Fetch without touching recency or counters."""
        return self._segment(key).peek(key)

    def put(self, key: K, value: V) -> K | None:
        """Insert/overwrite; returns the key's segment's evictee, if any."""
        return self._segment(key).put(key, value)

    def __contains__(self, key: K) -> bool:
        return key in self._segment(key)

    def __len__(self) -> int:
        return sum(len(segment) for segment in self._segments)

    def keys(self) -> list[K]:
        """Keys, least to most recently used *within each segment*,
        concatenated segment by segment."""
        keys: list[K] = []
        for segment in self._segments:
            keys.extend(segment.keys())
        return keys

    def clear(self) -> None:
        """Drop all entries (counters persist)."""
        for segment in self._segments:
            segment.clear()

    @property
    def hits(self) -> int:
        return sum(segment.hits for segment in self._segments)

    @property
    def misses(self) -> int:
        return sum(segment.misses for segment in self._segments)

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get`` calls served from cache, all segments."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
