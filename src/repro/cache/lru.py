"""A small least-recently-used cache with hit/miss accounting.

The cache is lock-guarded: every operation holds an internal
:class:`threading.RLock`, so one instance may be shared by the request
path and the background prefetch workers without external coordination.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable
from typing import Generic, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Fixed-capacity LRU: reads refresh recency, inserts evict the
    least recently used entry.  Thread-safe."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._entries: OrderedDict[K, V] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: K) -> V | None:
        """Fetch and refresh an entry; None (and a counted miss) if absent."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def peek(self, key: K) -> V | None:
        """Fetch without touching recency or counters."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: K, value: V) -> K | None:
        """Insert/overwrite; returns the evicted key, if any."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return None
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                return evicted
            return None

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[K]:
        """Keys from least to most recently used."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop all entries (counters persist)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get`` calls served from cache."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0
