"""The cache manager: serves tile requests, executes prefetches.

On a request, the manager answers from the middleware cache when it can
(a *hit*, main-memory speed) and falls back to a real DBMS query
otherwise (a *miss*, ~50x slower on the paper's testbed).  After the
prediction engine produces its ordered prefetch list, the manager pulls
those tiles from the DBMS into the prefetch region — synchronously via
:meth:`prefetch` (the paper's single-user loop), or one tile at a time
via :meth:`prefetch_one` when a background scheduler drives the work.

The manager is thread-safe and **coalesces** backend traffic: every
backend load goes through an in-flight futures table, so concurrent
misses on the same :class:`~repro.tiles.key.TileKey` — two user sessions
landing on the same tile, or a request racing a prefetch job — trigger
exactly one DBMS query whose result all callers share.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

from repro.cache.tile_cache import TileCache
from repro.tiles.key import TileKey
from repro.tiles.pyramid import TilePyramid
from repro.tiles.tile import DataTile


@dataclass(frozen=True)
class FetchOutcome:
    """How one request was served."""

    tile: DataTile
    hit: bool
    #: Virtual seconds the backend query took (0.0 on a hit).
    backend_seconds: float
    #: True when this miss piggybacked on another caller's in-flight
    #: query instead of issuing its own.
    coalesced: bool = False


class CacheManager:
    """Owns the tile cache and all traffic to the backend DBMS."""

    def __init__(
        self,
        pyramid: TilePyramid,
        cache: TileCache | None = None,
        backend_delay_seconds: float = 0.0,
    ) -> None:
        if backend_delay_seconds < 0:
            raise ValueError(
                f"backend delay must be >= 0, got {backend_delay_seconds}"
            )
        self.pyramid = pyramid
        self.cache = cache if cache is not None else TileCache()
        #: Real wall-clock seconds each backend query sleeps, emulating a
        #: slow DBMS in real time (the virtual clock charges cost either
        #: way; this knob makes throughput benchmarks physical).
        self.backend_delay_seconds = backend_delay_seconds
        self._lock = threading.Lock()
        # Serializes whole synchronous prefetch cycles: without it, two
        # threads' begin_prefetch_cycle/store_prefetched interleave and
        # trample the shared region mid-refill.
        self._cycle_lock = threading.Lock()
        self._inflight: dict[TileKey, Future] = {}
        self.requests = 0
        self.hits = 0
        self.coalesced = 0
        self.prefetch_queries = 0

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def fetch(self, key: TileKey) -> FetchOutcome:
        """Serve one user request, from cache if possible.

        Safe to call from many threads: a miss that finds another
        caller's query already in flight for the same key waits on that
        query instead of issuing its own.
        """
        with self._lock:
            self.requests += 1
        cached = self.cache.lookup(key)
        if cached is not None:
            with self._lock:
                self.hits += 1
            self.cache.record_request(cached)
            return FetchOutcome(tile=cached, hit=True, backend_seconds=0.0)
        tile, backend_seconds, owner = self._load(
            key, publish=self.cache.record_request
        )
        if not owner:
            with self._lock:
                self.coalesced += 1
        self.cache.record_request(tile)
        return FetchOutcome(
            tile=tile,
            hit=False,
            backend_seconds=backend_seconds,
            coalesced=not owner,
        )

    # ------------------------------------------------------------------
    # prefetch path
    # ------------------------------------------------------------------
    def prefetch(self, predictions: list[tuple[TileKey, str]]) -> int:
        """Fill the prefetch region with (tile, predicting model) pairs.

        The synchronous cycle: the region is cleared and refilled in
        prediction order, atomically with respect to other cycles.
        Tiles already resident (either region) only claim their slot;
        they are not re-queried.  Returns the number of backend queries
        issued.
        """
        with self._cycle_lock:
            return self._run_prefetch_cycle(predictions)

    def _run_prefetch_cycle(self, predictions: list[tuple[TileKey, str]]) -> int:
        self.cache.begin_prefetch_cycle()
        queries = 0
        for key, model in predictions:
            resident = self.cache.lookup(key)
            if resident is not None:
                if not self.cache.store_prefetched(resident, model):
                    break
                continue
            # Publish inside _load so a racing fetch() never finds a gap
            # between the in-flight entry and residency; the second store
            # below is idempotent and detects a full region.
            tile, _, owner = self._load(
                key,
                publish=lambda fetched, m=model: self.cache.store_prefetched(
                    fetched, m
                ),
            )
            if owner:
                queries += 1
            if not self.cache.store_prefetched(tile, model):
                break
        with self._lock:
            self.prefetch_queries += queries
        return queries

    def prefetch_one(self, key: TileKey, model: str) -> DataTile:
        """Pull one predicted tile into the prefetch region (background path).

        Coalesces with any in-flight load of the same key; a tile
        already resident is returned without a query.  Unlike the
        synchronous cycle, a full prefetch region evicts its oldest
        entry rather than dropping the new tile.
        """
        resident = self.cache.lookup(key)
        if resident is not None:
            return resident
        tile, _, owner = self._load(
            key, publish=lambda fetched: self.cache.admit_prefetched(fetched, model)
        )
        if owner:
            with self._lock:
                self.prefetch_queries += 1
        else:
            self.cache.admit_prefetched(tile, model)
        return tile

    # ------------------------------------------------------------------
    # coalesced backend loads
    # ------------------------------------------------------------------
    def _load(self, key: TileKey, publish=None) -> tuple[DataTile, float, bool]:
        """Load ``key`` from the backend, coalescing concurrent callers.

        Returns ``(tile, backend_seconds, owner)`` where ``owner`` is
        True for the single caller that actually ran the DBMS query.
        The owner calls ``publish(tile)`` (when given) to make the tile
        cache-resident *before* the in-flight entry is removed, so a
        late arrival always sees either the in-flight future or the
        cached tile — never a gap that would trigger a duplicate query.
        """
        with self._lock:
            resident = self.cache.lookup(key)
            if resident is not None:
                return resident, 0.0, False
            future = self._inflight.get(key)
            if future is None:
                future = Future()
                self._inflight[key] = future
                owner = True
            else:
                owner = False
        if not owner:
            tile, backend_seconds = future.result()
            return tile, backend_seconds, False
        try:
            tile, backend_seconds = self._query_backend(key)
            if publish is not None:
                publish(tile)
        except BaseException as exc:
            future.set_exception(exc)
            with self._lock:
                self._inflight.pop(key, None)
            raise
        future.set_result((tile, backend_seconds))
        with self._lock:
            self._inflight.pop(key, None)
        return tile, backend_seconds, True

    def _query_backend(self, key: TileKey) -> tuple[DataTile, float]:
        """A real (charged) DBMS query for one tile."""
        if self.backend_delay_seconds > 0:
            time.sleep(self.backend_delay_seconds)
        return self.pyramid.fetch_tile_timed(key)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of user requests served from the middleware cache."""
        with self._lock:
            return self.hits / self.requests if self.requests else 0.0

    def reset_stats(self) -> None:
        """Zero the counters (cache contents are untouched)."""
        with self._lock:
            self.requests = 0
            self.hits = 0
            self.coalesced = 0
            self.prefetch_queries = 0
