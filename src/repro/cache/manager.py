"""The cache manager: serves tile requests, executes prefetches.

On a request, the manager answers from the middleware cache when it can
(a *hit*, main-memory speed) and falls back to a real DBMS query
otherwise (a *miss*, ~50x slower on the paper's testbed).  After the
prediction engine produces its ordered prefetch list, the manager pulls
those tiles from the DBMS into the prefetch region — synchronously via
:meth:`prefetch` (the paper's single-user loop), or one tile at a time
via :meth:`prefetch_one` when a background scheduler drives the work.

The manager is thread-safe and **coalesces** backend traffic: every
backend load goes through an in-flight futures table, so concurrent
misses on the same :class:`~repro.tiles.key.TileKey` — two user sessions
landing on the same tile, or a request racing a prefetch job — trigger
exactly one DBMS query whose result all callers share.  The table (and
its lock) is **hash-striped** into ``shards`` independent segments, so
concurrent sessions working on different tiles never contend on one
mutex; coalescing still holds per key, because one key always maps to
one stripe.  Stats counters live under their own small lock.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

from repro.cache.tile_cache import TileCache
from repro.tiles.key import TileKey
from repro.tiles.pyramid import TilePyramid
from repro.tiles.tile import DataTile


@dataclass(frozen=True)
class FetchOutcome:
    """How one request was served."""

    tile: DataTile
    hit: bool
    #: Virtual seconds the backend query took (0.0 on a hit).
    backend_seconds: float
    #: True when this miss piggybacked on another caller's in-flight
    #: query instead of issuing its own.
    coalesced: bool = False


class CacheManager:
    """Owns the tile cache and all traffic to the backend DBMS."""

    def __init__(
        self,
        pyramid: TilePyramid,
        cache: TileCache | None = None,
        backend_delay_seconds: float = 0.0,
        shards: int = 1,
    ) -> None:
        if backend_delay_seconds < 0:
            raise ValueError(
                f"backend delay must be >= 0, got {backend_delay_seconds}"
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.pyramid = pyramid
        self.cache = cache if cache is not None else TileCache()
        #: Real wall-clock seconds each backend query sleeps, emulating a
        #: slow DBMS in real time (the virtual clock charges cost either
        #: way; this knob makes throughput benchmarks physical).
        self.backend_delay_seconds = backend_delay_seconds
        self.shards = shards
        self._locks = [threading.Lock() for _ in range(shards)]
        self._inflight: list[dict[TileKey, Future]] = [
            {} for _ in range(shards)
        ]
        self._stats_lock = threading.Lock()
        # Serializes whole synchronous prefetch cycles: without it, two
        # threads' begin_prefetch_cycle/store_prefetched interleave and
        # trample the shared region mid-refill.
        self._cycle_lock = threading.Lock()
        self.requests = 0
        self.hits = 0
        self.coalesced = 0
        self.prefetch_queries = 0

    def _stripe(self, key: TileKey) -> tuple[threading.Lock, dict[TileKey, Future]]:
        index = hash(key) % self.shards
        return self._locks[index], self._inflight[index]

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def fetch(self, key: TileKey) -> FetchOutcome:
        """Serve one user request, from cache if possible.

        Safe to call from many threads: a miss that finds another
        caller's query already in flight for the same key waits on that
        query instead of issuing its own.  Either way the tile is
        recorded into the recent LRU exactly once per call — a hit from
        the prefetch region *promotes* the tile (its prefetch slot is
        freed), a miss records via the owner's publish callback, and a
        coalesced waiter records its own request after the shared load.
        """
        with self._stats_lock:
            self.requests += 1
        cached = self.cache.lookup(key)
        if cached is not None:
            with self._stats_lock:
                self.hits += 1
            self.cache.record_request(cached)
            return FetchOutcome(tile=cached, hit=True, backend_seconds=0.0)
        tile, backend_seconds, owner = self._load(
            key, publish=self.cache.record_request
        )
        if not owner:
            with self._stats_lock:
                self.coalesced += 1
            # The owner already recorded the tile via its publish
            # callback; only non-owners (riders, and callers that found
            # the tile resident inside _load) record here, so every
            # path touches the recent LRU exactly once.
            self.cache.record_request(tile)
        return FetchOutcome(
            tile=tile,
            hit=False,
            backend_seconds=backend_seconds,
            coalesced=not owner,
        )

    def try_fetch(self, key: TileKey) -> FetchOutcome | None:
        """Serve one request *only if it is a hit*; None on a miss.

        The non-blocking face of :meth:`fetch`: a hit is counted and
        recorded exactly as :meth:`fetch` would (requests+1, hits+1,
        recent-LRU promotion), so ``try_fetch(key) or fetch(key)``
        double-counts — a miss probe touches **no** counters and leaves
        the full accounting to the :meth:`fetch` that follows.  This is
        what lets an event loop answer cache hits inline without ever
        blocking on the backend.
        """
        cached = self.cache.lookup(key)
        if cached is None:
            return None
        with self._stats_lock:
            self.requests += 1
            self.hits += 1
        self.cache.record_request(cached)
        return FetchOutcome(tile=cached, hit=True, backend_seconds=0.0)

    def peek(self, key: TileKey) -> DataTile | None:
        """Pure residency probe: the cached tile or None, **no** side
        effects — no request/hit counters, no LRU promotion.  This is
        the probe for opportunistic paths (degraded-fidelity ancestor
        lookup) that must not distort the cache statistics or the
        recency order the real request stream produces.
        """
        return self.cache.lookup(key)

    @property
    def inflight_count(self) -> int:
        """Backend loads currently in flight (all coalescing stripes).

        Read lock-free — a load signal, not an invariant; the overload
        detector only needs a magnitude, not an exact synchronized
        count.
        """
        return sum(len(stripe) for stripe in self._inflight)

    # ------------------------------------------------------------------
    # prefetch path
    # ------------------------------------------------------------------
    def prefetch(self, predictions: list[tuple[TileKey, str]]) -> int:
        """Fill the prefetch region with (tile, predicting model) pairs.

        The synchronous cycle: the region is cleared and refilled in
        prediction order, atomically with respect to other cycles.
        Tiles already resident (either region) only claim their slot;
        they are not re-queried.  Returns the number of backend queries
        issued.
        """
        with self._cycle_lock:
            return self._run_prefetch_cycle(predictions)

    def _run_prefetch_cycle(self, predictions: list[tuple[TileKey, str]]) -> int:
        self.cache.begin_prefetch_cycle()
        queries = 0
        for key, model in predictions:
            resident = self.cache.lookup(key)
            if resident is not None:
                if not self.cache.store_prefetched(resident, model):
                    if self.cache.prefetch_region_full():
                        break
                continue
            # Publish inside _load so a racing fetch() never finds a gap
            # between the in-flight entry and residency; the second store
            # below is idempotent and detects a full region.
            tile, _, owner = self._load(
                key,
                publish=lambda fetched, m=model: self.cache.store_prefetched(
                    fetched, m
                ),
            )
            if owner:
                queries += 1
            if not self.cache.store_prefetched(tile, model):
                # A rejected store means the key's shard is full.  With
                # one shard that is the whole region — stop, as the
                # paper's cycle does.  With several, other shards may
                # still have slots for later predictions: skip this
                # tile only.
                if self.cache.prefetch_region_full():
                    break
        with self._stats_lock:
            self.prefetch_queries += queries
        return queries

    def prefetch_one(self, key: TileKey, model: str) -> DataTile:
        """Pull one predicted tile into the prefetch region (background path).

        Coalesces with any in-flight load of the same key; a tile
        already resident is returned without a query.  Unlike the
        synchronous cycle, a full prefetch shard evicts its oldest
        entry rather than dropping the new tile.
        """
        resident = self.cache.lookup(key)
        if resident is not None:
            return resident
        tile, _, owner = self._load(
            key, publish=lambda fetched: self.cache.admit_prefetched(fetched, model)
        )
        if owner:
            with self._stats_lock:
                self.prefetch_queries += 1
        elif self.cache.lookup(key) is None:
            # A rider only admits when the owner's publish left the tile
            # non-resident (e.g. a racing eviction).  If the owner was a
            # fetch(), the tile already sits in the recent LRU — admitting
            # it here too would recreate the double-residency that
            # promote-on-hit eliminates.
            self.cache.admit_prefetched(tile, model)
        return tile

    # ------------------------------------------------------------------
    # coalesced backend loads
    # ------------------------------------------------------------------
    def _load(self, key: TileKey, publish=None) -> tuple[DataTile, float, bool]:
        """Load ``key`` from the backend, coalescing concurrent callers.

        Returns ``(tile, backend_seconds, owner)`` where ``owner`` is
        True for the single caller that actually ran the DBMS query.
        The owner calls ``publish(tile)`` (when given) to make the tile
        cache-resident *before* the in-flight entry is removed, so a
        late arrival always sees either the in-flight future or the
        cached tile — never a gap that would trigger a duplicate query.
        """
        lock, inflight = self._stripe(key)
        with lock:
            resident = self.cache.lookup(key)
            if resident is not None:
                return resident, 0.0, False
            future = inflight.get(key)
            if future is None:
                future = Future()
                inflight[key] = future
                owner = True
            else:
                owner = False
        if not owner:
            tile, backend_seconds = future.result()
            return tile, backend_seconds, False
        try:
            tile, backend_seconds = self._query_backend(key)
            if publish is not None:
                publish(tile)
        except BaseException as exc:
            future.set_exception(exc)
            with lock:
                inflight.pop(key, None)
            raise
        future.set_result((tile, backend_seconds))
        with lock:
            inflight.pop(key, None)
        return tile, backend_seconds, True

    def _query_backend(self, key: TileKey) -> tuple[DataTile, float]:
        """A real (charged) DBMS query for one tile."""
        if self.backend_delay_seconds > 0:
            time.sleep(self.backend_delay_seconds)
        return self.pyramid.fetch_tile_timed(key)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of user requests served from the middleware cache."""
        with self._stats_lock:
            return self.hits / self.requests if self.requests else 0.0

    def reset_stats(self) -> None:
        """Zero the counters (cache contents are untouched)."""
        with self._stats_lock:
            self.requests = 0
            self.hits = 0
            self.coalesced = 0
            self.prefetch_queries = 0


class AsyncCacheManager:
    """The event-loop face of a :class:`CacheManager`.

    Hits are served inline on the loop — :meth:`try_fetch` is a plain
    synchronous probe (the cache's striped locks are only ever held for
    dictionary operations, never across a backend query, so taking them
    on the loop cannot stall it).  Only genuine backend work hops to the
    executor.  Both faces share one manager, one cache, and one set of
    counters, so sync and async front ends compose on the same tiles.
    """

    def __init__(self, manager: CacheManager, executor=None) -> None:
        self.manager = manager
        self._executor = executor

    def _run(self, fn, *args):
        return asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    def try_fetch(self, key: TileKey) -> FetchOutcome | None:
        """Inline hit probe — no thread hop, None on a miss."""
        return self.manager.try_fetch(key)

    async def fetch(self, key: TileKey) -> FetchOutcome:
        """Serve one request: hits inline, misses via the executor."""
        outcome = self.manager.try_fetch(key)
        if outcome is not None:
            return outcome
        return await self._run(self.manager.fetch, key)

    async def prefetch(self, predictions) -> int:
        """Run one synchronous prefetch cycle off-loop."""
        return await self._run(self.manager.prefetch, predictions)

    async def prefetch_one(self, key: TileKey, model: str) -> DataTile:
        """Pull one predicted tile; resident tiles return inline."""
        resident = self.manager.cache.lookup(key)
        if resident is not None:
            return resident
        return await self._run(self.manager.prefetch_one, key, model)
