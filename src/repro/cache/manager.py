"""The cache manager: serves tile requests, executes prefetches.

On a request, the manager answers from the middleware cache when it can
(a *hit*, main-memory speed) and falls back to a real DBMS query
otherwise (a *miss*, ~50x slower on the paper's testbed).  After the
prediction engine produces its ordered prefetch list, the manager pulls
those tiles from the DBMS into the prefetch region during the user's
think time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.tile_cache import TileCache
from repro.tiles.key import TileKey
from repro.tiles.pyramid import TilePyramid
from repro.tiles.tile import DataTile


@dataclass(frozen=True)
class FetchOutcome:
    """How one request was served."""

    tile: DataTile
    hit: bool
    #: Virtual seconds the backend query took (0.0 on a hit).
    backend_seconds: float


class CacheManager:
    """Owns the tile cache and all traffic to the backend DBMS."""

    def __init__(self, pyramid: TilePyramid, cache: TileCache | None = None) -> None:
        self.pyramid = pyramid
        self.cache = cache if cache is not None else TileCache()
        self.requests = 0
        self.hits = 0
        self.prefetch_queries = 0

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def fetch(self, key: TileKey) -> FetchOutcome:
        """Serve one user request, from cache if possible."""
        self.requests += 1
        cached = self.cache.lookup(key)
        if cached is not None:
            self.hits += 1
            self.cache.record_request(cached)
            return FetchOutcome(tile=cached, hit=True, backend_seconds=0.0)
        tile, backend_seconds = self._query_backend(key)
        self.cache.record_request(tile)
        return FetchOutcome(tile=tile, hit=False, backend_seconds=backend_seconds)

    # ------------------------------------------------------------------
    # prefetch path
    # ------------------------------------------------------------------
    def prefetch(self, predictions: list[tuple[TileKey, str]]) -> int:
        """Fill the prefetch region with (tile, predicting model) pairs.

        Tiles already resident (either region) only claim their slot;
        they are not re-queried.  Returns the number of backend queries
        issued.
        """
        self.cache.begin_prefetch_cycle()
        queries = 0
        for key, model in predictions:
            resident = self.cache.lookup(key)
            if resident is not None:
                if not self.cache.store_prefetched(resident, model):
                    break
                continue
            tile, _ = self._query_backend(key)
            queries += 1
            if not self.cache.store_prefetched(tile, model):
                break
        self.prefetch_queries += queries
        return queries

    def _query_backend(self, key: TileKey) -> tuple[DataTile, float]:
        """A real (charged) DBMS query for one tile."""
        clock = self.pyramid.db.clock
        before = clock.now() if clock is not None else 0.0
        tile = self.pyramid.fetch_tile(key, charge=True)
        after = clock.now() if clock is not None else 0.0
        return tile, after - before

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of user requests served from the middleware cache."""
        return self.hits / self.requests if self.requests else 0.0

    def reset_stats(self) -> None:
        """Zero the counters (cache contents are untouched)."""
        self.requests = 0
        self.hits = 0
        self.prefetch_queries = 0
