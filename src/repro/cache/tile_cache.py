"""The partitioned main-memory tile cache.

Two regions (Section 3, "Tile Cache Manager"):

- a **recent** region keeping the last ``n`` tiles the interface
  actually requested (plain LRU), and
- a **prefetch** region refilled after every request with the
  prediction engine's tiles, tracked per recommendation model so the
  allocation strategy's quotas are observable.

The cache is thread-safe: all region mutations happen under one
re-entrant lock, so the synchronous request path and the background
prefetch workers can share an instance.  Synchronous prefetching uses
the cycle API (:meth:`begin_prefetch_cycle` + :meth:`store_prefetched`);
background prefetching uses :meth:`admit_prefetched`, which evicts the
oldest prefetched tile instead of rejecting new work, because background
jobs from several sessions interleave rather than arriving in clean
per-request cycles.
"""

from __future__ import annotations

import threading

from repro.cache.lru import LRUCache
from repro.tiles.key import TileKey
from repro.tiles.tile import DataTile


class TileCache:
    """Recent-LRU plus per-model prefetch slots."""

    def __init__(self, recent_capacity: int = 10, prefetch_capacity: int = 9) -> None:
        if prefetch_capacity < 1:
            raise ValueError(
                f"prefetch capacity must be >= 1, got {prefetch_capacity}"
            )
        self.prefetch_capacity = prefetch_capacity
        self._lock = threading.RLock()
        self._recent: LRUCache[TileKey, DataTile] = LRUCache(recent_capacity)
        self._prefetched: dict[TileKey, DataTile] = {}
        self._attribution: dict[TileKey, str] = {}

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def lookup(self, key: TileKey) -> DataTile | None:
        """Find a tile in either region (None on full miss)."""
        with self._lock:
            tile = self._prefetched.get(key)
            if tile is not None:
                return tile
            return self._recent.peek(key)

    def __contains__(self, key: TileKey) -> bool:
        with self._lock:
            return key in self._prefetched or key in self._recent

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def record_request(self, tile: DataTile) -> None:
        """A tile the user actually requested enters the recent region."""
        with self._lock:
            self._recent.put(tile.key, tile)

    def begin_prefetch_cycle(self) -> None:
        """Clear the prefetch region for the next round of predictions.

        The paper re-evaluates allocations after every request; tiles
        prefetched for the previous request are superseded (any still
        relevant will be re-predicted)."""
        with self._lock:
            self._prefetched.clear()
            self._attribution.clear()

    def store_prefetched(self, tile: DataTile, model: str) -> bool:
        """Add a predicted tile on behalf of ``model``.

        Idempotent for tiles already in the region (their slot is
        re-claimed); returns False (and stores nothing) once the region
        is full.
        """
        with self._lock:
            if tile.key not in self._prefetched and (
                len(self._prefetched) >= self.prefetch_capacity
            ):
                return False
            self._prefetched[tile.key] = tile
            self._attribution[tile.key] = model
            return True

    def admit_prefetched(self, tile: DataTile, model: str) -> TileKey | None:
        """Add a predicted tile, evicting the oldest if the region is full.

        The background scheduler's admission path: unlike the cycle API,
        a full region makes room rather than rejecting the tile, since
        concurrent sessions' jobs arrive continuously.  Returns the
        evicted key, if any.
        """
        with self._lock:
            evicted: TileKey | None = None
            if tile.key in self._prefetched:
                # Refresh FIFO position: a re-predicted tile is fresh again.
                del self._prefetched[tile.key]
            elif len(self._prefetched) >= self.prefetch_capacity:
                evicted = next(iter(self._prefetched))
                del self._prefetched[evicted]
                self._attribution.pop(evicted, None)
            self._prefetched[tile.key] = tile
            self._attribution[tile.key] = model
            return evicted

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def prefetched_keys(self) -> list[TileKey]:
        """Keys currently in the prefetch region (insertion order)."""
        with self._lock:
            return list(self._prefetched)

    @property
    def recent_keys(self) -> list[TileKey]:
        """Keys in the recent region, least recent first."""
        return self._recent.keys()

    def attribution(self, key: TileKey) -> str | None:
        """Which model's allocation paid for a prefetched tile."""
        with self._lock:
            return self._attribution.get(key)

    def model_usage(self) -> dict[str, int]:
        """Prefetched-tile counts per model."""
        with self._lock:
            usage: dict[str, int] = {}
            for model in self._attribution.values():
                usage[model] = usage.get(model, 0) + 1
            return usage

    def nbytes(self) -> int:
        """Total payload bytes held across both regions."""
        with self._lock:
            total = sum(tile.nbytes for tile in self._prefetched.values())
            total += sum(
                tile.nbytes
                for key in self._recent.keys()
                if (tile := self._recent.peek(key)) is not None
            )
            return total

    def clear(self) -> None:
        """Drop everything."""
        with self._lock:
            self._recent.clear()
            self._prefetched.clear()
            self._attribution.clear()
