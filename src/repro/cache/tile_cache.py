"""The partitioned main-memory tile cache.

Two regions (Section 3, "Tile Cache Manager"):

- a **recent** region keeping the last ``n`` tiles the interface
  actually requested (plain LRU), and
- a **prefetch** region refilled after every request with the
  prediction engine's tiles, tracked per recommendation model so the
  allocation strategy's quotas are observable.

When the user actually requests a prefetched tile, it is *promoted* —
moved into the recent LRU and its prefetch slot freed — so serving a
hit no longer leaves the tile double-resident (a dead slot that crowds
out the next round's predictions and double-counts in ``nbytes()``).
Two deliberate exceptions remain: the synchronous cycle *claims a
slot* for a tile already in the recent LRU (the allocation strategy's
per-model quotas must stay observable, as in the paper), and
``nbytes()`` is a best-effort snapshot under concurrency — a promotion
racing it can be counted in both regions for that one reading.

The cache is thread-safe, and **both regions are hash-striped** into
``shards`` independently locked segments: the prefetch region's shards
each own an equal slice of ``prefetch_capacity``, and the recent region
is a :class:`~repro.cache.lru.ShardedLRUCache` whose segments split
``recent_capacity`` the same way — so concurrent sessions' lookups,
admissions, and recency promotions stop serializing on one mutex.
``shards=1`` (the default) preserves the exact single-region semantics
the synchronous figure benchmarks replay.
Synchronous prefetching uses the cycle API
(:meth:`begin_prefetch_cycle` + :meth:`store_prefetched`); background
prefetching uses :meth:`admit_prefetched`, which evicts the oldest
prefetched tile in the key's shard instead of rejecting new work,
because background jobs from several sessions interleave rather than
arriving in clean per-request cycles.
"""

from __future__ import annotations

import threading

from repro.cache.lru import ShardedLRUCache
from repro.tiles.key import TileKey
from repro.tiles.tile import DataTile


class TileCache:
    """Recent-LRU plus hash-striped per-model prefetch slots."""

    def __init__(
        self,
        recent_capacity: int = 10,
        prefetch_capacity: int = 9,
        shards: int = 1,
    ) -> None:
        if prefetch_capacity < 1:
            raise ValueError(
                f"prefetch capacity must be >= 1, got {prefetch_capacity}"
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.prefetch_capacity = prefetch_capacity
        # Every shard needs at least one slot to be useful.  Each region
        # clamps independently against its own capacity.
        self.shards = min(shards, prefetch_capacity)
        self._recent: ShardedLRUCache[TileKey, DataTile] = ShardedLRUCache(
            recent_capacity, shards=shards
        )
        self._locks = [threading.RLock() for _ in range(self.shards)]
        self._prefetched: list[dict[TileKey, DataTile]] = [
            {} for _ in range(self.shards)
        ]
        self._attribution: list[dict[TileKey, str]] = [
            {} for _ in range(self.shards)
        ]
        # Capacity split as evenly as possible; early shards absorb the
        # remainder, so the slices always sum to prefetch_capacity.
        base, extra = divmod(prefetch_capacity, self.shards)
        self._capacities = [
            base + (1 if i < extra else 0) for i in range(self.shards)
        ]

    def _shard(self, key: TileKey) -> int:
        return hash(key) % self.shards

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def lookup(self, key: TileKey) -> DataTile | None:
        """Find a tile in either region (None on full miss)."""
        index = self._shard(key)
        with self._locks[index]:
            tile = self._prefetched[index].get(key)
        if tile is not None:
            return tile
        return self._recent.peek(key)

    def __contains__(self, key: TileKey) -> bool:
        index = self._shard(key)
        with self._locks[index]:
            if key in self._prefetched[index]:
                return True
        return key in self._recent

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def record_request(self, tile: DataTile) -> None:
        """A tile the user actually requested enters the recent region.

        If the tile sat in the prefetch region, it is promoted: the
        recent LRU takes ownership and the prefetch slot is freed for
        the next round's predictions (recent-first, so a concurrent
        lookup sees the tile resident throughout, never a gap).
        """
        self._recent.put(tile.key, tile)
        index = self._shard(tile.key)
        with self._locks[index]:
            self._prefetched[index].pop(tile.key, None)
            self._attribution[index].pop(tile.key, None)

    def begin_prefetch_cycle(self) -> None:
        """Clear the prefetch region for the next round of predictions.

        The paper re-evaluates allocations after every request; tiles
        prefetched for the previous request are superseded (any still
        relevant will be re-predicted)."""
        for index in range(self.shards):
            with self._locks[index]:
                self._prefetched[index].clear()
                self._attribution[index].clear()

    def store_prefetched(self, tile: DataTile, model: str) -> bool:
        """Add a predicted tile on behalf of ``model``.

        Idempotent for tiles already in the region (their slot is
        re-claimed); returns False (and stores nothing) once the key's
        shard is full.
        """
        index = self._shard(tile.key)
        with self._locks[index]:
            region = self._prefetched[index]
            if tile.key not in region and (
                len(region) >= self._capacities[index]
            ):
                return False
            region[tile.key] = tile
            self._attribution[index][tile.key] = model
            return True

    def admit_prefetched(self, tile: DataTile, model: str) -> TileKey | None:
        """Add a predicted tile, evicting the shard's oldest if full.

        The background scheduler's admission path: unlike the cycle API,
        a full shard makes room rather than rejecting the tile, since
        concurrent sessions' jobs arrive continuously.  Returns the
        evicted key, if any.
        """
        index = self._shard(tile.key)
        with self._locks[index]:
            region = self._prefetched[index]
            evicted: TileKey | None = None
            if tile.key in region:
                # Refresh FIFO position: a re-predicted tile is fresh again.
                del region[tile.key]
            elif len(region) >= self._capacities[index]:
                evicted = next(iter(region))
                del region[evicted]
                self._attribution[index].pop(evicted, None)
            region[tile.key] = tile
            self._attribution[index][tile.key] = model
            return evicted

    def prefetch_region_full(self) -> bool:
        """True when every prefetch slot, across all shards, is taken."""
        total = 0
        for index in range(self.shards):
            with self._locks[index]:
                total += len(self._prefetched[index])
        return total >= self.prefetch_capacity

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def prefetched_keys(self) -> list[TileKey]:
        """Keys currently in the prefetch region (insertion order,
        concatenated shard by shard)."""
        keys: list[TileKey] = []
        for index in range(self.shards):
            with self._locks[index]:
                keys.extend(self._prefetched[index])
        return keys

    @property
    def recent_keys(self) -> list[TileKey]:
        """Keys in the recent region — least recent first within each
        LRU segment, concatenated segment by segment (global recency
        order only when ``shards == 1``, the figure-replay default)."""
        return self._recent.keys()

    def attribution(self, key: TileKey) -> str | None:
        """Which model's allocation paid for a prefetched tile."""
        index = self._shard(key)
        with self._locks[index]:
            return self._attribution[index].get(key)

    def model_usage(self) -> dict[str, int]:
        """Prefetched-tile counts per model."""
        usage: dict[str, int] = {}
        for index in range(self.shards):
            with self._locks[index]:
                for model in self._attribution[index].values():
                    usage[model] = usage.get(model, 0) + 1
        return usage

    def nbytes(self) -> int:
        """Total payload bytes held across both regions."""
        total = 0
        for index in range(self.shards):
            with self._locks[index]:
                total += sum(
                    tile.nbytes for tile in self._prefetched[index].values()
                )
        total += sum(
            tile.nbytes
            for key in self._recent.keys()
            if (tile := self._recent.peek(key)) is not None
        )
        return total

    def clear(self) -> None:
        """Drop everything."""
        self._recent.clear()
        for index in range(self.shards):
            with self._locks[index]:
                self._prefetched[index].clear()
                self._attribution[index].clear()
