"""The partitioned main-memory tile cache.

Two regions (Section 3, "Tile Cache Manager"):

- a **recent** region keeping the last ``n`` tiles the interface
  actually requested (plain LRU), and
- a **prefetch** region refilled after every request with the
  prediction engine's tiles, tracked per recommendation model so the
  allocation strategy's quotas are observable.
"""

from __future__ import annotations

from repro.cache.lru import LRUCache
from repro.tiles.key import TileKey
from repro.tiles.tile import DataTile


class TileCache:
    """Recent-LRU plus per-model prefetch slots."""

    def __init__(self, recent_capacity: int = 10, prefetch_capacity: int = 9) -> None:
        if prefetch_capacity < 1:
            raise ValueError(
                f"prefetch capacity must be >= 1, got {prefetch_capacity}"
            )
        self.prefetch_capacity = prefetch_capacity
        self._recent: LRUCache[TileKey, DataTile] = LRUCache(recent_capacity)
        self._prefetched: dict[TileKey, DataTile] = {}
        self._attribution: dict[TileKey, str] = {}

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def lookup(self, key: TileKey) -> DataTile | None:
        """Find a tile in either region (None on full miss)."""
        tile = self._prefetched.get(key)
        if tile is not None:
            return tile
        return self._recent.peek(key)

    def __contains__(self, key: TileKey) -> bool:
        return key in self._prefetched or key in self._recent

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def record_request(self, tile: DataTile) -> None:
        """A tile the user actually requested enters the recent region."""
        self._recent.put(tile.key, tile)

    def begin_prefetch_cycle(self) -> None:
        """Clear the prefetch region for the next round of predictions.

        The paper re-evaluates allocations after every request; tiles
        prefetched for the previous request are superseded (any still
        relevant will be re-predicted)."""
        self._prefetched.clear()
        self._attribution.clear()

    def store_prefetched(self, tile: DataTile, model: str) -> bool:
        """Add a predicted tile on behalf of ``model``.

        Returns False (and stores nothing) once the region is full.
        """
        if len(self._prefetched) >= self.prefetch_capacity:
            return False
        self._prefetched[tile.key] = tile
        self._attribution[tile.key] = model
        return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def prefetched_keys(self) -> list[TileKey]:
        """Keys currently in the prefetch region (insertion order)."""
        return list(self._prefetched)

    @property
    def recent_keys(self) -> list[TileKey]:
        """Keys in the recent region, least recent first."""
        return self._recent.keys()

    def attribution(self, key: TileKey) -> str | None:
        """Which model's allocation paid for a prefetched tile."""
        return self._attribution.get(key)

    def model_usage(self) -> dict[str, int]:
        """Prefetched-tile counts per model."""
        usage: dict[str, int] = {}
        for model in self._attribution.values():
            usage[model] = usage.get(model, 0) + 1
        return usage

    def nbytes(self) -> int:
        """Total payload bytes held across both regions."""
        total = sum(tile.nbytes for tile in self._prefetched.values())
        total += sum(
            tile.nbytes
            for key in self._recent.keys()
            if (tile := self._recent.peek(key)) is not None
        )
        return total

    def clear(self) -> None:
        """Drop everything."""
        self._recent.clear()
        self._prefetched.clear()
        self._attribution.clear()
