"""ForeCache reproduction.

A production-quality reimplementation of the system described in
"Dynamic Prefetching of Data Tiles for Interactive Visualization"
(Battle, Chang, Stonebraker — SIGMOD 2016), including every substrate the
paper depends on:

- :mod:`repro.arraydb` — a SciDB-like array DBMS,
- :mod:`repro.tiles` — the tile/zoom-level data model,
- :mod:`repro.modis` — a synthetic MODIS-style snow-cover dataset,
- :mod:`repro.signatures` — tile signatures (stats, histograms, SIFT),
- :mod:`repro.recommenders` — action-based and signature-based models
  plus the Momentum/Hotspot baselines,
- :mod:`repro.phases` — the three-phase analysis model and SVM classifier,
- :mod:`repro.cache` / :mod:`repro.middleware` — the prefetching
  middleware,
- :mod:`repro.core` — the two-level prediction engine,
- :mod:`repro.users` — the simulated user study,
- :mod:`repro.experiments` — the evaluation harness for every table and
  figure in the paper.

See ``README.md`` for a quickstart and ``DESIGN.md`` for the full system
inventory.
"""

__version__ = "1.0.0"
