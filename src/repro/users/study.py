"""The simulated user study (Section 5.3).

18 participants complete 3 search tasks each, yielding 54 traces — the
corpus every experiment in Section 5 trains and evaluates on.  Each
participant gets a seeded random behavior profile, so the corpus is
fully deterministic for a given study seed.
"""

from __future__ import annotations

import numpy as np

from repro.modis.dataset import MODISDataset
from repro.users.behavior import BehaviorProfile, SimulatedUser
from repro.users.session import StudyData

#: Number of participants in the paper's study.
DEFAULT_NUM_USERS = 18


def run_study(
    dataset: MODISDataset,
    num_users: int = DEFAULT_NUM_USERS,
    seed: int = 17,
    max_requests: int = 90,
) -> StudyData:
    """Run every user through every task and collect the traces.

    User ids are 1-based, matching the paper's "participant 2" phrasing.
    """
    if num_users < 1:
        raise ValueError(f"num_users must be >= 1, got {num_users}")
    traces = []
    for user_id in range(1, num_users + 1):
        profile_rng = np.random.default_rng(np.random.SeedSequence([seed, user_id]))
        profile = BehaviorProfile.sample(profile_rng)
        user = SimulatedUser(
            dataset,
            user_id=user_id,
            profile=profile,
            seed=seed,
            max_requests=max_requests,
        )
        for task in dataset.tasks:
            traces.append(user.run_task(task))
    return StudyData(traces=traces)
