"""Generate and save a simulated study from the command line::

    python -m repro.users --out traces.jsonl --size 1024 --users 8

The output is JSON lines (one trace per line), loadable with
:meth:`repro.users.session.StudyData.load` — useful for inspecting
traces or feeding external tools without rebuilding the world.
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro.modis.dataset import MODISDataset
from repro.users.study import run_study


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True, help="output .jsonl path")
    parser.add_argument("--size", type=int, default=1024, help="world raster size")
    parser.add_argument("--tile-size", type=int, default=32)
    parser.add_argument("--users", type=int, default=18)
    parser.add_argument("--world-seed", type=int, default=7)
    parser.add_argument("--study-seed", type=int, default=17)
    args = parser.parse_args(argv)

    print(f"building world ({args.size}px, tiles {args.tile_size}px)...")
    dataset = MODISDataset.build(
        size=args.size, tile_size=args.tile_size, seed=args.world_seed
    )
    print(f"running study ({args.users} users x {len(dataset.tasks)} tasks)...")
    study = run_study(dataset, num_users=args.users, seed=args.study_seed)
    study.save(args.out)

    moves = Counter(
        r.move.category.value
        for t in study.traces
        for r in t.requests
        if r.move is not None
    )
    print(
        f"wrote {len(study)} traces ({study.total_requests()} requests) "
        f"to {args.out}"
    )
    print(f"move mix: {dict(moves)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
