"""Request and trace record types (Section 4.1's formalization).

A :class:`Trace` is one user session: the ordered tile requests of one
user completing one task (``U_j = [r_1, r_2, ...]``).  Each
:class:`Request` carries the move that produced it and the analysis
phase the generator was in — the synthetic analogue of the paper's
hand-labeled phases.  Traces serialize to JSON lines for reuse across
experiments.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.phases.model import AnalysisPhase
from repro.tiles.key import TileKey
from repro.tiles.moves import Move, move_from_string


@dataclass(frozen=True)
class Request:
    """One tile request ``r`` in a session."""

    index: int
    tile: TileKey
    move: Move | None
    phase: AnalysisPhase | None = None

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "index": self.index,
            "tile": self.tile.to_string(),
            "move": self.move.value if self.move is not None else None,
            "phase": self.phase.value if self.phase is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Request":
        """Inverse of :meth:`to_dict`."""
        return cls(
            index=int(data["index"]),
            tile=TileKey.from_string(data["tile"]),
            move=move_from_string(data["move"]) if data.get("move") else None,
            phase=(
                AnalysisPhase.from_string(data["phase"])
                if data.get("phase")
                else None
            ),
        )


@dataclass
class Trace:
    """One user session: an ordered list of requests."""

    user_id: int
    task_id: int
    requests: list[Request] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def moves(self) -> list[Move]:
        """The move sequence (initial request excluded — it has no move)."""
        return [r.move for r in self.requests if r.move is not None]

    def tiles(self) -> list[TileKey]:
        """The tile sequence, in request order."""
        return [r.tile for r in self.requests]

    def phases(self) -> list[AnalysisPhase | None]:
        """Per-request phase labels (None where unlabeled)."""
        return [r.phase for r in self.requests]

    def relabeled(self, phases: list[AnalysisPhase]) -> "Trace":
        """A copy of this trace with replaced phase labels."""
        if len(phases) != len(self.requests):
            raise ValueError(
                f"{len(phases)} labels for {len(self.requests)} requests"
            )
        return Trace(
            user_id=self.user_id,
            task_id=self.task_id,
            requests=[
                replace(request, phase=phase)
                for request, phase in zip(self.requests, phases)
            ],
        )

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "user_id": self.user_id,
            "task_id": self.task_id,
            "requests": [r.to_dict() for r in self.requests],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        """Inverse of :meth:`to_dict`."""
        return cls(
            user_id=int(data["user_id"]),
            task_id=int(data["task_id"]),
            requests=[Request.from_dict(r) for r in data["requests"]],
        )


@dataclass
class StudyData:
    """The full trace corpus of a user study."""

    traces: list[Trace] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.traces)

    @property
    def user_ids(self) -> list[int]:
        """Distinct user ids, sorted."""
        return sorted({t.user_id for t in self.traces})

    @property
    def task_ids(self) -> list[int]:
        """Distinct task ids, sorted."""
        return sorted({t.task_id for t in self.traces})

    def by_user(self, user_id: int) -> list[Trace]:
        """All traces of one user."""
        return [t for t in self.traces if t.user_id == user_id]

    def by_task(self, task_id: int) -> list[Trace]:
        """All traces of one task."""
        return [t for t in self.traces if t.task_id == task_id]

    def excluding_user(self, user_id: int) -> list[Trace]:
        """Training split for leave-one-user-out cross validation."""
        return [t for t in self.traces if t.user_id != user_id]

    def total_requests(self) -> int:
        """Total requests across all traces (paper: 1390)."""
        return sum(len(t) for t in self.traces)

    # ------------------------------------------------------------------
    # persistence (JSON lines, one trace per line)
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the corpus as JSON lines."""
        with open(Path(path), "w", encoding="utf-8") as handle:
            for trace in self.traces:
                handle.write(json.dumps(trace.to_dict()) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "StudyData":
        """Read a corpus written by :meth:`save`."""
        traces = []
        with open(Path(path), encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    traces.append(Trace.from_dict(json.loads(line)))
        return cls(traces=traces)
