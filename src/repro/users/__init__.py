"""User sessions, traces, and the simulated user study (Section 5.3).

The paper's evaluation is driven by request traces from 18 domain
scientists completing 3 search tasks.  :mod:`repro.users.behavior`
implements a stochastic user policy that follows the paper's own
analysis model (forage at coarse levels → navigate down to a snowy ROI →
sensemake among detail tiles → zoom back out), and
:mod:`repro.users.study` runs 18 seeded simulated participants through
the 3 tasks to produce the study trace corpus.
"""

from repro.users.adversarial import adversarial_walks
from repro.users.behavior import BehaviorProfile, SimulatedUser
from repro.users.convergent import (
    convergent_walks,
    cross_user_hit_rate,
    replay_walks,
)
from repro.users.flashcrowd import flash_crowd_walks
from repro.users.session import Request, StudyData, Trace
from repro.users.study import run_study

__all__ = [
    "BehaviorProfile",
    "Request",
    "SimulatedUser",
    "StudyData",
    "Trace",
    "adversarial_walks",
    "convergent_walks",
    "cross_user_hit_rate",
    "flash_crowd_walks",
    "replay_walks",
    "run_study",
]
