"""Adversarial random-walk workloads (the prediction-hostile scenario).

The study traces and the convergent workload are *kind* to prediction:
users follow visible structure, momentum persists, and popular tiles
stay popular.  A production serving stack must also survive the
opposite — traffic with no learnable structure at all.  This module
generates seeded random walks engineered against each predictor class:

- **Momentum-hostile** steps never repeat the previous move when any
  alternative exists, so the Momentum baseline's single guess is wrong
  by construction on almost every request.
- **Hotspot-hostile** coverage: each user starts from a different
  deterministic corner of the key space and drifts freely across levels,
  so no small top-N of tiles ever accumulates a stable majority of the
  traffic — the degenerate input that once grew
  :class:`~repro.core.popularity.SharedHotspotRegistry` without bound
  (bounded today by sub-epsilon pruning).

Walks are deterministic for a given ``seed`` (per-user generators are
seeded from ``SeedSequence([seed, user])``, the same discipline as the
simulated study), making them usable in regression-gated sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TileGrid

#: One walk: ``(move, key)`` request pairs, first move ``None``.
Walk = list[tuple[Move | None, TileKey]]


def _start_key(grid: TileGrid, user: int, level: int) -> TileKey:
    """A deterministic, user-spread starting tile at ``level``."""
    n = 1 << level
    corner = user % 4
    offset = (user // 4) % max(1, n // 2)
    x = offset if corner in (0, 3) else n - 1 - offset
    y = offset if corner in (0, 2) else n - 1 - offset
    return TileKey(level, x, y)


def adversarial_walks(
    grid: TileGrid,
    num_users: int = 4,
    steps: int = 32,
    seed: int = 0,
    start_level: int | None = None,
    momentum_hostile: bool = True,
) -> list[Walk]:
    """Seeded random walks with no learnable structure.

    Each user takes ``steps`` moves drawn uniformly from the legal moves
    at their current tile; with ``momentum_hostile`` (the default) the
    move that produced the current tile is excluded whenever any other
    legal move exists, so a repeat-last-move predictor mispredicts by
    construction.  ``start_level`` defaults to the deepest level, where
    the key space is largest.
    """
    if num_users < 1:
        raise ValueError(f"num_users must be >= 1, got {num_users}")
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    level = grid.deepest_level if start_level is None else start_level
    if not 0 <= level <= grid.deepest_level:
        raise ValueError(
            f"start_level must be in [0, {grid.deepest_level}], got {level}"
        )
    walks: list[Walk] = []
    for user in range(num_users):
        rng = np.random.default_rng(np.random.SeedSequence([seed, user]))
        current = _start_key(grid, user, level)
        walk: Walk = [(None, current)]
        previous: Move | None = None
        for _ in range(steps):
            options = grid.available_moves(current)
            if momentum_hostile and previous is not None and len(options) > 1:
                hostile = [
                    (move, key) for move, key in options if move is not previous
                ]
                if hostile:
                    options = hostile
            move, current = options[int(rng.integers(len(options)))]
            walk.append((move, current))
            previous = move
        walks.append(walk)
    return walks
