"""Flash-crowd burst workloads (the breaking-news scenario).

Convergent walks model *gradual* agreement: users approach one hot tile
along fixed paths.  A flash crowd is the violent version — traffic is
diffuse until, suddenly, everyone rushes the same tile at once (a
breaking anomaly, a shared dashboard link), dwells briefly, and
disperses again until the next burst.  This stresses exactly what a
shared popularity model plus a shared cache must absorb: the hot set
changes abruptly, and between bursts the signal is almost uniform.

The workload is single-level (pans only), fully deterministic for a
given ``seed``, and shaped in repeating phases per user::

    wander (seeded random pans) -> rush (Manhattan path to the burst
    tile, x-leg then y-leg) -> dwell (oscillate on the burst tile) -> ...

Every user rushes the *same* burst tile in the same phase — the tiles
differ per burst, so popularity must decay for prediction to follow the
crowd (a decaying, pruning
:class:`~repro.core.popularity.SharedHotspotRegistry` tracks it; an
undecayed one blurs all bursts together).
"""

from __future__ import annotations

import numpy as np

from repro.tiles.key import TileKey
from repro.tiles.moves import Move, PAN_OFFSETS, pan_move_for_offset
from repro.tiles.pyramid import TileGrid

#: One walk: ``(move, key)`` request pairs, first move ``None``.
Walk = list[tuple[Move | None, TileKey]]

_PAN_MOVE_ORDER = tuple(PAN_OFFSETS)


def _pan_path(start: TileKey, target: TileKey) -> list[tuple[Move, TileKey]]:
    """Single-pan steps from ``start`` to ``target`` (x-leg, then y-leg)."""
    if start.level != target.level:
        raise ValueError(
            f"pan path needs one level, got {start.level} -> {target.level}"
        )
    steps: list[tuple[Move, TileKey]] = []
    current = start
    while current.x != target.x:
        dx = 1 if target.x > current.x else -1
        move = pan_move_for_offset(dx, 0)
        current = TileKey(current.level, current.x + dx, current.y)
        steps.append((move, current))
    while current.y != target.y:
        dy = 1 if target.y > current.y else -1
        move = pan_move_for_offset(0, dy)
        current = TileKey(current.level, current.x, current.y + dy)
        steps.append((move, current))
    return steps


def flash_crowd_walks(
    grid: TileGrid,
    num_users: int = 4,
    bursts: int = 2,
    wander: int = 4,
    dwell: int = 2,
    seed: int = 0,
    level: int | None = None,
) -> list[Walk]:
    """Deterministic walks that repeatedly rush a shared burst tile.

    Each of the ``bursts`` phases draws one burst tile (shared by every
    user, different per burst, interior so the dwell oscillation has a
    neighbor); each user wanders ``wander`` seeded random pans from
    their own position, rushes the burst tile along a Manhattan pan
    path, then dwells ``dwell`` oscillations on it.  ``level`` defaults
    to the grid's deepest level and must hold at least a 2x2 tile patch.
    """
    if num_users < 1:
        raise ValueError(f"num_users must be >= 1, got {num_users}")
    if bursts < 1:
        raise ValueError(f"bursts must be >= 1, got {bursts}")
    if wander < 0:
        raise ValueError(f"wander must be >= 0, got {wander}")
    if dwell < 0:
        raise ValueError(f"dwell must be >= 0, got {dwell}")
    level = grid.deepest_level if level is None else level
    if not 0 <= level <= grid.deepest_level:
        raise ValueError(
            f"level must be in [0, {grid.deepest_level}], got {level}"
        )
    n = 1 << level
    if n < 2:
        raise ValueError(
            f"flash crowds need >= 2 tiles per dimension, got {n} at "
            f"level {level}"
        )

    burst_rng = np.random.default_rng(np.random.SeedSequence([seed, 0xB]))
    burst_tiles = []
    for _ in range(bursts):
        # Interior-ish: y + 1 stays on the grid for the dwell neighbor.
        x = int(burst_rng.integers(n))
        y = int(burst_rng.integers(n - 1))
        burst_tiles.append(TileKey(level, x, y))

    walks: list[Walk] = []
    for user in range(num_users):
        rng = np.random.default_rng(np.random.SeedSequence([seed, 1 + user]))
        current = TileKey(
            level, int(rng.integers(n)), int(rng.integers(n))
        )
        walk: Walk = [(None, current)]
        for burst_tile in burst_tiles:
            for _ in range(wander):
                options = [
                    (move, key)
                    for move in _PAN_MOVE_ORDER
                    if (key := grid.apply(current, move)) is not None
                ]
                move, current = options[int(rng.integers(len(options)))]
                walk.append((move, current))
            for move, key in _pan_path(current, burst_tile):
                walk.append((move, key))
            current = burst_tile
            neighbor = TileKey(level, burst_tile.x, burst_tile.y + 1)
            for _ in range(dwell):
                walk.append((current.move_to(neighbor), neighbor))
                walk.append((neighbor.move_to(current), current))
        walks.append(walk)
    return walks
