"""Convergent multi-user workloads (the shared-hotspot scenario).

Real exploration traffic converges: many analysts drill into the same
anomaly from different directions (the premise of the paper's Section
6.2 and of cross-client systems like Kyrix's shared backend).  This
module builds that workload synthetically and deterministically so the
cross-user *prediction* claim is testable: ``num_users`` walks that
approach one globally hot tile ``H`` along L-shaped paths from four
compass corners, then dwell on it.

The shape is chosen to separate prediction sharing from cache sharing:

- Every path has a **turn** the Momentum baseline must mispredict (the
  previous move stops repeating exactly where the path bends toward
  ``H``), and the dwell oscillation makes the *return* moves equally
  momentum-hostile.
- Paths from different corners are **tile-disjoint except near ``H``**,
  so with a one-slot cache a later user's hits cannot come from tiles
  an earlier user left behind — only from *predictions* informed by
  earlier users' traffic.
- Everyone ends dwelling on ``H``, so a live popularity model learns
  ``H`` from user 1 and steers users 2..N through their turns.

Used by ``benchmarks/test_shared_hotspots.py`` and the fast-tier
``tests/test_shared_hotspots.py`` end-to-end assertions.
"""

from __future__ import annotations

from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TileGrid

#: One walk: ``(move, key)`` request pairs, first move ``None``.
Walk = list[tuple[Move | None, TileKey]]


def _l_path(hot: TileKey, corner: int, leg: int) -> list[TileKey]:
    """Keys of one L-shaped approach: leg 1, the turn, leg 2 into hot."""
    hx, hy, level = hot.x, hot.y, hot.level
    if corner == 0:  # from the north-west: east, then south
        first = [TileKey(level, x, hy - leg) for x in range(hx - leg, hx + 1)]
        second = [TileKey(level, hx, y) for y in range(hy - leg + 1, hy + 1)]
    elif corner == 1:  # from the south-east: west, then north
        first = [TileKey(level, x, hy + leg) for x in range(hx + leg, hx, -1)]
        first.append(TileKey(level, hx, hy + leg))
        second = [TileKey(level, hx, y) for y in range(hy + leg - 1, hy - 1, -1)]
    elif corner == 2:  # from the north-east: south, then west
        first = [TileKey(level, hx + leg, y) for y in range(hy - leg, hy + 1)]
        second = [TileKey(level, x, hy) for x in range(hx + leg - 1, hx - 1, -1)]
    else:  # from the south-west: north, then east
        first = [TileKey(level, hx - leg, y) for y in range(hy + leg, hy - 1, -1)]
        second = [TileKey(level, x, hy) for x in range(hx - leg + 1, hx + 1)]
    return first + second


def convergent_walks(
    grid: TileGrid,
    hot: TileKey | None = None,
    num_users: int = 4,
    leg: int = 3,
    dwell: int = 2,
) -> list[Walk]:
    """Deterministic walks converging on one hot tile.

    User ``u`` approaches from corner ``u % 4``; every walk ends with
    ``dwell`` oscillations between ``hot`` and its southern neighbor.
    ``hot`` defaults to the center tile of the grid's deepest level.
    The turn corner sits ``leg`` moves from ``hot``, so a live hotspot
    model with ``proximity >= leg`` can steer the turn.
    """
    if num_users < 1:
        raise ValueError(f"num_users must be >= 1, got {num_users}")
    if leg < 2:
        raise ValueError(f"leg must be >= 2 (a path needs a turn), got {leg}")
    if dwell < 0:
        raise ValueError(f"dwell must be >= 0, got {dwell}")
    if hot is None:
        level = grid.deepest_level
        n = 1 << level
        hot = TileKey(level, n // 2, n // 2)
    n = 1 << hot.level
    if not (
        leg <= hot.x < n - leg and leg <= hot.y < n - leg and hot.y + 1 < n
    ):
        raise ValueError(
            f"hot tile {hot} needs {leg} tiles of margin on every side "
            f"(grid is {n}x{n} at level {hot.level})"
        )
    neighbor = TileKey(hot.level, hot.x, hot.y + 1)
    walks: list[Walk] = []
    for user in range(num_users):
        keys = _l_path(hot, user % 4, leg)
        for _ in range(dwell):
            keys.extend((neighbor, hot))
        walk: Walk = [(None, keys[0])]
        for previous, current in zip(keys, keys[1:]):
            move = previous.move_to(current)
            if move is None:
                raise AssertionError(
                    f"non-adjacent walk step {previous} -> {current}"
                )
            walk.append((move, current))
        for _, key in walk:
            if not grid.valid(key):
                raise ValueError(f"walk leaves the grid at {key}")
        walks.append(walk)
    return walks


def replay_walks(service, walks: list[Walk]) -> list:
    """Replay each walk in its own (sequential) service session.

    Sessions run one after another — the deterministic setting where a
    later user's registry state is exactly the earlier users' full
    traffic.  Returns each session's
    :class:`~repro.middleware.latency.LatencyRecorder`.
    """
    recorders = []
    for index, walk in enumerate(walks):
        with service.open_session(session_id=f"user-{index + 1}") as handle:
            for move, key in walk:
                handle.request(move, key)
            recorders.append(handle.recorder)
    return recorders


def cross_user_hit_rate(recorders: list) -> float:
    """Aggregate hit rate of users 2..N (user 1 is the cold-start user)."""
    later = recorders[1:]
    total = sum(recorder.count for recorder in later)
    if total == 0:
        return 0.0
    return sum(recorder.hits for recorder in later) / total
