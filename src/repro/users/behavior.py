"""The simulated study participant (Section 5.3's users).

The policy follows the paper's own analysis model, with every decision
driven by *what the user can actually see* — the single rendered tile:

- **Foraging**: at a coarse "scanning" level, pan toward snow visible at
  the tile's edges (with a geographic prior toward the task region —
  real scientists know where the US is on a world map), occasionally
  "peeking" one level down and back.  When the current coarse tile shows
  a promising unexplored cluster, commit to it.
- **Navigation (down)**: repeatedly click the snowiest visible quadrant
  until the task's target zoom level.
- **Sensemaking**: at the target level, record tiles satisfying the task
  and pan along the visible snow structure (mountain ridges), with some
  directional persistence.  When the local area is exhausted, retreat.
- **Navigation (up)**: zoom out several levels and resume foraging in a
  different part of the region.

Per-user stochastic profiles (attention, persistence, wandering, peek
rate, retreat depth) create the between-user variation visible in the
paper's Figures 8c-8e.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.modis.dataset import MODISDataset
from repro.modis.regions import TaskSpec
from repro.phases.model import AnalysisPhase
from repro.tiles.key import TileKey
from repro.tiles.moves import Move, pan_move_for_offset, zoom_in_move_for_quadrant
from repro.users.session import Request, Trace

_PAN_DIRECTIONS = {
    "left": (-1, 0),
    "right": (1, 0),
    "up": (0, -1),
    "down": (0, 1),
}

_REVERSE_PAN = {
    Move.PAN_LEFT: Move.PAN_RIGHT,
    Move.PAN_RIGHT: Move.PAN_LEFT,
    Move.PAN_UP: Move.PAN_DOWN,
    Move.PAN_DOWN: Move.PAN_UP,
}


@dataclass(frozen=True)
class BehaviorProfile:
    """Per-user behavioral parameters.

    ``attention`` is the probability of taking the visually best option
    (vs the runner-up); ``persistence`` the tendency to keep panning the
    same direction; ``wander`` the rate of undirected exploratory pans;
    ``peek_rate`` the rate of quick zoom-in/zoom-out peeks while
    foraging; ``retreat_depth`` how many levels the user zooms back out
    before re-foraging; ``patience`` how many consecutive unpromising
    sensemaking pans the user tolerates.
    """

    attention: float
    persistence: float
    wander: float
    peek_rate: float
    retreat_depth: int
    patience: int
    cluster_greed: float
    verify_rate: float
    compare_rate: float

    def __post_init__(self) -> None:
        for name in (
            "attention",
            "persistence",
            "wander",
            "peek_rate",
            "cluster_greed",
            "verify_rate",
            "compare_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.retreat_depth < 1:
            raise ValueError("retreat_depth must be >= 1")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")

    @classmethod
    def sample(cls, rng: np.random.Generator) -> "BehaviorProfile":
        """Draw a random but plausible participant profile."""
        return cls(
            attention=float(rng.uniform(0.78, 0.97)),
            persistence=float(rng.uniform(0.3, 0.7)),
            wander=float(rng.uniform(0.03, 0.18)),
            peek_rate=float(rng.uniform(0.05, 0.22)),
            retreat_depth=int(rng.integers(2, 4)),
            patience=int(rng.integers(2, 5)),
            cluster_greed=float(rng.uniform(0.25, 0.75)),
            verify_rate=float(rng.uniform(0.1, 0.3)),
            compare_rate=float(rng.uniform(0.1, 0.3)),
        )


class SimulatedUser:
    """One study participant: runs tasks against a MODIS dataset."""

    def __init__(
        self,
        dataset: MODISDataset,
        user_id: int,
        profile: BehaviorProfile,
        seed: int,
        max_requests: int = 90,
    ) -> None:
        self.dataset = dataset
        self.user_id = user_id
        self.profile = profile
        self.seed = seed
        self.max_requests = max_requests

    # ------------------------------------------------------------------
    # task execution
    # ------------------------------------------------------------------
    def run_task(self, task: TaskSpec) -> Trace:
        """Complete one search task, returning the request trace."""
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, self.user_id, task.task_id])
        )
        session = _TaskSession(self.dataset, task, self.profile, rng, self.max_requests)
        requests = session.run()
        return Trace(user_id=self.user_id, task_id=task.task_id, requests=requests)


class _TaskSession:
    """Mutable state for one user completing one task."""

    def __init__(
        self,
        dataset: MODISDataset,
        task: TaskSpec,
        profile: BehaviorProfile,
        rng: np.random.Generator,
        max_requests: int,
    ) -> None:
        self.dataset = dataset
        self.task = task
        self.profile = profile
        self.rng = rng
        self.max_requests = max_requests
        self.grid = dataset.pyramid.grid
        self.target_level = task.target_level(dataset.num_levels)
        self.forage_level = self._choose_forage_level()
        # Explored areas are remembered at a granularity between the
        # scanning and target levels: fine enough that ruling out one
        # cluster does not rule out the whole region.
        self.exhaust_level = min(
            self.target_level,
            (self.forage_level + self.target_level + 1) // 2,
        )
        # Snow visibility threshold: a bit below the task's requirement,
        # since users chase anything that might qualify.
        self.view_threshold = max(0.0, task.ndsi_threshold - 0.25)

        self.requests: list[Request] = []
        self.current = self.grid.root
        self.found: set[TileKey] = set()
        self.visited_targets: set[TileKey] = set()
        self.exhausted_regions: set[TileKey] = set()
        self.forage_visits: dict[TileKey, int] = {}
        self.peeked: set[TileKey] = set()
        self.last_pan: Move | None = None

    # ------------------------------------------------------------------
    # geography the user knows
    # ------------------------------------------------------------------
    def _overlaps_bbox(self, key: TileKey) -> bool:
        """Does this tile's coverage intersect the task region?"""
        x_min, y_min, x_max, y_max = self.task.bbox
        b = key.normalized_bounds()
        return not (b[2] < x_min or b[0] > x_max or b[3] < y_min or b[1] > y_max)

    def _center_in_bbox(self, key: TileKey) -> bool:
        """Is this tile's center inside the task region?"""
        cx, cy = key.normalized_center()
        return self.task.contains(cx, cy)

    def _mark_exhausted(self, key: TileKey) -> None:
        """Write off a patch (at ``exhaust_level`` granularity or coarser)."""
        if key.level > self.exhaust_level:
            key = key.ancestor(self.exhaust_level)
        self.exhausted_regions.add(key)

    def _fully_exhausted(self, key: TileKey) -> bool:
        """Has every explorable patch under this tile been ruled out?

        A tile is dead when it (or an ancestor) was written off, or when
        written-off patches cover its whole area.
        """
        for level in range(key.level + 1):
            if key.ancestor(level) in self.exhausted_regions:
                return True
        if key.level >= self.exhaust_level:
            return False
        # Sum the coverage of marked patches underneath this tile.
        total = 4 ** (self.exhaust_level - key.level)
        covered = 0
        for region in self.exhausted_regions:
            if region.level >= key.level and region.ancestor(key.level) == key:
                covered += 4 ** (self.exhaust_level - region.level)
        return covered >= total

    def _visited_fraction(self, key: TileKey) -> float:
        """Fraction of this tile's target-level descendants already seen."""
        if key.level > self.target_level:
            return 0.0
        span = 4 ** (self.target_level - key.level)
        count = sum(
            1 for t in self.visited_targets if t.ancestor(key.level) == key
        )
        return count / span

    def _choose_forage_level(self) -> int:
        """The coarse scanning level: tiles about the task region's size."""
        x_min, y_min, x_max, y_max = self.task.bbox
        extent = max(x_max - x_min, y_max - y_min)
        level = int(np.floor(np.log2(1.0 / extent))) + 1
        return int(np.clip(level, 1, max(1, self.target_level - 1)))

    # ------------------------------------------------------------------
    # request recording
    # ------------------------------------------------------------------
    def _record(self, move: Move | None, tile: TileKey, phase: AnalysisPhase) -> None:
        self.requests.append(
            Request(index=len(self.requests), tile=tile, move=move, phase=phase)
        )
        self.current = tile
        if move is not None and move.is_pan:
            self.last_pan = move
        elif move is not None:
            self.last_pan = None

    def _done(self) -> bool:
        return (
            len(self.found) >= self.task.tiles_to_find
            or len(self.requests) >= self.max_requests
        )

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> list[Request]:
        self._record(None, self.grid.root, AnalysisPhase.FORAGING)
        self._locate()
        while not self._done():
            committed = self._forage()
            if self._done():
                break
            if committed:
                reached_target = self._descend()
                if reached_target:
                    dead_end = self._sensemake()
                else:
                    # The promise evaporated on the way down; write off
                    # where we got stuck.
                    dead_end = True
                if not self._done():
                    self._retreat(exhaust=dead_end)
            else:
                # Foraging stalled with nothing promising in sight;
                # widen the view and keep scanning.
                if self.current.level > 1:
                    self._record(
                        Move.ZOOM_OUT, self.current.parent, AnalysisPhase.FORAGING
                    )
                else:
                    break
        return self.requests

    # ------------------------------------------------------------------
    # phase behaviours
    # ------------------------------------------------------------------
    def _locate(self) -> None:
        """Zoom from the root toward the task region's scanning level.

        Labeled Foraging: the user is still scanning coarse overviews on
        the way to the area of interest.
        """
        bx = (self.task.bbox[0] + self.task.bbox[2]) / 2.0
        by = (self.task.bbox[1] + self.task.bbox[3]) / 2.0
        while self.current.level < self.forage_level and not self._done():
            n = 1 << (self.current.level + 1)
            cx = min(int(bx * n), n - 1)
            cy = min(int(by * n), n - 1)
            dx = int(np.clip(cx - 2 * self.current.x, 0, 1))
            dy = int(np.clip(cy - 2 * self.current.y, 0, 1))
            move = zoom_in_move_for_quadrant(dx, dy)
            self._record(move, self.current.child(dx, dy), AnalysisPhase.FORAGING)

    def _forage(self) -> bool:
        """Scan at the coarse level; True when committing to a descent."""
        steps = 0
        while not self._done() and steps < 12:
            steps += 1
            self.forage_visits[self.current] = (
                self.forage_visits.get(self.current, 0) + 1
            )
            if self._promising(self.current):
                return True
            if (
                self.current not in self.peeked
                and self.rng.random() < self.profile.peek_rate
            ):
                self._peek()
                continue
            move = self._choose_forage_pan()
            if move is None:
                return False
            target = self.grid.apply(self.current, move)
            self._record(move, target, AnalysisPhase.FORAGING)
        return False

    def _peek(self) -> None:
        """A quick look one level down and back (still Foraging)."""
        if self.current.level + 1 >= self.dataset.num_levels:
            return
        self.peeked.add(self.current)
        quadrants = self.dataset.quadrant_saliency(self.current, self.view_threshold)
        (dx, dy), _ = max(quadrants.items(), key=lambda item: item[1])
        child = self.current.child(dx, dy)
        if not self.grid.valid(child):
            return
        parent = self.current
        self._record(
            zoom_in_move_for_quadrant(dx, dy), child, AnalysisPhase.FORAGING
        )
        if self._done():
            return
        self._record(Move.ZOOM_OUT, parent, AnalysisPhase.FORAGING)

    def _promising(self, key: TileKey) -> bool:
        """Does this coarse tile show an unexplored qualifying cluster?"""
        if self._fully_exhausted(key):
            return False
        # The tile must at least overlap the task region.
        if not self._overlaps_bbox(key):
            return False
        return (
            self.dataset.saliency(key, self.view_threshold) > 0.03
            and self.dataset.max_ndsi(key) > self.task.ndsi_threshold
        )

    def _choose_forage_pan(self) -> Move | None:
        """Pan toward visible snow, biased toward the task region."""
        edge = self.dataset.edge_saliency(self.current, self.view_threshold)
        bx = (self.task.bbox[0] + self.task.bbox[2]) / 2.0
        by = (self.task.bbox[1] + self.task.bbox[3]) / 2.0
        cx, cy = self.current.normalized_center()
        scored: list[tuple[float, Move]] = []
        for direction, (dx, dy) in _PAN_DIRECTIONS.items():
            move = pan_move_for_offset(dx, dy)
            target = self.grid.apply(self.current, move)
            if target is None or self._fully_exhausted(target):
                continue
            geographic = dx * np.sign(bx - cx) + dy * np.sign(by - cy)
            score = edge[direction] + 0.25 * geographic
            if self.last_pan is not None and move is self.last_pan:
                score += 0.15 * self.profile.persistence
            # Recently revisited tiles look stale; go somewhere new.
            score -= 0.3 * self.forage_visits.get(target, 0)
            scored.append((score, move))
        if not scored:
            return None
        if self.rng.random() < self.profile.wander:
            return scored[int(self.rng.integers(len(scored)))][1]
        scored.sort(key=lambda item: -item[0])
        if len(scored) > 1 and self.rng.random() > self.profile.attention:
            return scored[1][1]
        return scored[0][1]

    def _descend(self) -> bool:
        """Navigation: zoom to the target level via the snowiest quadrant
        that stays inside the task region.

        Returns False when every quadrant is visibly worthless (nothing
        new to zoom into) — the descent stalls and the caller retreats.
        """
        while self.current.level < self.target_level and not self._done():
            quadrants = self.dataset.quadrant_saliency(self.current, self.view_threshold)
            scored = []
            for (dx, dy), snow in quadrants.items():
                child = self.current.child(dx, dy)
                # Off-region quadrants are a last resort: the user knows
                # Antarctic snow does not answer a South America task.
                weight = 1.0 if self._overlaps_bbox(child) else 0.02
                if self._fully_exhausted(child):
                    weight *= 0.05
                # Prefer parts of the region not yet examined in detail.
                weight *= (1.0 - self._visited_fraction(child)) ** 2
                score = snow * weight
                if score > 1e-9:
                    scored.append((score, (dx, dy)))
            if not scored:
                return False
            scored.sort(key=lambda item: -item[0])
            if len(scored) > 1 and self.rng.random() > self.profile.attention:
                _, (dx, dy) = scored[1]
            else:
                _, (dx, dy) = scored[0]
            move = zoom_in_move_for_quadrant(dx, dy)
            self._record(move, self.current.child(dx, dy), AnalysisPhase.NAVIGATION)
        return self.current.level == self.target_level

    def _sensemake(self) -> bool:
        """Pan along visible snow at the target level, collecting finds.

        Returns True when the area turned out to be a dead end (nothing
        promising left) — the caller then writes the patch off.  Leaving
        to diversify after a find returns False: the user may come back.
        """
        unpromising_streak = 0
        while not self._done():
            self.visited_targets.add(self.current)
            if (
                self.current not in self.found
                and self.dataset.satisfies_task(self.current, self.task)
            ):
                self.found.add(self.current)
                unpromising_streak = 0
                if self._done():
                    return False
                # Diversify or keep following the structure?  A ridge
                # visibly continuing past the tile edge (the Andes) pulls
                # the user along; a self-contained blob (a Rockies
                # patch) sends her back out to forage (Figure 9's
                # repeated descents).
                continuation = self._best_fresh_edge()
                if continuation > 0.12:
                    stay = self.profile.cluster_greed + 0.35
                else:
                    stay = 0.3 * self.profile.cluster_greed
                if self.rng.random() > float(np.clip(stay, 0.05, 0.95)):
                    return False
            if (
                self.current.level + 1 < self.dataset.num_levels
                and self.rng.random() < self.profile.verify_rate
            ):
                self._verify_zoom()
                if self._done():
                    return False
                continue
            move = self._choose_sensemaking_pan()
            if move is None:
                return True
            target = self.grid.apply(self.current, move)
            promising = (
                self.dataset.max_ndsi(target) > self.task.ndsi_threshold
                and self._center_in_bbox(target)
            )
            unpromising_streak = 0 if promising else unpromising_streak + 1
            self._record(move, target, AnalysisPhase.SENSEMAKING)
            if unpromising_streak >= self.profile.patience:
                return True
            if (
                not promising
                and move in _REVERSE_PAN
                and self.rng.random() < self.profile.compare_rate
            ):
                # Double-check against the previous tile before deciding
                # (comparing neighbors is the essence of Sensemaking).
                back = _REVERSE_PAN[move]
                origin = self.grid.apply(self.current, back)
                if origin is not None:
                    self._record(back, origin, AnalysisPhase.SENSEMAKING)
        return False

    def _verify_zoom(self) -> None:
        """Peek one level into the most interesting quadrant and return —
        the small oscillations at detailed levels in the paper's
        Figure 9."""
        quadrants = self.dataset.quadrant_saliency(self.current, self.view_threshold)
        (dx, dy), _ = max(quadrants.items(), key=lambda item: item[1])
        parent = self.current
        self._record(
            zoom_in_move_for_quadrant(dx, dy),
            self.current.child(dx, dy),
            AnalysisPhase.SENSEMAKING,
        )
        if self._done():
            return
        self._record(Move.ZOOM_OUT, parent, AnalysisPhase.SENSEMAKING)

    def _best_fresh_edge(self) -> float:
        """Strongest remembered snow on a not-yet-visited neighbor."""
        best = 0.0
        for direction, (dx, dy) in _PAN_DIRECTIONS.items():
            move = pan_move_for_offset(dx, dy)
            target = self.grid.apply(self.current, move)
            if target is None or target in self.visited_targets:
                continue
            if not self._center_in_bbox(target):
                continue
            best = max(best, self.dataset.saliency(target, self.view_threshold))
        return best

    def _choose_sensemaking_pan(self) -> Move | None:
        """Pan to the most interesting unexamined neighbor.

        During the descent the user saw this whole area at the coarser
        level, so she carries a mental map of roughly which neighbors
        hold snow — her pans chase *content*, not momentum.  (This is
        what makes Sensemaking the Signature-Based model's phase: the
        next tile is whichever neighbor looks most like the region of
        interest, not whichever continues the current direction.)
        """
        edge = self.dataset.edge_saliency(self.current, self.view_threshold)
        scored: list[tuple[float, Move]] = []
        for direction, (dx, dy) in _PAN_DIRECTIONS.items():
            move = pan_move_for_offset(dx, dy)
            target = self.grid.apply(self.current, move)
            if target is None:
                continue
            # What she remembers of the target plus what the current
            # tile's edge shows of it.
            score = (
                0.75 * self.dataset.saliency(target, self.view_threshold)
                + 0.25 * edge[direction]
            )
            if target in self.visited_targets:
                score -= 0.5
            if not self._center_in_bbox(target):
                # Leaving the task region: visibly off-task.
                score -= 0.6
            if self.last_pan is not None and move is self.last_pan:
                score += 0.05 * self.profile.persistence
            scored.append((score, move))
        if not scored:
            return None
        scored.sort(key=lambda item: -item[0])
        best_score, best_move = scored[0]
        if best_score <= 0.02:
            # Nothing worth panning to: area exhausted.
            return None
        if len(scored) > 1 and self.rng.random() > self.profile.attention:
            return scored[1][1]
        return best_move

    def _retreat(self, exhaust: bool = True) -> None:
        """Navigation: zoom back out toward the scanning level.

        ``exhaust`` marks the patch as a dead end; diversification
        retreats leave it available for a later return.
        """
        if exhaust:
            self._mark_exhausted(self.current)
        retreat_to = max(
            self.forage_level, self.current.level - self.profile.retreat_depth
        )
        while self.current.level > retreat_to and not self._done():
            self._record(
                Move.ZOOM_OUT, self.current.parent, AnalysisPhase.NAVIGATION
            )
        if not self._done() and self.current.level > self.forage_level:
            # Often the user keeps zooming out to the scanning level.
            while self.current.level > self.forage_level and not self._done():
                if self.rng.random() < 0.5:
                    break
                self._record(
                    Move.ZOOM_OUT, self.current.parent, AnalysisPhase.NAVIGATION
                )
