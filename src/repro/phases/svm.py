"""A from-scratch soft-margin kernel SVM trained with SMO.

The paper uses LibSVM's multi-class RBF SVM (Section 4.2.2).  Offline we
implement the same estimator: a binary soft-margin SVM solved by
Platt-style Sequential Minimal Optimization with an error cache, and an
RBF kernel.  Multi-class handling (one-vs-one voting, as in LibSVM)
lives in :mod:`repro.phases.classifier`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """Pairwise RBF kernel matrix ``exp(-gamma * ||x - y||^2)``."""
    a = np.atleast_2d(np.asarray(a, dtype="float64"))
    b = np.atleast_2d(np.asarray(b, dtype="float64"))
    sq = (
        np.sum(a**2, axis=1)[:, None]
        - 2.0 * a @ b.T
        + np.sum(b**2, axis=1)[None, :]
    )
    return np.exp(-gamma * np.maximum(sq, 0.0))


@dataclass
class SVMModel:
    """A trained binary SVM: support vectors and decision function."""

    support_vectors: np.ndarray
    dual_coef: np.ndarray  # alpha_i * y_i for each support vector
    bias: float
    gamma: float

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed distances to the separating surface."""
        x = np.atleast_2d(np.asarray(x, dtype="float64"))
        if self.support_vectors.shape[0] == 0:
            return np.full(x.shape[0], self.bias)
        k = rbf_kernel(x, self.support_vectors, self.gamma)
        return k @ self.dual_coef + self.bias

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class labels in {-1, +1}."""
        return np.where(self.decision_function(x) >= 0.0, 1.0, -1.0)

    @property
    def num_support_vectors(self) -> int:
        """Number of support vectors retained."""
        return self.support_vectors.shape[0]


class SMOTrainer:
    """Sequential Minimal Optimization for the binary soft-margin SVM.

    Platt's working-set heuristics, simplified: sweep examples violating
    the KKT conditions within tolerance, pair each with the example of
    maximal |E_i - E_j| (falling back to random), and optimize the pair
    analytically.  Errors are cached and updated incrementally.
    """

    def __init__(
        self,
        c: float = 10.0,
        gamma: float | str = "scale",
        tol: float = 1e-3,
        max_passes: int = 3,
        max_sweeps: int = 60,
        seed: int = 0,
    ) -> None:
        if c <= 0:
            raise ValueError(f"C must be positive, got {c}")
        self.c = c
        self.gamma = gamma
        self.tol = tol
        self.max_passes = max_passes
        self.max_sweeps = max_sweeps
        self.seed = seed

    def _resolve_gamma(self, x: np.ndarray) -> float:
        if self.gamma == "scale":
            variance = float(x.var())
            if variance == 0.0:
                variance = 1.0
            return 1.0 / (x.shape[1] * variance)
        return float(self.gamma)

    def fit(self, x: np.ndarray, y: np.ndarray) -> SVMModel:
        """Train on features ``x`` and labels ``y`` in {-1, +1}."""
        x = np.asarray(x, dtype="float64")
        y = np.asarray(y, dtype="float64").ravel()
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError(
                f"inconsistent shapes: x {x.shape}, y {y.shape}"
            )
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValueError("labels must be -1 or +1")
        n = x.shape[0]
        gamma = self._resolve_gamma(x)
        if len(np.unique(y)) < 2:
            # Degenerate problem: constant decision at the only label.
            return SVMModel(
                support_vectors=np.zeros((0, x.shape[1])),
                dual_coef=np.zeros(0),
                bias=float(y[0]),
                gamma=gamma,
            )

        kernel = rbf_kernel(x, x, gamma)
        alpha = np.zeros(n)
        bias = 0.0
        rng = np.random.default_rng(self.seed)

        def error(i: int) -> float:
            return float((alpha * y) @ kernel[:, i] + bias - y[i])

        errors = (alpha * y) @ kernel + bias - y
        passes = 0
        sweeps = 0
        while passes < self.max_passes and sweeps < self.max_sweeps:
            sweeps += 1
            changed = 0
            for i in range(n):
                e_i = errors[i]
                violates = (y[i] * e_i < -self.tol and alpha[i] < self.c) or (
                    y[i] * e_i > self.tol and alpha[i] > 0
                )
                if not violates:
                    continue
                # Second-choice heuristic: maximize |E_i - E_j|.
                j = int(np.argmax(np.abs(errors - e_i)))
                if j == i:
                    j = int(rng.integers(n - 1))
                    if j >= i:
                        j += 1
                e_j = errors[j]

                alpha_i_old, alpha_j_old = alpha[i], alpha[j]
                if y[i] != y[j]:
                    low = max(0.0, alpha[j] - alpha[i])
                    high = min(self.c, self.c + alpha[j] - alpha[i])
                else:
                    low = max(0.0, alpha[i] + alpha[j] - self.c)
                    high = min(self.c, alpha[i] + alpha[j])
                if low >= high:
                    continue
                eta = 2.0 * kernel[i, j] - kernel[i, i] - kernel[j, j]
                if eta >= 0:
                    continue
                alpha_j = alpha_j_old - y[j] * (e_i - e_j) / eta
                alpha_j = float(np.clip(alpha_j, low, high))
                if abs(alpha_j - alpha_j_old) < 1e-6:
                    continue
                alpha_i = alpha_i_old + y[i] * y[j] * (alpha_j_old - alpha_j)

                b1 = (
                    bias
                    - e_i
                    - y[i] * (alpha_i - alpha_i_old) * kernel[i, i]
                    - y[j] * (alpha_j - alpha_j_old) * kernel[i, j]
                )
                b2 = (
                    bias
                    - e_j
                    - y[i] * (alpha_i - alpha_i_old) * kernel[i, j]
                    - y[j] * (alpha_j - alpha_j_old) * kernel[j, j]
                )
                if 0.0 < alpha_i < self.c:
                    new_bias = b1
                elif 0.0 < alpha_j < self.c:
                    new_bias = b2
                else:
                    new_bias = (b1 + b2) / 2.0

                delta_i = (alpha_i - alpha_i_old) * y[i]
                delta_j = (alpha_j - alpha_j_old) * y[j]
                errors += (
                    delta_i * kernel[:, i]
                    + delta_j * kernel[:, j]
                    + (new_bias - bias)
                )
                alpha[i], alpha[j] = alpha_i, alpha_j
                bias = new_bias
                changed += 1
            if changed == 0:
                passes += 1
            else:
                passes = 0

        support = alpha > 1e-8
        return SVMModel(
            support_vectors=x[support],
            dual_coef=(alpha * y)[support],
            bias=float(bias),
            gamma=gamma,
        )
