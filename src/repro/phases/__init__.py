"""The three-phase analysis model and phase classifier (Section 4.2).

Users browsing array data alternate between three analysis phases:

- **Foraging** — scanning coarse zoom levels for interesting regions,
- **Navigation** — zooming between coarse and detailed levels,
- **Sensemaking** — comparing neighboring tiles at detailed levels.

The top level of the prediction engine classifies the user's current
phase from her recent requests with a multi-class RBF-kernel SVM
(trained from scratch via SMO — the paper uses LibSVM).
"""

from repro.phases.classifier import PhaseClassifier
from repro.phases.features import FEATURE_NAMES, feature_vector, trace_features
from repro.phases.labeler import label_trace
from repro.phases.model import AnalysisPhase
from repro.phases.svm import SMOTrainer, SVMModel, rbf_kernel

__all__ = [
    "AnalysisPhase",
    "FEATURE_NAMES",
    "PhaseClassifier",
    "SMOTrainer",
    "SVMModel",
    "feature_vector",
    "label_trace",
    "rbf_kernel",
    "trace_features",
]
