"""Feature extraction for the phase classifier (Table 1).

Each request yields six features computed from the requested tile and
the move that produced it: the tile's X and Y positions (in tiles), its
zoom level, and one-hot flags for pan / zoom-in / zoom-out.  Only
interaction data and relative tile positions are used, so the classifier
transfers to any tile-amenable dataset (Section 4.2.2).
"""

from __future__ import annotations

import numpy as np

from repro.phases.model import AnalysisPhase
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.users.session import Trace

#: Feature order, matching Table 1.
FEATURE_NAMES: tuple[str, ...] = (
    "x_position",
    "y_position",
    "zoom_level",
    "pan_flag",
    "zoom_in_flag",
    "zoom_out_flag",
)


def feature_vector(tile: TileKey, move: Move | None) -> np.ndarray:
    """The Table 1 feature vector for one request.

    The session's initial request has no move; its flags are all zero.
    """
    pan_flag = 1.0 if move is not None and move.is_pan else 0.0
    zoom_in_flag = 1.0 if move is not None and move.is_zoom_in else 0.0
    zoom_out_flag = 1.0 if move is not None and move.is_zoom_out else 0.0
    return np.asarray(
        [
            float(tile.x),
            float(tile.y),
            float(tile.level),
            pan_flag,
            zoom_in_flag,
            zoom_out_flag,
        ]
    )


def trace_features(
    traces: list[Trace],
) -> tuple[np.ndarray, list[AnalysisPhase]]:
    """Stack feature vectors and phase labels for all labeled requests.

    Requests without a phase label are skipped (there are none in the
    simulated study; external traces may be partially labeled).
    """
    rows: list[np.ndarray] = []
    labels: list[AnalysisPhase] = []
    for trace in traces:
        for request in trace.requests:
            if request.phase is None:
                continue
            rows.append(feature_vector(request.tile, request.move))
            labels.append(request.phase)
    if not rows:
        return np.zeros((0, len(FEATURE_NAMES))), []
    return np.stack(rows), labels
