"""Heuristic phase labeling (the hand-label analogue for external traces).

The paper hand-labeled every study request with its analysis phase.  Our
simulated users record the generating phase directly; for traces that
lack labels (recorded from a real client, say) this module assigns them
with the same rubric a human labeler would use:

- zooming (in or out) is **Navigation** — the user is moving between the
  coarse and detailed strata,
- panning (or sitting) at detailed levels is **Sensemaking** — comparing
  neighboring tiles against a hypothesis,
- panning (or sitting) at coarse levels is **Foraging** — scanning for
  new regions of interest.
"""

from __future__ import annotations

from repro.phases.model import AnalysisPhase
from repro.users.session import Trace


def detail_cutoff(num_levels: int) -> int:
    """The zoom level at which browsing counts as "detailed".

    Two thirds of the way down the pyramid: with the paper's 9 levels
    that puts levels 6-8 in Sensemaking territory, matching the study's
    task target levels.
    """
    if num_levels < 1:
        raise ValueError(f"num_levels must be >= 1, got {num_levels}")
    return max(1, (2 * (num_levels - 1) + 2) // 3)


def label_trace(trace: Trace, num_levels: int) -> list[AnalysisPhase]:
    """Assign a phase to every request in a trace."""
    cutoff = detail_cutoff(num_levels)
    labels: list[AnalysisPhase] = []
    for request in trace.requests:
        move = request.move
        if move is not None and (move.is_zoom_in or move.is_zoom_out):
            labels.append(AnalysisPhase.NAVIGATION)
        elif request.tile.level >= cutoff:
            labels.append(AnalysisPhase.SENSEMAKING)
        else:
            labels.append(AnalysisPhase.FORAGING)
    return labels


def model_fit_fraction(trace: Trace, num_levels: int) -> float:
    """Fraction of labeled requests consistent with the three-phase model.

    Section 5.3.5 reports that only 57 of 1390 study requests were "not
    described adequately" by the model.  A request is consistent when
    its phase label matches the phase's definition:

    - Foraging happens at coarse levels (pans, peeks, and the zooms
      between coarse levels all count as scanning),
    - Navigation is zooming (any level),
    - Sensemaking happens at detailed levels (neighbor pans and
      verification zooms).
    """
    cutoff = detail_cutoff(num_levels)
    consistent = 0
    labeled = 0
    for request in trace.requests:
        phase = request.phase
        if phase is None:
            continue
        labeled += 1
        level = request.tile.level
        move = request.move
        if phase is AnalysisPhase.FORAGING:
            fits = level <= cutoff
        elif phase is AnalysisPhase.NAVIGATION:
            fits = move is None or move.is_zoom_in or move.is_zoom_out
        else:  # SENSEMAKING
            fits = level >= cutoff - 1
        if fits:
            consistent += 1
    return consistent / labeled if labeled else 0.0


def label_agreement(trace: Trace, num_levels: int) -> float:
    """Fraction of already-labeled requests the heuristic agrees with.

    Useful for validating the simulator's generation-time labels against
    the rubric (Section 5.3.5 reports 1333/1390 requests fitting the
    model).
    """
    heuristic = label_trace(trace, num_levels)
    pairs = [
        (request.phase, label)
        for request, label in zip(trace.requests, heuristic)
        if request.phase is not None
    ]
    if not pairs:
        return 0.0
    agreed = sum(1 for actual, predicted in pairs if actual is predicted)
    return agreed / len(pairs)
