"""The three analysis phases (Section 4.2.1).

The paper extends the Pirolli/Card Sensemaking model with an explicit
Navigation phase, and shows (Section 5.3.5) that almost all study
requests fit this three-phase structure.
"""

from __future__ import annotations

from enum import Enum


class AnalysisPhase(Enum):
    """The user's current frame of mind while exploring."""

    #: Scanning coarse zoom levels for visually interesting patterns and
    #: forming hypotheses (new regions of interest).
    FORAGING = "foraging"

    #: Zooming between the coarse levels of Foraging and the detailed
    #: levels of Sensemaking — shifting the analysis focus.
    NAVIGATION = "navigation"

    #: Comparing neighboring tiles at detailed zoom levels to confirm or
    #: refute the current hypothesis.
    SENSEMAKING = "sensemaking"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def from_string(cls, value: str) -> "AnalysisPhase":
        """Parse a phase from its serialized string value."""
        for phase in cls:
            if phase.value == value:
                return phase
        raise ValueError(f"unknown analysis phase {value!r}")


#: Stable ordering for reports and confusion matrices.
ALL_PHASES: tuple[AnalysisPhase, ...] = (
    AnalysisPhase.FORAGING,
    AnalysisPhase.NAVIGATION,
    AnalysisPhase.SENSEMAKING,
)
