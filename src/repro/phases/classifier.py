"""The analysis-phase classifier: multi-class RBF SVM (Section 4.2.2).

One-vs-one over the three phases (three binary SVMs, majority vote with
decision-value tie-breaking — LibSVM's scheme).  Features are
standardized with training-set statistics before hitting the kernel.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.phases.features import FEATURE_NAMES, feature_vector, trace_features
from repro.phases.model import ALL_PHASES, AnalysisPhase
from repro.phases.svm import SMOTrainer, SVMModel
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.users.session import Trace


class PhaseClassifier:
    """Predicts the user's current analysis phase from request features."""

    def __init__(
        self,
        c: float = 10.0,
        gamma: float | str = 1.0,
        feature_indices: Sequence[int] | None = None,
        seed: int = 0,
    ) -> None:
        """``feature_indices`` restricts the model to a feature subset —
        Table 1's per-feature accuracy study trains one classifier per
        single index."""
        self.c = c
        self.gamma = gamma
        self.seed = seed
        if feature_indices is None:
            self.feature_indices = tuple(range(len(FEATURE_NAMES)))
        else:
            self.feature_indices = tuple(feature_indices)
            for index in self.feature_indices:
                if not 0 <= index < len(FEATURE_NAMES):
                    raise ValueError(f"feature index {index} out of range")
        self._models: dict[tuple[AnalysisPhase, AnalysisPhase], SVMModel] = {}
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: Sequence[AnalysisPhase]) -> "PhaseClassifier":
        """Train the one-vs-one ensemble on a feature matrix."""
        features = np.asarray(features, dtype="float64")[:, self.feature_indices]
        labels = list(labels)
        if features.shape[0] != len(labels):
            raise ValueError(
                f"{features.shape[0]} feature rows vs {len(labels)} labels"
            )
        if features.shape[0] == 0:
            raise ValueError("cannot train on an empty dataset")
        self._mean = features.mean(axis=0)
        std = features.std(axis=0)
        self._std = np.where(std > 0, std, 1.0)
        scaled = (features - self._mean) / self._std
        label_array = np.asarray([ALL_PHASES.index(p) for p in labels])

        self._models.clear()
        trainer = SMOTrainer(c=self.c, gamma=self.gamma, seed=self.seed)
        for i, phase_a in enumerate(ALL_PHASES):
            for phase_b in ALL_PHASES[i + 1 :]:
                mask = np.isin(
                    label_array,
                    (ALL_PHASES.index(phase_a), ALL_PHASES.index(phase_b)),
                )
                if not mask.any():
                    continue
                x_pair = scaled[mask]
                y_pair = np.where(
                    label_array[mask] == ALL_PHASES.index(phase_a), 1.0, -1.0
                )
                self._models[(phase_a, phase_b)] = trainer.fit(x_pair, y_pair)
        return self

    def fit_traces(self, traces: list[Trace]) -> "PhaseClassifier":
        """Train from labeled traces (the study corpus)."""
        features, labels = trace_features(traces)
        return self.fit(features, labels)

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self._mean is None or not self._models:
            raise RuntimeError("classifier is not fitted; call fit() first")

    def predict_batch(self, features: np.ndarray) -> list[AnalysisPhase]:
        """Phase predictions for a feature matrix (one row per request)."""
        self._check_fitted()
        features = np.asarray(features, dtype="float64")[:, self.feature_indices]
        scaled = (features - self._mean) / self._std
        n = scaled.shape[0]
        votes = np.zeros((n, len(ALL_PHASES)))
        margins = np.zeros((n, len(ALL_PHASES)))
        for (phase_a, phase_b), model in self._models.items():
            decision = model.decision_function(scaled)
            a_index = ALL_PHASES.index(phase_a)
            b_index = ALL_PHASES.index(phase_b)
            wins_a = decision >= 0
            votes[wins_a, a_index] += 1
            votes[~wins_a, b_index] += 1
            margins[:, a_index] += decision
            margins[:, b_index] -= decision
        # Majority vote; ties broken by accumulated decision values
        # (tanh-bounded so margins can never outvote a whole vote).
        scores = votes + 1e-3 * np.tanh(margins)
        best = np.argmax(scores, axis=1)
        return [ALL_PHASES[i] for i in best]

    def predict(self, tile: TileKey, move: Move | None) -> AnalysisPhase:
        """Phase prediction for a single request — the engine's entry
        point (usable directly as the engine's ``phase_predictor``)."""
        row = feature_vector(tile, move)[None, :]
        return self.predict_batch(row)[0]

    def accuracy(self, features: np.ndarray, labels: Sequence[AnalysisPhase]) -> float:
        """Fraction of rows classified correctly."""
        predictions = self.predict_batch(features)
        labels = list(labels)
        if not labels:
            return 0.0
        agreed = sum(1 for p, l in zip(predictions, labels) if p is l)
        return agreed / len(labels)
