"""The extended signature toolbox (Section 6.2, future work).

The paper proposes a general-purpose signature toolbox for non-imagery
data, naming outlier counting and linear correlation as candidates for
time-series prefetching.  Both are implemented here as histogram-style
signatures so they compose with the existing Chi-Squared machinery and
the SB recommender unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.signatures.base import Signature
from repro.tiles.tile import DataTile


class OutlierCountSignature(Signature):
    """Distribution of per-cell z-score magnitudes.

    Bins |z| into ``[0,1), [1,2), [2,3), [3,inf)`` by default.  Two tiles
    with similar tail weight (similar outlier structure — e.g. two heart
    rate windows with unusual peaks) land close together.
    """

    name = "outliers"

    def __init__(self, edges: tuple[float, ...] = (0.0, 1.0, 2.0, 3.0)) -> None:
        if len(edges) < 2 or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"edges must be strictly increasing, got {edges}")
        self.edges = tuple(float(e) for e in edges)

    def compute(self, tile: DataTile, attribute: str) -> np.ndarray:
        values = np.asarray(tile.attribute(attribute), dtype="float64").ravel()
        std = values.std()
        if std == 0:
            z = np.zeros_like(values)
        else:
            z = np.abs(values - values.mean()) / std
        edges = list(self.edges) + [np.inf]
        counts, _ = np.histogram(z, bins=edges)
        total = counts.sum()
        if total == 0:
            return np.zeros(len(self.edges), dtype="float64")
        return counts.astype("float64") / total


class LinearCorrelationSignature(Signature):
    """Correlation of cell values against each positional axis.

    Captures directional trends (values rising to the east, falling to
    the south, ...), useful for time-series tiles where slope is the
    salient visual feature.  Correlations in [-1, 1] are affinely mapped
    to [0, 1] so the vector stays Chi-Squared-compatible.
    """

    name = "correlation"

    def compute(self, tile: DataTile, attribute: str) -> np.ndarray:
        values = np.asarray(tile.attribute(attribute), dtype="float64")
        h, w = values.shape
        yy, xx = np.mgrid[0:h, 0:w]
        flat = values.ravel()
        corr_x = _safe_corr(flat, xx.ravel())
        corr_y = _safe_corr(flat, yy.ravel())
        return np.asarray([(corr_x + 1.0) / 2.0, (corr_y + 1.0) / 2.0])


def _safe_corr(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation, 0.0 when either side is constant."""
    if a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])
