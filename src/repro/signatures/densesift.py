"""The denseSIFT signature (Table 2, row 4).

Where SIFT describes only detected landmarks, denseSIFT describes the
*whole* tile: descriptors are computed on a regular grid and pooled into
per-quadrant bag-of-words histograms, so the signature also encodes
*where* structures sit in the tile.  The paper found this positional
rigidity makes denseSIFT worse for its task — the Rockies and the Andes
both contain snow clusters but never in the same place — and our
experiments reproduce that gap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.signatures.base import Signature
from repro.signatures.gradients import (
    DESCRIPTOR_DIM,
    descriptor_at,
    normalize_tile_values,
    polar_gradients,
)
from repro.tiles.tile import DataTile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.signatures.visualwords import VisualVocabulary


def extract_dense_descriptors(
    image: np.ndarray, stride: int = 8
) -> tuple[np.ndarray, np.ndarray]:
    """Unoriented descriptors on a regular grid.

    Returns ``(positions, descriptors)`` where positions are the (y, x)
    grid centers that produced a valid descriptor.  Descriptors use
    orientation 0 — dense variants skip rotation normalization so that
    identical structures at identical positions match exactly.
    """
    image = np.asarray(image, dtype="float64")
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    magnitude, angle = polar_gradients(image)
    h, w = image.shape
    positions: list[tuple[int, int]] = []
    descriptors: list[np.ndarray] = []
    for y in range(stride, h, stride):
        for x in range(stride, w, stride):
            vector = descriptor_at(magnitude, angle, y, x, orientation=0.0)
            if vector is not None:
                positions.append((y, x))
                descriptors.append(vector)
    if not descriptors:
        return (
            np.zeros((0, 2), dtype=int),
            np.zeros((0, DESCRIPTOR_DIM), dtype="float64"),
        )
    return np.asarray(positions, dtype=int), np.stack(descriptors)


class DenseSIFTSignature(Signature):
    """Spatially pooled bag-of-words over a dense descriptor grid.

    The tile is split into ``pool x pool`` quadrants; each quadrant gets
    its own word histogram and the histograms are concatenated, encoding
    both which landmarks appear and where.
    """

    name = "densesift"

    def __init__(
        self,
        vocabulary: "VisualVocabulary",
        stride: int = 8,
        pool: int = 2,
        value_range: tuple[float, float] = (-1.0, 1.0),
    ) -> None:
        if pool < 1:
            raise ValueError(f"pool must be >= 1, got {pool}")
        self.vocabulary = vocabulary
        self.stride = stride
        self.pool = pool
        self.value_range = value_range

    def compute(self, tile: DataTile, attribute: str) -> np.ndarray:
        image = normalize_tile_values(tile.attribute(attribute), self.value_range)
        positions, descriptors = extract_dense_descriptors(image, self.stride)
        num_words = self.vocabulary.num_words
        pooled = np.zeros((self.pool, self.pool, num_words), dtype="float64")
        if descriptors.shape[0]:
            words = self.vocabulary.assign(descriptors)
            h, w = image.shape
            for (y, x), word in zip(positions, words):
                qy = min(self.pool - 1, y * self.pool // h)
                qx = min(self.pool - 1, x * self.pool // w)
                pooled[qy, qx, word] += 1.0
        flat = pooled.ravel()
        total = flat.sum()
        if total > 0:
            flat = flat / total
        return flat
