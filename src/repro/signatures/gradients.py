"""Shared scale-space and gradient machinery for SIFT-style signatures.

Implements the standard building blocks from scratch on numpy/scipy:
Gaussian scale space, difference-of-Gaussians, polar gradients, and the
4x4x8 gradient-orientation descriptor.  Tiles are small fixed-size
rasters (32-64 px), so a single octave of scale space suffices — the
multi-octave image-doubling of full SIFT buys nothing at this size.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

#: Descriptor layout: GRID x GRID spatial cells, ORIENT_BINS orientation
#: bins each -> 4 * 4 * 8 = 128 dimensions, as in Lowe's SIFT.
GRID = 4
ORIENT_BINS = 8
WINDOW = 16
DESCRIPTOR_DIM = GRID * GRID * ORIENT_BINS


def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Gaussian-blur a 2-D image (reflect boundary)."""
    return ndimage.gaussian_filter(
        np.asarray(image, dtype="float64"), sigma=sigma, mode="reflect"
    )


def build_scale_space(
    image: np.ndarray, num_scales: int = 5, sigma0: float = 1.6
) -> list[np.ndarray]:
    """Progressively blurred copies: sigma_i = sigma0 * 2^(i / (n - 2))."""
    if num_scales < 3:
        raise ValueError(f"scale space needs >= 3 scales, got {num_scales}")
    k = 2.0 ** (1.0 / (num_scales - 2))
    return [gaussian_blur(image, sigma0 * k**i) for i in range(num_scales)]


def difference_of_gaussians(scale_space: list[np.ndarray]) -> np.ndarray:
    """Stacked DoG responses, shape ``(num_scales - 1, H, W)``."""
    return np.stack(
        [b - a for a, b in zip(scale_space, scale_space[1:])], axis=0
    )


def polar_gradients(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-pixel gradient (magnitude, angle in [0, 2*pi))."""
    gy, gx = np.gradient(np.asarray(image, dtype="float64"))
    magnitude = np.hypot(gx, gy)
    angle = np.arctan2(gy, gx) % (2.0 * np.pi)
    return magnitude, angle


def dominant_orientation(
    magnitude: np.ndarray,
    angle: np.ndarray,
    y: int,
    x: int,
    radius: int = 6,
    bins: int = 36,
) -> float:
    """Peak of the magnitude-weighted orientation histogram around (y, x)."""
    h, w = magnitude.shape
    y0, y1 = max(0, y - radius), min(h, y + radius + 1)
    x0, x1 = max(0, x - radius), min(w, x + radius + 1)
    mag = magnitude[y0:y1, x0:x1]
    ang = angle[y0:y1, x0:x1]
    yy, xx = np.mgrid[y0:y1, x0:x1]
    weight = mag * np.exp(-((yy - y) ** 2 + (xx - x) ** 2) / (2.0 * radius**2))
    hist, _ = np.histogram(
        ang, bins=bins, range=(0.0, 2.0 * np.pi), weights=weight
    )
    if hist.sum() == 0:
        return 0.0
    peak = int(np.argmax(hist))
    return (peak + 0.5) * 2.0 * np.pi / bins


def descriptor_at(
    magnitude: np.ndarray,
    angle: np.ndarray,
    y: int,
    x: int,
    orientation: float = 0.0,
) -> np.ndarray | None:
    """The 128-d gradient descriptor centered at (y, x).

    The WINDOW x WINDOW patch around the point is split into a GRID x GRID
    grid of cells; each cell accumulates an ORIENT_BINS-bin histogram of
    gradient angles relative to ``orientation``, weighted by magnitude and
    a Gaussian window.  Returns None when the window falls outside the
    image (keypoints that close to the border are discarded, as in SIFT).

    Rotation invariance is approximated by rotating the *angles* only;
    the sampling window stays axis-aligned.  Data tiles render in a fixed
    screen orientation, so full patch rotation adds cost without changing
    matches.
    """
    h, w = magnitude.shape
    half = WINDOW // 2
    y0, x0 = y - half, x - half
    if y0 < 0 or x0 < 0 or y0 + WINDOW > h or x0 + WINDOW > w:
        return None
    mag = magnitude[y0 : y0 + WINDOW, x0 : x0 + WINDOW]
    ang = (angle[y0 : y0 + WINDOW, x0 : x0 + WINDOW] - orientation) % (2.0 * np.pi)

    offsets = np.arange(WINDOW) - (half - 0.5)
    gauss = np.exp(-(offsets[:, None] ** 2 + offsets[None, :] ** 2) / (2.0 * half**2))
    weight = mag * gauss

    cell = WINDOW // GRID
    descriptor = np.zeros((GRID, GRID, ORIENT_BINS), dtype="float64")
    bin_index = np.floor(ang / (2.0 * np.pi) * ORIENT_BINS).astype(int) % ORIENT_BINS
    for gy in range(GRID):
        for gx in range(GRID):
            sl = (
                slice(gy * cell, (gy + 1) * cell),
                slice(gx * cell, (gx + 1) * cell),
            )
            descriptor[gy, gx] = np.bincount(
                bin_index[sl].ravel(),
                weights=weight[sl].ravel(),
                minlength=ORIENT_BINS,
            )

    vector = descriptor.ravel()
    norm = np.linalg.norm(vector)
    if norm == 0:
        return None
    vector = vector / norm
    # Clip large components and renormalize (illumination robustness).
    vector = np.minimum(vector, 0.2)
    norm = np.linalg.norm(vector)
    if norm == 0:
        return None
    return vector / norm


def normalize_tile_values(
    values: np.ndarray, value_range: tuple[float, float] = (-1.0, 1.0)
) -> np.ndarray:
    """Map tile values into [0, 1] the way the renderer's colormap does,
    so gradient structure matches what the user literally sees."""
    lo, hi = value_range
    if hi <= lo:
        raise ValueError(f"empty value range {value_range}")
    return np.clip((np.asarray(values, dtype="float64") - lo) / (hi - lo), 0.0, 1.0)
