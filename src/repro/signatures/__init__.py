"""Tile signatures (Table 2 of the paper).

A *signature* is a compact numeric vector summarizing one data tile,
computed over a single array attribute.  The Signature-Based recommender
compares candidate tiles to the user's last region of interest by
signature distance (Algorithm 3).  Four signatures reproduce the paper's
Table 2 — :class:`NormalSignature`, :class:`HistogramSignature`,
:class:`SIFTSignature`, and :class:`DenseSIFTSignature` — and the
toolbox adds the time-series-oriented extras the paper lists as future
work (Section 6.2).

All signatures emit histogram-like non-negative vectors, so the
Chi-Squared distance applies uniformly (Section 4.3.3).
"""

from repro.signatures.base import Signature, SignatureRegistry
from repro.signatures.densesift import DenseSIFTSignature
from repro.signatures.distance import (
    chi_squared_distance,
    score_candidates,
    weighted_l2,
)
from repro.signatures.histogram import HistogramSignature
from repro.signatures.provider import SignatureProvider
from repro.signatures.selection import SelectionResult, select_best_signature
from repro.signatures.sift import SIFTSignature, extract_sift_descriptors
from repro.signatures.stats import NormalSignature
from repro.signatures.toolbox import LinearCorrelationSignature, OutlierCountSignature
from repro.signatures.visualwords import VisualVocabulary, train_vocabulary

__all__ = [
    "DenseSIFTSignature",
    "HistogramSignature",
    "LinearCorrelationSignature",
    "NormalSignature",
    "OutlierCountSignature",
    "SIFTSignature",
    "SelectionResult",
    "Signature",
    "SignatureProvider",
    "SignatureRegistry",
    "select_best_signature",
    "VisualVocabulary",
    "chi_squared_distance",
    "extract_sift_descriptors",
    "score_candidates",
    "train_vocabulary",
    "weighted_l2",
]
