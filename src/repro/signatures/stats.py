"""The normal-distribution signature (Table 2, row 1).

Captures the average position/color/size of rendered datapoints by
fitting a normal distribution to the tile's cell values.  To keep every
signature comparable under the Chi-Squared distance, the fitted
``N(mean, std)`` is discretized into a fixed-bin probability histogram
over the attribute's value range.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro.signatures.base import Signature
from repro.tiles.tile import DataTile


class NormalSignature(Signature):
    """Mean/standard deviation of tile values as a discretized normal."""

    name = "normal"

    def __init__(
        self,
        bins: int = 16,
        value_range: tuple[float, float] = (-1.0, 1.0),
        min_std: float = 1e-3,
    ) -> None:
        if bins < 2:
            raise ValueError(f"need at least 2 bins, got {bins}")
        lo, hi = value_range
        if hi <= lo:
            raise ValueError(f"empty value range {value_range}")
        self.bins = bins
        self.value_range = (float(lo), float(hi))
        self.min_std = min_std

    def compute(self, tile: DataTile, attribute: str) -> np.ndarray:
        values = np.asarray(tile.attribute(attribute), dtype="float64").ravel()
        mean = float(values.mean())
        std = max(float(values.std()), self.min_std)
        lo, hi = self.value_range
        edges = np.linspace(lo, hi, self.bins + 1)
        cdf = norm.cdf(edges, loc=mean, scale=std)
        masses = np.diff(cdf)
        total = masses.sum()
        if total > 0:
            masses = masses / total
        return masses
