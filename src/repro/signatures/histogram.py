"""The 1-D histogram signature (Table 2, row 2).

A fixed-bin, mass-normalized histogram of the tile's cell values —
captures the distribution of rendered datapoints.
"""

from __future__ import annotations

import numpy as np

from repro.signatures.base import Signature
from repro.tiles.tile import DataTile


class HistogramSignature(Signature):
    """Fixed-bin value histogram, normalized to unit mass."""

    name = "histogram"

    def __init__(
        self, bins: int = 16, value_range: tuple[float, float] = (-1.0, 1.0)
    ) -> None:
        if bins < 2:
            raise ValueError(f"need at least 2 bins, got {bins}")
        lo, hi = value_range
        if hi <= lo:
            raise ValueError(f"empty value range {value_range}")
        self.bins = bins
        self.value_range = (float(lo), float(hi))

    def compute(self, tile: DataTile, attribute: str) -> np.ndarray:
        values = np.asarray(tile.attribute(attribute), dtype="float64").ravel()
        counts, _ = np.histogram(
            np.clip(values, *self.value_range),
            bins=self.bins,
            range=self.value_range,
        )
        total = counts.sum()
        if total == 0:
            return np.zeros(self.bins, dtype="float64")
        return counts.astype("float64") / total
