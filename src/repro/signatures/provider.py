"""Signature access for the prediction engine.

:class:`SignatureProvider` binds a tile pyramid, a signature registry,
and the shared :class:`~repro.tiles.metadata.MetadataStore` together:
the SB recommender asks it for "the vector of signature S on tile T" and
never touches raw tile data.  Vectors are computed on first use and
cached, which matches the paper's build-time metadata computation
without paying for tiles nobody ever looks at.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro.signatures.base import SignatureRegistry
from repro.tiles.key import TileKey
from repro.tiles.metadata import MetadataStore
from repro.tiles.pyramid import TilePyramid


class SignatureProvider:
    """Cached per-tile signature vectors over one pyramid attribute."""

    def __init__(
        self,
        pyramid: TilePyramid,
        registry: SignatureRegistry,
        attribute: str,
        store: MetadataStore | None = None,
    ) -> None:
        if attribute not in pyramid.attributes:
            raise ValueError(
                f"attribute {attribute!r} not in pyramid "
                f"(has {pyramid.attributes})"
            )
        self.pyramid = pyramid
        self.registry = registry
        self.attribute = attribute
        self.store = store if store is not None else MetadataStore()

    def vector(self, key: TileKey, signature_name: str) -> np.ndarray:
        """The signature vector for one tile, computed on first use.

        Metadata reads never go through the query executor: in the real
        system these vectors were computed at tile-build time
        (Section 2.3), so serving them costs no DBMS queries.
        """
        signature = self.registry.get(signature_name)
        return self.store.get_or_compute(
            key,
            signature_name,
            lambda: signature.compute(
                self.pyramid.fetch_tile(key, charge=False), self.attribute
            ),
        )

    def distance_fn(
        self, signature_name: str
    ) -> Callable[[np.ndarray, np.ndarray], float]:
        """The distance function registered for one signature."""
        return self.registry.get(signature_name).distance

    def distance_fns(
        self, names: Sequence[str] | None = None
    ) -> dict[str, Callable[[np.ndarray, np.ndarray], float]]:
        """Distance functions for several signatures at once."""
        if names is None:
            names = self.registry.names()
        return {name: self.distance_fn(name) for name in names}

    def precompute(
        self,
        keys: Iterable[TileKey] | None = None,
        names: Sequence[str] | None = None,
    ) -> int:
        """Eagerly compute signatures (the paper's build-time step).

        Returns the number of vectors now present for the requested keys.
        """
        if keys is None:
            keys = self.pyramid.grid.all_keys()
        if names is None:
            names = self.registry.names()
        count = 0
        for key in keys:
            for name in names:
                self.vector(key, name)
                count += 1
        return count
