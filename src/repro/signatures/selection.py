"""Automatic signature selection (Section 6.2, future work).

The paper hand-picked SIFT for the NDSI dataset and proposes learning
which signature works best for a given dataset automatically.  This
module implements the obvious estimator: evaluate each candidate
signature's SB recommender on held-out traces and pick the winner.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.signatures.provider import SignatureProvider

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.accuracy import AccuracyResult
    from repro.users.session import Trace


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a signature-selection run."""

    best: str
    scores: dict[str, float]
    per_signature: dict[str, "AccuracyResult"]


def select_best_signature(
    provider: SignatureProvider,
    traces: Sequence["Trace"],
    signature_names: Sequence[str] | None = None,
    k: int = 5,
) -> SelectionResult:
    """Pick the signature whose SB recommender best predicts ``traces``.

    ``traces`` should be held-out validation sessions — selecting on the
    same traces you later evaluate on would leak.  Returns the winner,
    per-signature accuracy at the chosen ``k``, and the full accuracy
    results for further inspection.
    """
    # Imported here: the engine/experiments layers sit above signatures
    # in the package graph, and importing them at module load would be
    # circular.
    from repro.core.allocation import SingleModelStrategy
    from repro.core.engine import PredictionEngine
    from repro.experiments.accuracy import AccuracyResult, replay_engine
    from repro.recommenders.signature_based import SignatureBasedRecommender

    if signature_names is None:
        signature_names = provider.registry.names()
    if not signature_names:
        raise ValueError("no signatures to select from")
    if not traces:
        raise ValueError("signature selection needs at least one trace")

    scores: dict[str, float] = {}
    per_signature: dict[str, AccuracyResult] = {}
    for name in signature_names:
        model = SignatureBasedRecommender(provider, (name,))
        engine = PredictionEngine(
            grid=provider.pyramid.grid,
            recommenders={model.name: model},
            strategy=SingleModelStrategy(model.name),
        )
        result = replay_engine(engine, list(traces), ks=(k,))
        per_signature[name] = result
        scores[name] = result.accuracy(k)

    best = max(sorted(scores), key=lambda name: scores[name])
    return SelectionResult(best=best, scores=scores, per_signature=per_signature)
