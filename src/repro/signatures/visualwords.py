"""Visual vocabularies: k-means clustering of SIFT descriptors.

The paper's SIFT/denseSIFT signatures are "histograms built from
clustered SIFT descriptors" (Table 2).  A :class:`VisualVocabulary` is
the cluster-center codebook; encoding a tile assigns each of its
descriptors to the nearest center and returns the normalized word-count
histogram.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np
from scipy.cluster.vq import kmeans2

from repro.tiles.pyramid import TilePyramid


class VisualVocabulary:
    """A fitted k-means codebook over descriptor space."""

    def __init__(self, centers: np.ndarray) -> None:
        centers = np.asarray(centers, dtype="float64")
        if centers.ndim != 2 or centers.shape[0] < 1:
            raise ValueError(
                f"centers must be a (words, dim) matrix, got shape {centers.shape}"
            )
        self.centers = centers

    @property
    def num_words(self) -> int:
        """Vocabulary size."""
        return self.centers.shape[0]

    @property
    def dim(self) -> int:
        """Descriptor dimensionality."""
        return self.centers.shape[1]

    @classmethod
    def fit(
        cls, descriptors: np.ndarray, num_words: int = 32, seed: int = 0
    ) -> "VisualVocabulary":
        """Cluster training descriptors into ``num_words`` centers.

        When fewer distinct descriptors than words are available, the
        vocabulary shrinks to the available count rather than failing.
        """
        descriptors = np.asarray(descriptors, dtype="float64")
        if descriptors.ndim != 2 or descriptors.shape[0] == 0:
            raise ValueError("need a non-empty (N, dim) descriptor matrix")
        unique = np.unique(descriptors, axis=0)
        k = min(num_words, unique.shape[0])
        if k == unique.shape[0]:
            return cls(unique)
        centers, _ = kmeans2(descriptors, k, minit="++", seed=seed)
        # Drop any empty clusters that collapsed to identical centers.
        centers = np.unique(centers, axis=0)
        return cls(centers)

    def assign(self, descriptors: np.ndarray) -> np.ndarray:
        """Nearest-center index for each descriptor."""
        descriptors = np.asarray(descriptors, dtype="float64")
        if descriptors.shape[0] == 0:
            return np.zeros(0, dtype=int)
        if descriptors.shape[1] != self.dim:
            raise ValueError(
                f"descriptor dim {descriptors.shape[1]} != vocabulary dim {self.dim}"
            )
        # Squared euclidean distances via the expansion trick.
        d2 = (
            np.sum(descriptors**2, axis=1)[:, None]
            - 2.0 * descriptors @ self.centers.T
            + np.sum(self.centers**2, axis=1)[None, :]
        )
        return np.argmin(d2, axis=1)

    def encode(
        self,
        descriptors: np.ndarray,
        normalize: bool = False,
        soft_assign: int = 3,
    ) -> np.ndarray:
        """Bag-of-words histogram for a descriptor set.

        Each descriptor votes for its ``soft_assign`` nearest words with
        distance-decayed weights, which keeps histograms comparable when
        tiles yield only a handful of descriptors.  By default counts
        are *not* normalized: how much landmark structure a tile has is
        itself a similarity signal (a tile with one faint blob should
        not match a landmark-rich ROI just because the blob is the same
        kind).  Tiles with no descriptors (flat imagery — open ocean)
        encode as the zero vector.
        """
        descriptors = np.asarray(descriptors, dtype="float64")
        counts = np.zeros(self.num_words, dtype="float64")
        if descriptors.shape[0] == 0:
            return counts
        if descriptors.shape[1] != self.dim:
            raise ValueError(
                f"descriptor dim {descriptors.shape[1]} != vocabulary dim {self.dim}"
            )
        d2 = (
            np.sum(descriptors**2, axis=1)[:, None]
            - 2.0 * descriptors @ self.centers.T
            + np.sum(self.centers**2, axis=1)[None, :]
        )
        d2 = np.maximum(d2, 0.0)
        k = min(max(1, soft_assign), self.num_words)
        nearest = np.argsort(d2, axis=1)[:, :k]
        rows = np.arange(descriptors.shape[0])[:, None]
        near_d2 = d2[rows, nearest]
        # Distance-decayed votes, scaled per descriptor so each
        # contributes one unit of mass.
        scale = near_d2[:, :1] + 1e-12
        weights = np.exp(-near_d2 / (2.0 * scale))
        weights /= weights.sum(axis=1, keepdims=True)
        np.add.at(counts, nearest.ravel(), weights.ravel())
        if normalize:
            total = counts.sum()
            if total > 0:
                counts /= total
        return counts

    def save(self, path) -> None:
        """Persist the codebook to an ``.npy`` file."""
        np.save(path, self.centers)

    @classmethod
    def load(cls, path) -> "VisualVocabulary":
        """Load a codebook written by :meth:`save`."""
        return cls(np.load(path))


def train_vocabulary(
    pyramid: TilePyramid,
    attribute: str,
    num_words: int = 32,
    seed: int = 0,
    extractor: Callable[[np.ndarray], np.ndarray] | None = None,
    levels: Sequence[int] | None = None,
    max_tiles_per_level: int = 64,
    value_range: tuple[float, float] = (-1.0, 1.0),
) -> VisualVocabulary:
    """Fit a visual vocabulary on descriptors sampled across a pyramid.

    Tiles are sampled uniformly from each requested level (all levels by
    default), descriptors extracted with ``extractor`` (SIFT by default),
    and clustered.  Deterministic for a fixed seed.
    """
    from repro.signatures.gradients import normalize_tile_values
    from repro.signatures.sift import extract_sift_descriptors

    if extractor is None:
        extractor = extract_sift_descriptors
    if levels is None:
        levels = range(pyramid.num_levels)

    rng = np.random.default_rng(seed)
    collected: list[np.ndarray] = []
    for level in levels:
        keys = list(pyramid.grid.keys_at_level(level))
        if len(keys) > max_tiles_per_level:
            chosen = rng.choice(len(keys), size=max_tiles_per_level, replace=False)
            keys = [keys[i] for i in sorted(chosen)]
        for key in keys:
            tile = pyramid.fetch_tile(key, charge=False)
            image = normalize_tile_values(tile.attribute(attribute), value_range)
            descriptors = extractor(image)
            if descriptors.shape[0]:
                collected.append(descriptors)
    if not collected:
        raise ValueError(
            "no descriptors found anywhere in the pyramid; "
            "cannot train a visual vocabulary"
        )
    return VisualVocabulary.fit(np.vstack(collected), num_words=num_words, seed=seed)
