"""SIFT keypoints and the SIFT bag-of-words signature (Table 2, row 3).

SIFT finds distinct "landmarks" — in our satellite heatmaps, the edges
and texture of snowy mountain clusters — and describes each with a 128-d
gradient histogram.  The tile signature is a histogram over a k-means
visual vocabulary of those descriptors, so two tiles with similar
landmarks (e.g. two snowy ranges) land close under the Chi-Squared
distance even when their layouts differ.

Implemented from scratch (the paper uses OpenCV): multi-octave DoG
extrema detection with contrast and edge-response filtering, dominant
orientation assignment, and the standard 4x4x8 descriptor.  As in Lowe's
SIFT the input is first doubled; data tiles are small (32-64 px), so
without the doubling most extrema sit too close to the border to
describe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy import ndimage

from repro.signatures.base import Signature
from repro.signatures.gradients import (
    DESCRIPTOR_DIM,
    WINDOW,
    build_scale_space,
    descriptor_at,
    difference_of_gaussians,
    dominant_orientation,
    gaussian_blur,
    normalize_tile_values,
    polar_gradients,
)
from repro.tiles.tile import DataTile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.signatures.visualwords import VisualVocabulary


@dataclass(frozen=True)
class Keypoint:
    """A detected scale-space extremum.

    ``y``/``x`` are coordinates within the keypoint's octave image; each
    octave halves the resolution of the (upsampled) input.
    """

    y: int
    x: int
    octave: int
    scale_index: int
    response: float


def _detect_in_octave(
    image: np.ndarray,
    octave: int,
    num_scales: int,
    sigma0: float,
    contrast_threshold: float,
    edge_ratio: float,
) -> list[Keypoint]:
    """DoG extrema within one octave image."""
    dogs = difference_of_gaussians(build_scale_space(image, num_scales, sigma0))
    footprint = np.ones((3, 3, 3), dtype=bool)
    local_max = ndimage.maximum_filter(dogs, footprint=footprint, mode="nearest")
    local_min = ndimage.minimum_filter(dogs, footprint=footprint, mode="nearest")
    is_extremum = ((dogs == local_max) | (dogs == local_min)) & (
        np.abs(dogs) > contrast_threshold
    )
    # Interior scales only: the first/last DoG slice has no scale neighbor.
    is_extremum[0] = False
    is_extremum[-1] = False

    edge_limit = (edge_ratio + 1.0) ** 2 / edge_ratio
    h, w = image.shape
    keypoints: list[Keypoint] = []
    for s, y, x in zip(*np.nonzero(is_extremum)):
        if y < 1 or x < 1 or y >= h - 1 or x >= w - 1:
            continue
        dog = dogs[s]
        dxx = dog[y, x + 1] + dog[y, x - 1] - 2.0 * dog[y, x]
        dyy = dog[y + 1, x] + dog[y - 1, x] - 2.0 * dog[y, x]
        dxy = 0.25 * (
            dog[y + 1, x + 1]
            - dog[y + 1, x - 1]
            - dog[y - 1, x + 1]
            + dog[y - 1, x - 1]
        )
        trace = dxx + dyy
        det = dxx * dyy - dxy * dxy
        if det <= 0 or trace * trace / det >= edge_limit:
            continue
        keypoints.append(
            Keypoint(
                y=int(y),
                x=int(x),
                octave=octave,
                scale_index=int(s),
                response=float(abs(dog[y, x])),
            )
        )
    return keypoints


def _octave_images(
    image: np.ndarray, num_octaves: int, sigma0: float, upsample: int
) -> list[np.ndarray]:
    """The (upsampled) base image and its blurred-and-halved successors."""
    image = np.asarray(image, dtype="float64")
    if upsample > 1:
        image = ndimage.zoom(image, upsample, order=1)
    octaves = [image]
    for _ in range(1, num_octaves):
        previous = octaves[-1]
        if min(previous.shape) < 2 * WINDOW:
            break
        octaves.append(gaussian_blur(previous, 2.0 * sigma0)[::2, ::2])
    return octaves


def detect_keypoints(
    image: np.ndarray,
    num_scales: int = 6,
    sigma0: float = 1.6,
    contrast_threshold: float = 0.001,
    edge_ratio: float = 10.0,
    max_keypoints: int = 64,
    upsample: int = 2,
    num_octaves: int = 3,
) -> list[Keypoint]:
    """DoG extrema across octaves, strongest responses first.

    A pixel is a keypoint candidate when it is the maximum or minimum of
    its 26-neighborhood in the octave's DoG stack, its |response| clears
    the contrast threshold, and its Hessian trace/determinant ratio
    rejects edge-like responses (ratio test with ``r = edge_ratio``).
    """
    keypoints: list[Keypoint] = []
    for octave, octave_image in enumerate(
        _octave_images(image, num_octaves, sigma0, upsample)
    ):
        keypoints.extend(
            _detect_in_octave(
                octave_image,
                octave,
                num_scales,
                sigma0,
                contrast_threshold,
                edge_ratio,
            )
        )
    keypoints.sort(key=lambda kp: -kp.response)
    return keypoints[:max_keypoints]


def extract_sift_descriptors(
    image: np.ndarray,
    num_scales: int = 6,
    sigma0: float = 1.6,
    contrast_threshold: float = 0.001,
    edge_ratio: float = 10.0,
    max_keypoints: int = 64,
    upsample: int = 2,
    num_octaves: int = 3,
) -> np.ndarray:
    """Detect keypoints and describe each; returns shape ``(N, 128)``.

    Keypoints whose descriptor window leaves their octave image are
    dropped, so N can be smaller than the keypoint count (possibly zero
    for flat tiles — e.g. open ocean).
    """
    octaves = _octave_images(image, num_octaves, sigma0, upsample)
    # Descriptors are computed on reflect-padded gradients so keypoints
    # near tile borders — common on 32-64 px tiles — still get a full
    # window instead of being discarded.
    half = WINDOW // 2
    gradients = [
        polar_gradients(np.pad(img, half, mode="reflect")) for img in octaves
    ]
    keypoints: list[Keypoint] = []
    for octave, octave_image in enumerate(octaves):
        keypoints.extend(
            _detect_in_octave(
                octave_image,
                octave,
                num_scales,
                sigma0,
                contrast_threshold,
                edge_ratio,
            )
        )
    keypoints.sort(key=lambda kp: -kp.response)
    keypoints = keypoints[:max_keypoints]

    descriptors = []
    for kp in keypoints:
        magnitude, angle = gradients[kp.octave]
        py, px = kp.y + half, kp.x + half
        orientation = dominant_orientation(magnitude, angle, py, px)
        vector = descriptor_at(magnitude, angle, py, px, orientation)
        if vector is not None:
            descriptors.append(vector)
    if not descriptors:
        return np.zeros((0, DESCRIPTOR_DIM), dtype="float64")
    return np.stack(descriptors)


class SIFTSignature(Signature):
    """Bag-of-visual-words histogram of SIFT descriptors."""

    name = "sift"

    def __init__(
        self,
        vocabulary: "VisualVocabulary",
        value_range: tuple[float, float] = (-1.0, 1.0),
        contrast_threshold: float = 0.001,
    ) -> None:
        self.vocabulary = vocabulary
        self.value_range = value_range
        self.contrast_threshold = contrast_threshold

    def compute(self, tile: DataTile, attribute: str) -> np.ndarray:
        image = normalize_tile_values(tile.attribute(attribute), self.value_range)
        descriptors = extract_sift_descriptors(
            image, contrast_threshold=self.contrast_threshold
        )
        return self.vocabulary.encode(descriptors)
