"""Signature interface and registry.

Adding a new signature to ForeCache requires exactly two things
(Section 4.3.3): an algorithm computing it over one data tile, and a
distance function if Chi-Squared does not apply.  :class:`Signature`
captures that contract; :class:`SignatureRegistry` is the lookup table
the SB recommender and metadata builder iterate over.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.signatures.distance import chi_squared_distance
from repro.tiles.tile import DataTile


class Signature(abc.ABC):
    """A compact numeric representation of one data tile."""

    #: Registry / metadata-store key; subclasses override.
    name: str = "signature"

    @abc.abstractmethod
    def compute(self, tile: DataTile, attribute: str) -> np.ndarray:
        """Compute this signature over one attribute of one tile.

        Returns a 1-D float vector.  Must be deterministic: the metadata
        store caches results by (tile key, signature name).
        """

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Distance between two signature vectors (default: Chi-Squared,
        which applies because all built-in signatures emit histograms)."""
        return chi_squared_distance(a, b)


class SignatureRegistry:
    """Name → signature instance mapping."""

    def __init__(self, signatures: tuple[Signature, ...] = ()) -> None:
        self._signatures: dict[str, Signature] = {}
        for signature in signatures:
            self.register(signature)

    def register(self, signature: Signature, overwrite: bool = False) -> None:
        """Add a signature; re-registering a name raises unless allowed."""
        if signature.name in self._signatures and not overwrite:
            raise ValueError(f"signature {signature.name!r} is already registered")
        self._signatures[signature.name] = signature

    def get(self, name: str) -> Signature:
        """Resolve a signature by name."""
        try:
            return self._signatures[name]
        except KeyError:
            raise KeyError(
                f"signature {name!r} is not registered; "
                f"available: {self.names()}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._signatures

    def names(self) -> list[str]:
        """All registered signature names, sorted."""
        return sorted(self._signatures)

    def __iter__(self):
        return iter(self._signatures.values())

    def __len__(self) -> int:
        return len(self._signatures)
