"""Signature distances and Algorithm 3 candidate scoring.

All built-in signatures emit histogram-like vectors, so the paper uses
the Chi-Squared distance for every signature.  Per-signature distances
for a candidate/ROI pair are combined with a weighted ℓ2-norm; candidate
tiles are then ranked by their summed distance over all ROI tiles.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.tiles.key import TileKey


def chi_squared_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Symmetric Chi-Squared histogram distance.

    ``0.5 * sum((a_i - b_i)^2 / (a_i + b_i))`` with zero-mass bins
    contributing zero.  Inputs must be non-negative and equal length.
    """
    a = np.asarray(a, dtype="float64")
    b = np.asarray(b, dtype="float64")
    if a.shape != b.shape:
        raise ValueError(f"signature shapes differ: {a.shape} vs {b.shape}")
    if a.size and (a.min() < 0 or b.min() < 0):
        raise ValueError("chi-squared distance requires non-negative vectors")
    total = a + b
    diff_sq = (a - b) ** 2
    mask = total > 0
    return float(0.5 * np.sum(diff_sq[mask] / total[mask]))


def weighted_l2(distances: Sequence[float], weights: Sequence[float] | None = None) -> float:
    """The paper's weighted ℓ2 combination over per-signature distances:
    ``sqrt(sum_i w_i * d_i^2)``; weights default to all ones.

    Computed hypot-style — inputs are rescaled by their largest
    magnitude before squaring — so tiny distances don't underflow to
    subnormals and the norm stays absolutely homogeneous
    (``f(c·d) == c·f(d)``), which naive ``sqrt(sum(d**2))`` violates
    near the bottom of the float64 range.
    """
    distances = np.asarray(distances, dtype="float64")
    if weights is None:
        weights = np.ones_like(distances)
    else:
        weights = np.asarray(weights, dtype="float64")
        if weights.shape != distances.shape:
            raise ValueError(
                f"{len(weights)} weights for {len(distances)} distances"
            )
        if weights.size and weights.min() < 0:
            raise ValueError("signature weights must be non-negative")
    scale = float(np.max(np.abs(distances))) if distances.size else 0.0
    if scale == 0.0 or not np.isfinite(scale):
        return float(np.sqrt(np.sum(weights * distances**2)))
    scaled = distances / scale
    return float(scale * np.sqrt(np.sum(weights * scaled**2)))


def score_candidates(
    candidates: Sequence[TileKey],
    roi_tiles: Sequence[TileKey],
    signature_names: Sequence[str],
    get_vector: Callable[[TileKey, str], np.ndarray],
    distance_fns: dict[str, Callable[[np.ndarray, np.ndarray], float]],
    weights: Sequence[float] | None = None,
) -> dict[TileKey, float]:
    """Algorithm 3: visual distance of each candidate to the user's ROI.

    For every candidate/ROI pair and signature ``i``, the raw signature
    distance is penalized by physical separation
    (``2^(manhattan - 1) * dist_i``), normalized by the per-signature
    maximum across all pairs, combined across signatures with a weighted
    ℓ2-norm divided by the pair's physical distance, and finally summed
    over ROI tiles.  Lower scores mean more visually similar.

    ``get_vector`` supplies signature vectors (typically backed by the
    metadata store); ``distance_fns`` maps signature name to its distance
    function.
    """
    if not candidates:
        return {}
    if not roi_tiles:
        raise ValueError("Algorithm 3 requires at least one ROI tile")
    if weights is not None and len(weights) != len(signature_names):
        raise ValueError(
            f"{len(weights)} weights for {len(signature_names)} signatures"
        )

    pairs = [(a, b) for a in candidates for b in roi_tiles]
    manhattan = {
        (a, b): a.manhattan_distance(b) for a, b in pairs
    }

    # Lines 1-9: penalized per-signature distances and per-signature maxima.
    per_signature: dict[str, dict[tuple[TileKey, TileKey], float]] = {}
    for name in signature_names:
        dist_fn = distance_fns[name]
        d_max = 1.0
        table: dict[tuple[TileKey, TileKey], float] = {}
        for a, b in pairs:
            raw = dist_fn(get_vector(a, name), get_vector(b, name))
            penalized = (2.0 ** (manhattan[(a, b)] - 1)) * raw
            table[(a, b)] = penalized
            d_max = max(d_max, penalized)
        # Lines 10-11: normalize by the per-signature maximum.
        for pair in table:
            table[pair] /= d_max
        per_signature[name] = table

    # Lines 12-13: weighted l2 across signatures, over physical distance.
    pair_distance: dict[tuple[TileKey, TileKey], float] = {}
    for a, b in pairs:
        per_pair = [per_signature[name][(a, b)] for name in signature_names]
        physical = max(1, manhattan[(a, b)])
        pair_distance[(a, b)] = weighted_l2(per_pair, weights) / physical

    # Lines 14-15: sum over ROI tiles.
    return {
        a: sum(pair_distance[(a, b)] for b in roi_tiles) for a in candidates
    }


def rank_by_score(scores: dict[TileKey, float]) -> list[TileKey]:
    """Candidates ordered most-similar first, ties broken by key order
    so rankings are deterministic."""
    return sorted(scores, key=lambda key: (scores[key], key))
