"""Recommendation models — the bottom level of the prediction engine.

Two families (Section 4.3):

- **Action-Based (AB)**: predict from the user's recent *moves* — the
  n-th order Markov chain with Kneser–Ney smoothing
  (:class:`MarkovRecommender`), plus the Momentum and Hotspot baselines
  from Doshi et al. that the paper compares against.
- **Signature-Based (SB)**: predict from tile *content* — rank candidate
  tiles by visual similarity to the user's last region of interest
  (:class:`SignatureBasedRecommender`, Algorithm 3).

Every model consumes a :class:`PredictionContext` and emits a ranked
tile list; the prediction engine trims each list to its cache
allocation.
"""

from repro.recommenders.base import PredictionContext, Recommender
from repro.recommenders.hotspot import HotspotRecommender
from repro.recommenders.markov import MarkovRecommender
from repro.recommenders.momentum import MomentumRecommender
from repro.recommenders.signature_based import SignatureBasedRecommender
from repro.recommenders.smoothing import KneserNeyEstimator

__all__ = [
    "HotspotRecommender",
    "KneserNeyEstimator",
    "MarkovRecommender",
    "MomentumRecommender",
    "PredictionContext",
    "Recommender",
    "SignatureBasedRecommender",
]
