"""The Hotspot baseline (Doshi et al., reimplemented per Section 5.2.3).

Hotspot extends Momentum with awareness of popular tiles: training
counts requests per tile across the study traces and keeps the most
requested as *hotspots*.  When the user is near a hotspot, candidate
tiles that bring her closer to it are ranked above the rest; otherwise
the model behaves exactly like Momentum.

Beyond the paper's offline-trained form, the model has a *live* mode:
bind a :class:`~repro.core.popularity.SharedHotspotRegistry` and the
hotspot set is re-read from the registry's current top-N on every
prediction, so one user's traffic steers another user's prefetching in
real time (cross-session prediction sharing, Section 6.2 extended).
Offline-trained hotspots remain the default — and the cold-start
anchor: with ``hotspot_warmup`` set, the live registry's keys are
blended in *gradually* (proportionally to how many observations the
registry has seen) instead of displacing the trained set the moment
the first live key appears.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.recommenders.base import PredictionContext, Recommender
from repro.recommenders.momentum import MomentumRecommender
from repro.tiles.key import TileKey
from repro.tiles.moves import ALL_MOVES
from repro.users.session import Trace

if TYPE_CHECKING:  # circular-import guard: core.engine imports this package
    from repro.core.popularity import SharedHotspotRegistry


class HotspotRecommender(Recommender):
    """Momentum plus popularity-based pull toward hotspot tiles."""

    name = "hotspot"

    def __init__(
        self,
        num_hotspots: int = 10,
        proximity: int = 4,
        registry: "SharedHotspotRegistry | None" = None,
        hotspot_warmup: int = 0,
    ) -> None:
        if num_hotspots < 1:
            raise ValueError(f"num_hotspots must be >= 1, got {num_hotspots}")
        if proximity < 1:
            raise ValueError(f"proximity must be >= 1, got {proximity}")
        if hotspot_warmup < 0:
            raise ValueError(
                f"hotspot_warmup must be >= 0, got {hotspot_warmup}"
            )
        self.num_hotspots = num_hotspots
        self.proximity = proximity
        self.hotspots: tuple[TileKey, ...] = ()
        self.registry = registry
        #: Registry observations needed before live hotspots fully
        #: replace the trained set.  0 (default) keeps the legacy hard
        #: switch: any live key wins immediately.
        self.hotspot_warmup = hotspot_warmup
        self._momentum = MomentumRecommender()

    def bind_registry(
        self, registry: "SharedHotspotRegistry | None"
    ) -> None:
        """Enter (or, with ``None``, leave) live mode."""
        self.registry = registry

    def train(self, traces: Sequence[Trace]) -> None:
        """Pick the most requested tiles in the training traces."""
        counts: Counter[TileKey] = Counter()
        for trace in traces:
            counts.update(trace.tiles())
        # Ties broken by key order for determinism.
        ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        self.hotspots = tuple(key for key, _ in ordered[: self.num_hotspots])

    def effective_hotspots(self) -> tuple[TileKey, ...]:
        """The hotspot set this prediction uses.

        No registry (or an empty one): the trained set.  With a live
        registry and ``hotspot_warmup == 0``: the live top-N, the legacy
        hard switch.  With a warmup, the live signal earns slots
        *linearly* — after ``observed`` of ``hotspot_warmup``
        observations, ``num_hotspots * observed // hotspot_warmup`` live
        keys lead the set and trained hotspots fill the remainder — so a
        handful of early requests cannot evict a study-trained prior.
        """
        if self.registry is None:
            return self.hotspots
        live = tuple(self.registry.hot_keys(self.num_hotspots))
        if not live:
            return self.hotspots
        if self.hotspot_warmup <= 0:
            return live
        observed = self.registry.total_observations
        if observed >= self.hotspot_warmup:
            return live
        live_slots = (self.num_hotspots * observed) // self.hotspot_warmup
        blended = list(live[:live_slots])
        for key in self.hotspots:
            if len(blended) >= self.num_hotspots:
                break
            if key not in blended:
                blended.append(key)
        return tuple(blended)

    def nearest_hotspot(self, tile: TileKey) -> TileKey | None:
        """The closest hotspot within ``proximity`` moves, if any.

        Equidistant hotspots tie-break by key, explicitly — the choice
        must be a function of the hotspot *set*, never of training (or
        registry) iteration order.
        """
        within = [
            (tile.manhattan_distance(hotspot), hotspot)
            for hotspot in self.effective_hotspots()
        ]
        within = [item for item in within if item[0] <= self.proximity]
        if not within:
            return None
        return min(within)[1]

    def predict(self, context: PredictionContext) -> list[TileKey]:
        hotspot = self.nearest_hotspot(context.current)
        if hotspot is None:
            return self._momentum.predict(context)

        distribution = self._momentum.move_distribution(context.last_move)
        current_distance = context.current.manhattan_distance(hotspot)
        candidate_set = set(context.candidates)
        ranked: list[tuple[int, float, int, TileKey]] = []
        for move_index, move in enumerate(ALL_MOVES):
            target = context.grid.apply(context.current, move)
            if target is None or target not in candidate_set:
                continue
            closer = target.manhattan_distance(hotspot) < current_distance
            # Approaching tiles first; Momentum order within each group.
            ranked.append((0 if closer else 1, -distribution[move], move_index, target))
        ranked.sort()
        return [tile for _, _, _, tile in ranked]
