"""The Hotspot baseline (Doshi et al., reimplemented per Section 5.2.3).

Hotspot extends Momentum with awareness of popular tiles: training
counts requests per tile across the study traces and keeps the most
requested as *hotspots*.  When the user is near a hotspot, candidate
tiles that bring her closer to it are ranked above the rest; otherwise
the model behaves exactly like Momentum.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.recommenders.base import PredictionContext, Recommender
from repro.recommenders.momentum import MomentumRecommender
from repro.tiles.key import TileKey
from repro.tiles.moves import ALL_MOVES
from repro.users.session import Trace


class HotspotRecommender(Recommender):
    """Momentum plus popularity-based pull toward hotspot tiles."""

    name = "hotspot"

    def __init__(self, num_hotspots: int = 10, proximity: int = 4) -> None:
        if num_hotspots < 1:
            raise ValueError(f"num_hotspots must be >= 1, got {num_hotspots}")
        if proximity < 1:
            raise ValueError(f"proximity must be >= 1, got {proximity}")
        self.num_hotspots = num_hotspots
        self.proximity = proximity
        self.hotspots: tuple[TileKey, ...] = ()
        self._momentum = MomentumRecommender()

    def train(self, traces: Sequence[Trace]) -> None:
        """Pick the most requested tiles in the training traces."""
        counts: Counter[TileKey] = Counter()
        for trace in traces:
            counts.update(trace.tiles())
        # Ties broken by key order for determinism.
        ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        self.hotspots = tuple(key for key, _ in ordered[: self.num_hotspots])

    def nearest_hotspot(self, tile: TileKey) -> TileKey | None:
        """The closest hotspot within ``proximity`` moves, if any."""
        best: TileKey | None = None
        best_distance = self.proximity + 1
        for hotspot in self.hotspots:
            distance = tile.manhattan_distance(hotspot)
            if distance < best_distance:
                best = hotspot
                best_distance = distance
        return best

    def predict(self, context: PredictionContext) -> list[TileKey]:
        hotspot = self.nearest_hotspot(context.current)
        if hotspot is None:
            return self._momentum.predict(context)

        distribution = self._momentum.move_distribution(context.last_move)
        current_distance = context.current.manhattan_distance(hotspot)
        candidate_set = set(context.candidates)
        ranked: list[tuple[int, float, int, TileKey]] = []
        for move_index, move in enumerate(ALL_MOVES):
            target = context.grid.apply(context.current, move)
            if target is None or target not in candidate_set:
                continue
            closer = target.manhattan_distance(hotspot) < current_distance
            # Approaching tiles first; Momentum order within each group.
            ranked.append((0 if closer else 1, -distribution[move], move_index, target))
        ranked.sort()
        return [tile for _, _, _, tile in ranked]
