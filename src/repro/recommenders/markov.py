"""The Action-Based (AB) recommender: an n-th order Markov chain
over interface moves (Section 4.3.2, Algorithm 2).

States are sequences of the user's last ``n`` moves; transitions are the
nine possible next moves.  Transition frequencies are counted from
training traces exactly as Algorithm 2 does, and smoothed with
Kneser–Ney so unseen move sequences still yield useful predictions.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.recommenders.base import PredictionContext, Recommender
from repro.recommenders.smoothing import KneserNeyEstimator
from repro.tiles.key import TileKey
from repro.tiles.moves import ALL_MOVES, Move
from repro.users.session import Trace


class MarkovRecommender(Recommender):
    """N-th order move Markov chain with Kneser–Ney smoothing.

    The paper evaluated ``n = 2..10`` and settled on ``n = 3``
    ("Markov3"): n=2 hurts accuracy and n>3 adds nothing.
    """

    def __init__(self, order: int = 3, discount: float = 0.75) -> None:
        self.order = order
        self.name = f"markov{order}"
        self._estimator = KneserNeyEstimator(
            order=order, vocabulary=ALL_MOVES, discount=discount
        )
        self._trained = False

    def train(self, traces: Sequence[Trace]) -> None:
        """PROCESSTRACES (Algorithm 2): count move-sequence transitions."""
        sequences = [trace.moves() for trace in traces]
        self._estimator.fit(sequences)
        self._trained = True

    def move_distribution(self, history_moves: Sequence[Move]) -> dict[Move, float]:
        """Smoothed next-move distribution given the recent move history."""
        if not self._trained:
            raise RuntimeError(f"{self.name} must be trained before predicting")
        return self._estimator.distribution(tuple(history_moves))

    def predict(self, context: PredictionContext) -> list[TileKey]:
        """Rank one-move-away tiles by predicted move probability.

        Moves that are illegal at the current position are dropped (their
        tiles do not exist).  Candidates more than one move away are not
        ranked — the AB model predicts the next *move*.
        """
        distribution = self.move_distribution(context.history_moves)
        candidate_set = set(context.candidates)
        ranked: list[tuple[float, int, TileKey]] = []
        for move_index, move in enumerate(ALL_MOVES):
            target = context.grid.apply(context.current, move)
            if target is None or target not in candidate_set:
                continue
            # Ties broken by stable move order for determinism.
            ranked.append((-distribution[move], move_index, target))
        ranked.sort()
        return [tile for _, _, tile in ranked]
