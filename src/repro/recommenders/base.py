"""Recommender interface (Section 4.3's sub-problem definition).

Given a user request, a candidate set ``C``, and the session history
``H``, a recommender orders the candidates by how likely the user is to
request each next.  Everything a model may consult is packaged in a
:class:`PredictionContext` so models stay interchangeable.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TileGrid
from repro.users.session import Trace


@dataclass(frozen=True)
class PredictionContext:
    """Inputs available to a recommender at prediction time.

    ``history_moves`` / ``history_tiles`` are the session history ``H``
    (most recent last).  ``roi`` is the user's last region of interest as
    maintained by Algorithm 1 (empty until the first zoom-in/zoom-out
    cycle completes).  ``candidates`` are the tiles at most ``d`` moves
    from the current tile, in breadth-first order.
    """

    current: TileKey
    grid: TileGrid
    candidates: tuple[TileKey, ...]
    history_moves: tuple[Move, ...] = ()
    history_tiles: tuple[TileKey, ...] = ()
    roi: tuple[TileKey, ...] = field(default_factory=tuple)

    @property
    def last_move(self) -> Move | None:
        """The user's most recent move, if any."""
        return self.history_moves[-1] if self.history_moves else None


class Recommender(abc.ABC):
    """A model that ranks candidate tiles for prefetching."""

    #: Display / registry name; subclasses override.
    name: str = "recommender"

    def train(self, traces: Sequence[Trace]) -> None:
        """Fit the model on training traces.  Default: nothing to fit."""

    @abc.abstractmethod
    def predict(self, context: PredictionContext) -> list[TileKey]:
        """Rank candidates, most likely first.

        Returns an ordering of (a subset of) ``context.candidates``; the
        caller trims it to the model's cache allocation ``k``.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
