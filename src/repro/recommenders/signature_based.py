"""The Signature-Based (SB) recommender (Section 4.3.3, Algorithm 3).

Ranks candidate tiles by visual similarity to the user's most recent
region of interest: for each candidate/ROI pair it combines per-signature
Chi-Squared distances (penalized by physical separation) and sums over
the ROI tiles.  Visually similar neighbors — "find more mountains" —
come first.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.recommenders.base import PredictionContext, Recommender
from repro.signatures.distance import rank_by_score, score_candidates
from repro.signatures.provider import SignatureProvider
from repro.tiles.key import TileKey


class SignatureBasedRecommender(Recommender):
    """Visual-similarity ranking against the user's last ROI."""

    def __init__(
        self,
        provider: SignatureProvider,
        signature_names: Sequence[str],
        weights: Sequence[float] | None = None,
    ) -> None:
        if not signature_names:
            raise ValueError("SB recommender needs at least one signature")
        for name in signature_names:
            if name not in provider.registry:
                raise ValueError(f"signature {name!r} not in provider registry")
        self.provider = provider
        self.signature_names = tuple(signature_names)
        self.weights = None if weights is None else tuple(weights)
        self.name = "sb:" + "+".join(self.signature_names)

    def predict(self, context: PredictionContext) -> list[TileKey]:
        """Rank candidates by Algorithm 3 distance to the ROI.

        Until the user completes her first zoom-in/zoom-out cycle the ROI
        is empty; the current tile then stands in as the reference — the
        user is presumably moving toward things that look like what she
        is looking at now.
        """
        roi = list(context.roi) if context.roi else [context.current]
        scores = score_candidates(
            list(context.candidates),
            roi,
            self.signature_names,
            self.provider.vector,
            self.provider.distance_fns(self.signature_names),
            self.weights,
        )
        return rank_by_score(scores)
