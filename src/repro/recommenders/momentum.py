"""The Momentum baseline (Doshi et al., reimplemented per Section 5.2.3).

Momentum assumes the user's next move repeats her previous move: the
tile matching the previous move gets probability 0.9 and the eight other
one-move candidates get 0.0125 each.  This is a first-order Markov chain
with hand-fixed probabilities.
"""

from __future__ import annotations

from repro.recommenders.base import PredictionContext, Recommender
from repro.tiles.key import TileKey
from repro.tiles.moves import ALL_MOVES, Move

#: Probability assigned to repeating the previous move.
REPEAT_PROBABILITY = 0.9
#: Probability assigned to each of the other eight moves.
OTHER_PROBABILITY = 0.0125


class MomentumRecommender(Recommender):
    """Predicts that the next move repeats the previous one."""

    name = "momentum"

    def move_distribution(self, last_move: Move | None) -> dict[Move, float]:
        """The fixed Momentum distribution given the previous move.

        With no previous move (session start) all moves are uniform.
        """
        if last_move is None:
            return {move: 1.0 / len(ALL_MOVES) for move in ALL_MOVES}
        return {
            move: REPEAT_PROBABILITY if move is last_move else OTHER_PROBABILITY
            for move in ALL_MOVES
        }

    def predict(self, context: PredictionContext) -> list[TileKey]:
        distribution = self.move_distribution(context.last_move)
        candidate_set = set(context.candidates)
        ranked: list[tuple[float, int, TileKey]] = []
        for move_index, move in enumerate(ALL_MOVES):
            target = context.grid.apply(context.current, move)
            if target is None or target not in candidate_set:
                continue
            ranked.append((-distribution[move], move_index, target))
        ranked.sort()
        return [tile for _, _, tile in ranked]
