"""Interpolated Kneser–Ney smoothing for move n-grams.

The paper smooths its Markov chain transition counts with Kneser–Ney
(via BerkeleyLM); this is a from-scratch implementation of the standard
interpolated estimator.  The highest order interpolates raw counts with
lower-order *continuation* probabilities — "how many distinct contexts
has this move followed?" — which predicts novel contexts far better than
raw frequency backoff.  The recursion bottoms out at a uniform
distribution over the vocabulary, so every move always has non-zero
probability.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Hashable, Sequence


class KneserNeyEstimator:
    """Interpolated Kneser–Ney over fixed-vocabulary symbol sequences.

    Parameters
    ----------
    order:
        N-gram order: contexts are ``order`` symbols long (the paper's
        "Markov3" is ``order=3``).
    vocabulary:
        The complete symbol set (the nine interface moves).
    discount:
        Absolute discount ``D`` in (0, 1).
    """

    def __init__(
        self,
        order: int,
        vocabulary: Sequence[Hashable],
        discount: float = 0.75,
    ) -> None:
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if not 0.0 < discount < 1.0:
            raise ValueError(f"discount must be in (0, 1), got {discount}")
        if not vocabulary:
            raise ValueError("vocabulary must be non-empty")
        self.order = order
        self.vocabulary = tuple(dict.fromkeys(vocabulary))
        self.discount = discount
        # _counts[k][context][symbol]: at the highest order these are raw
        # n-gram counts; at lower orders, continuation counts (number of
        # distinct one-symbol extensions to the left).
        self._counts: list[dict[tuple, Counter]] = [
            defaultdict(Counter) for _ in range(order + 1)
        ]
        self._fitted = False

    def fit(self, sequences: Sequence[Sequence[Hashable]]) -> "KneserNeyEstimator":
        """Count n-grams (and derive continuation counts) from sequences."""
        vocab = set(self.vocabulary)
        raw: list[dict[tuple, Counter]] = [
            defaultdict(Counter) for _ in range(self.order + 1)
        ]
        for sequence in sequences:
            symbols = list(sequence)
            unknown = set(symbols) - vocab
            if unknown:
                raise ValueError(f"symbols outside vocabulary: {sorted(map(str, unknown))}")
            for k in range(self.order + 1):
                # Count (context of length k) -> next symbol.
                for i in range(k, len(symbols)):
                    context = tuple(symbols[i - k : i])
                    raw[k][context][symbols[i]] += 1

        counts = [defaultdict(Counter) for _ in range(self.order + 1)]
        counts[self.order] = raw[self.order]
        # Continuation counts for each lower order k: how many distinct
        # symbols v extend (v + context) at order k+1 with count > 0.
        for k in range(self.order - 1, -1, -1):
            for context, successors in raw[k + 1].items():
                suffix = context[1:]
                for symbol in successors:
                    counts[k][suffix][symbol] += 1
        self._counts = counts
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    # probabilities
    # ------------------------------------------------------------------
    def probability(self, symbol: Hashable, context: Sequence[Hashable]) -> float:
        """Smoothed ``P(symbol | context)``.

        Longer contexts are truncated to the estimator's order; shorter
        ones start the recursion at their own length.
        """
        if not self._fitted:
            raise RuntimeError("estimator is not fitted; call fit() first")
        context = tuple(context)[-self.order :]
        return self._probability(symbol, context, len(context))

    def distribution(self, context: Sequence[Hashable]) -> dict[Hashable, float]:
        """Smoothed distribution over the whole vocabulary."""
        return {
            symbol: self.probability(symbol, context)
            for symbol in self.vocabulary
        }

    def _probability(self, symbol: Hashable, context: tuple, k: int) -> float:
        if k == 0:
            return self._base_probability(symbol)
        table = self._counts[k].get(context)
        lower = self._probability(symbol, context[1:], k - 1)
        if not table:
            return lower
        total = sum(table.values())
        distinct = len(table)
        discounted = max(table.get(symbol, 0) - self.discount, 0.0) / total
        interpolation = self.discount * distinct / total
        return discounted + interpolation * lower

    def _base_probability(self, symbol: Hashable) -> float:
        """Continuation-count unigram, interpolated with uniform."""
        table = self._counts[0].get((), Counter())
        uniform = 1.0 / len(self.vocabulary)
        total = sum(table.values())
        if total == 0:
            return uniform
        discounted = max(table.get(symbol, 0) - self.discount, 0.0) / total
        interpolation = self.discount * len(table) / total
        return discounted + interpolation * uniform
