"""End-to-end MODIS dataset construction (Section 5.1.1).

Mirrors the paper's preparation pipeline:

1. load each day's VIS and SWIR band arrays into the DBMS,
2. compute that day's NDSI inside the DBMS via Query 1,
3. flatten the week into a single 2-D array with four attributes —
   ``ndsi_avg``, ``ndsi_min``, ``ndsi_max``, and ``land_mask``,
4. build the zoom-level pyramid of data tiles over the flattened array.

The resulting :class:`MODISDataset` also carries the three study tasks
and the "what does the user see" helpers the simulated participants use
(snow fraction per tile, tiles overlapping a task region).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arraydb.cost import CostModel, VirtualClock
from repro.arraydb.executor import Database
from repro.arraydb.schema import ArraySchema, Attribute, Dimension
from repro.modis.ndsi import run_ndsi_query
from repro.modis.regions import TaskSpec, scaled_tasks
from repro.modis.synth import SyntheticWorld
from repro.tiles.key import TileKey
from repro.tiles.pyramid import TilePyramid

#: Attribute order of the flattened NDSI array.
NDSI_ATTRIBUTES = ("ndsi_avg", "ndsi_min", "ndsi_max", "land_mask")


@dataclass
class MODISDataset:
    """A built synthetic MODIS dataset: DBMS, pyramid, world, and tasks."""

    db: Database
    pyramid: TilePyramid
    world: SyntheticWorld
    tasks: tuple[TaskSpec, ...]
    array_name: str

    #: Attribute rendered by the browsing interface (the heatmap's value).
    primary_attribute: str = "ndsi_avg"

    @classmethod
    def build(
        cls,
        size: int = 512,
        tile_size: int = 32,
        days: int = 3,
        seed: int = 7,
        db: Database | None = None,
        tasks: tuple[TaskSpec, ...] | None = None,
        array_name: str = "NDSI",
        keep_daily_arrays: bool = False,
    ) -> "MODISDataset":
        """Synthesize the world and build the tiled NDSI pyramid.

        ``size`` must be ``tile_size * 2^k``; the pyramid gets ``k + 1``
        zoom levels.  When no database is supplied, one is created with a
        cost model calibrated so a tile fetch costs the paper's measured
        984 ms cache-miss latency.
        """
        if tasks is None:
            # Task difficulty is calibrated for the 2048-cell study
            # raster; smaller worlds get proportionally relaxed tasks.
            tasks = scaled_tasks(size)
        if db is None:
            # Calibrated so that one tile query (all four attributes)
            # plus the middleware transfer overhead reproduces the
            # paper's 984 ms miss.
            from repro.middleware.latency import HIT_SECONDS, MISS_SECONDS

            db = Database(
                cost_model=CostModel.calibrated(
                    tile_cells=tile_size * tile_size * len(NDSI_ATTRIBUTES),
                    miss_seconds=MISS_SECONDS - HIT_SECONDS,
                ),
                clock=VirtualClock(),
            )
        world = SyntheticWorld(seed)

        running_sum: np.ndarray | None = None
        running_min: np.ndarray | None = None
        running_max: np.ndarray | None = None
        for day in range(days):
            vis, swir = world.bands(size, day)
            vis_name = f"S_VIS_day{day}"
            swir_name = f"S_SWIR_day{day}"
            _load_band(db, vis_name, vis)
            _load_band(db, swir_name, swir)
            day_array = run_ndsi_query(
                db, vis_name, swir_name, f"{array_name}_day{day}"
            )
            ndsi = db.read(day_array, "ndsi")
            if running_sum is None:
                running_sum = ndsi.copy()
                running_min = ndsi.copy()
                running_max = ndsi.copy()
            else:
                running_sum += ndsi
                np.minimum(running_min, ndsi, out=running_min)
                np.maximum(running_max, ndsi, out=running_max)
            if not keep_daily_arrays:
                db.drop_array(vis_name)
                db.drop_array(swir_name)
                db.drop_array(day_array)

        assert running_sum is not None  # days >= 1 enforced by range()
        land = world.land_mask(size)
        flattened = {
            "ndsi_avg": running_sum / days,
            "ndsi_min": running_min,
            "ndsi_max": running_max,
            "land_mask": land,
        }

        schema = ArraySchema(
            array_name,
            attributes=tuple(Attribute(name) for name in NDSI_ATTRIBUTES),
            dimensions=(
                Dimension("y", 0, size, tile_size),
                Dimension("x", 0, size, tile_size),
            ),
        )
        array = db.create_array(schema)
        for name in NDSI_ATTRIBUTES:
            array.write(name, flattened[name])

        pyramid = TilePyramid.build(
            db,
            array_name,
            tile_size,
            attributes=NDSI_ATTRIBUTES,
            aggregates={"land_mask": "max"},
        )
        return cls(
            db=db,
            pyramid=pyramid,
            world=world,
            tasks=tuple(tasks),
            array_name=array_name,
        )

    # ------------------------------------------------------------------
    # "what the user sees" helpers
    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        """Zoom levels in the pyramid."""
        return self.pyramid.num_levels

    def task(self, task_id: int) -> TaskSpec:
        """Look up a study task by its 1-based id."""
        for task in self.tasks:
            if task.task_id == task_id:
                return task
        raise KeyError(f"no task with id {task_id}")

    def snow_fraction(self, key: TileKey, threshold: float = 0.0) -> float:
        """Fraction of a tile's land cells whose average NDSI exceeds
        ``threshold`` — the visual "how orange is this tile" cue the
        simulated user navigates by.  Reads bypass the executor (a human
        looking at an already-rendered tile costs no queries).
        """
        tile = self.pyramid.fetch_tile(key, charge=False)
        ndsi = tile.attribute(self.primary_attribute)
        return float(np.mean(ndsi > threshold))

    def max_ndsi(self, key: TileKey) -> float:
        """Largest per-cell average NDSI within a tile."""
        tile = self.pyramid.fetch_tile(key, charge=False)
        return float(tile.attribute(self.primary_attribute).max())

    def saliency(self, key: TileKey, threshold: float = 0.0) -> float:
        """Visual attractiveness of a tile: mass of *clustered* snow.

        Users forage for "large clusters of orange pixels" (the paper's
        Figure 6); isolated bright cells — sensor speckle — do not draw
        the eye.  This is the fraction of cells belonging to connected
        above-threshold components of at least :data:`MIN_CLUSTER_CELLS`
        cells.
        """
        tile = self.pyramid.fetch_tile(key, charge=False)
        mask = tile.attribute(self.primary_attribute) > threshold
        return _cluster_mass(mask)

    def quadrant_saliency(
        self, key: TileKey, threshold: float = 0.0
    ) -> dict[tuple[int, int], float]:
        """Clustered-snow mass per rendered quadrant (zoom-in choices)."""
        tile = self.pyramid.fetch_tile(key, charge=False)
        mask = tile.attribute(self.primary_attribute) > threshold
        h, w = mask.shape
        hy, hx = h // 2, w // 2
        return {
            (0, 0): _cluster_mass(mask[:hy, :hx]),
            (1, 0): _cluster_mass(mask[:hy, hx:]),
            (0, 1): _cluster_mass(mask[hy:, :hx]),
            (1, 1): _cluster_mass(mask[hy:, hx:]),
        }

    def edge_saliency(
        self, key: TileKey, threshold: float = 0.0, strip: float = 0.3
    ) -> dict[str, float]:
        """Clustered-snow mass near each edge (pan choices)."""
        tile = self.pyramid.fetch_tile(key, charge=False)
        mask = tile.attribute(self.primary_attribute) > threshold
        h, w = mask.shape
        sy = max(1, int(round(h * strip)))
        sx = max(1, int(round(w * strip)))
        return {
            "left": _cluster_mass(mask[:, :sx]),
            "right": _cluster_mass(mask[:, w - sx :]),
            "up": _cluster_mass(mask[:sy, :]),
            "down": _cluster_mass(mask[h - sy :, :]),
        }

    def quadrant_snow(self, key: TileKey, threshold: float = 0.0) -> dict[tuple[int, int], float]:
        """Snow fraction in each rendered quadrant of a tile.

        The browsing interface zooms by clicking a quadrant (Section
        5.3.2), so this is literally the information the user weighs when
        choosing where to zoom.  Keys are (dx, dy) quadrant offsets.
        """
        tile = self.pyramid.fetch_tile(key, charge=False)
        ndsi = tile.attribute(self.primary_attribute)
        h, w = ndsi.shape
        hy, hx = h // 2, w // 2
        quadrants = {
            (0, 0): ndsi[:hy, :hx],
            (1, 0): ndsi[:hy, hx:],
            (0, 1): ndsi[hy:, :hx],
            (1, 1): ndsi[hy:, hx:],
        }
        return {
            offset: float(np.mean(block > threshold))
            for offset, block in quadrants.items()
        }

    def edge_snow(
        self, key: TileKey, threshold: float = 0.0, strip: float = 0.3
    ) -> dict[str, float]:
        """Snow fraction near each edge of a tile.

        A cluster touching the east edge suggests the pattern continues
        on the tile to the right — the visual cue a panning user follows.
        Keys are "left", "right", "up", "down"; ``strip`` is the fraction
        of the tile counted as "near the edge".
        """
        tile = self.pyramid.fetch_tile(key, charge=False)
        ndsi = tile.attribute(self.primary_attribute)
        h, w = ndsi.shape
        sy = max(1, int(round(h * strip)))
        sx = max(1, int(round(w * strip)))
        return {
            "left": float(np.mean(ndsi[:, :sx] > threshold)),
            "right": float(np.mean(ndsi[:, w - sx :] > threshold)),
            "up": float(np.mean(ndsi[:sy, :] > threshold)),
            "down": float(np.mean(ndsi[h - sy :, :] > threshold)),
        }

    def tiles_overlapping(self, bbox: tuple[float, float, float, float], level: int) -> list[TileKey]:
        """All tiles at ``level`` intersecting a normalized bbox."""
        x_min, y_min, x_max, y_max = bbox
        n = self.pyramid.grid.tiles_per_dim(level)
        x_lo = max(0, int(np.floor(x_min * n)))
        y_lo = max(0, int(np.floor(y_min * n)))
        x_hi = min(n - 1, int(np.ceil(x_max * n)) - 1)
        y_hi = min(n - 1, int(np.ceil(y_max * n)) - 1)
        return [
            TileKey(level, x, y)
            for y in range(y_lo, y_hi + 1)
            for x in range(x_lo, x_hi + 1)
        ]

    def satisfies_task(self, key: TileKey, task: TaskSpec) -> bool:
        """True if a tile meets the task's requirements: correct level,
        inside the region, and *visibly* containing NDSI above the
        threshold (at least ``task.min_fraction`` of its cells)."""
        if key.level != task.target_level(self.num_levels):
            return False
        cx, cy = key.normalized_center()
        if not task.contains(cx, cy):
            return False
        return self.snow_fraction(key, task.ndsi_threshold) >= task.min_fraction


#: Connected components smaller than this read as noise, not clusters.
MIN_CLUSTER_CELLS = 4


def _cluster_mass(mask: np.ndarray) -> float:
    """Fraction of cells in connected components of meaningful size."""
    from scipy import ndimage

    if not mask.any():
        return 0.0
    labels, count = ndimage.label(mask)
    if count == 0:
        return 0.0
    sizes = np.bincount(labels.ravel())[1:]
    clustered = sizes[sizes >= MIN_CLUSTER_CELLS].sum()
    return float(clustered) / mask.size


def _load_band(db: Database, name: str, data: np.ndarray) -> None:
    """Create and bulk-load one band array (schema from Section 5.1.2)."""
    size = data.shape[0]
    schema = ArraySchema(
        name,
        attributes=(Attribute("reflectance"),),
        dimensions=(
            Dimension("y", 0, size, size),
            Dimension("x", 0, size, size),
        ),
    )
    db.create_array(schema)
    db.write(name, "reflectance", data)
