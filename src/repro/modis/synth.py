"""Procedural generation of MODIS-style reflectance bands.

:class:`SyntheticWorld` produces, at any raster resolution, the two band
arrays the NDSI needs (visible light and short-wave infrared), plus a
land/sea mask.  Snow cover follows the physical intuition the paper's
dataset exhibits: it concentrates on mountain ranges and near the poles,
in spatially coherent clusters — the "clusters of orange pixels" users
forage for in Figure 6.

Determinism: everything derives from the constructor seed, so the same
seed always produces the same world (and therefore reproducible traces
and experiment results).
"""

from __future__ import annotations

import numpy as np

from repro.modis.regions import (
    Continent,
    DEFAULT_CONTINENTS,
    DEFAULT_RANGES,
    MountainRange,
)


class ValueNoise:
    """Seeded multi-octave value noise on the unit square.

    Each octave is a random lattice bilinearly interpolated to the target
    resolution; octave amplitudes halve as frequencies double.  Output is
    normalized to ``[0, 1]``.
    """

    def __init__(self, seed: int, octaves: int = 4, base_frequency: int = 4) -> None:
        if octaves < 1:
            raise ValueError(f"octaves must be >= 1, got {octaves}")
        if base_frequency < 1:
            raise ValueError(f"base_frequency must be >= 1, got {base_frequency}")
        self.seed = seed
        self.octaves = octaves
        self.base_frequency = base_frequency

    def sample(self, size: int) -> np.ndarray:
        """Render the noise field onto a ``size x size`` grid."""
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        rng = np.random.default_rng(self.seed)
        total = np.zeros((size, size), dtype="float64")
        amplitude = 1.0
        norm = 0.0
        for octave in range(self.octaves):
            freq = self.base_frequency * (2**octave)
            lattice = rng.random((freq + 1, freq + 1))
            total += amplitude * _bilinear_upsample(lattice, size)
            norm += amplitude
            amplitude *= 0.5
        total /= norm
        lo, hi = total.min(), total.max()
        if hi > lo:
            total = (total - lo) / (hi - lo)
        return total


def _bilinear_upsample(lattice: np.ndarray, size: int) -> np.ndarray:
    """Bilinearly interpolate a ``(f+1, f+1)`` lattice onto ``size x size``."""
    freq = lattice.shape[0] - 1
    coords = np.linspace(0.0, freq, size, endpoint=False) + 0.5 * freq / size
    i0 = np.clip(coords.astype(int), 0, freq - 1)
    frac = coords - i0
    # Separable bilinear interpolation: rows then columns.
    top = lattice[i0][:, i0]
    bottom = lattice[i0 + 1][:, i0]
    right_top = lattice[i0][:, i0 + 1]
    right_bottom = lattice[i0 + 1][:, i0 + 1]
    fy = frac[:, None]
    fx = frac[None, :]
    return (
        top * (1 - fy) * (1 - fx)
        + bottom * fy * (1 - fx)
        + right_top * (1 - fy) * fx
        + right_bottom * fy * fx
    )


def _unit_grid(size: int) -> tuple[np.ndarray, np.ndarray]:
    """Cell-center coordinates on the unit square: returns (x, y) grids."""
    centers = (np.arange(size) + 0.5) / size
    y = centers[:, None] * np.ones((1, size))
    x = np.ones((size, 1)) * centers[None, :]
    return x, y


def _segment_distance(
    x: np.ndarray, y: np.ndarray, x0: float, y0: float, x1: float, y1: float
) -> np.ndarray:
    """Euclidean distance from each grid point to a line segment."""
    dx, dy = x1 - x0, y1 - y0
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        return np.hypot(x - x0, y - y0)
    t = np.clip(((x - x0) * dx + (y - y0) * dy) / length_sq, 0.0, 1.0)
    px = x0 + t * dx
    py = y0 + t * dy
    return np.hypot(x - px, y - py)


class SyntheticWorld:
    """A deterministic world with continents, mountains, and snow."""

    def __init__(
        self,
        seed: int = 7,
        ranges: tuple[MountainRange, ...] = DEFAULT_RANGES,
        continents: tuple[Continent, ...] = DEFAULT_CONTINENTS,
    ) -> None:
        self.seed = seed
        self.ranges = ranges
        self.continents = continents
        # Terrain is day-independent and expensive at full resolution, so
        # cache it per raster size (days only perturb weather).
        self._elevation_cache: dict[int, np.ndarray] = {}
        self._land_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # terrain
    # ------------------------------------------------------------------
    def elevation(self, size: int) -> np.ndarray:
        """Elevation in [0, ~1.4]: ridge Gaussians, discrete peaks along
        each ridge, and rolling noise.

        The peaks matter: real mountain ranges are chains of distinct
        summits, and those summits are the blob-like "landmarks" the
        SIFT signature detects.  A smooth ridge alone has no interior
        extrema for DoG detection to find.
        """
        cached = self._elevation_cache.get(size)
        if cached is not None:
            return cached
        x, y = _unit_grid(size)
        elev = np.zeros((size, size), dtype="float64")
        for ridge_index, ridge in enumerate(self.ranges):
            dist = _segment_distance(x, y, ridge.x0, ridge.y0, ridge.x1, ridge.y1)
            elev += 0.35 * ridge.height * np.exp(-0.5 * (dist / ridge.width) ** 2)
            rng = np.random.default_rng(self.seed * 1000 + ridge_index)
            length = float(np.hypot(ridge.x1 - ridge.x0, ridge.y1 - ridge.y0))
            num_peaks = max(3, int(length / (2.2 * ridge.width)))
            for _ in range(num_peaks):
                t = rng.random()
                jitter = rng.normal(scale=0.6 * ridge.width, size=2)
                px = ridge.x0 + t * (ridge.x1 - ridge.x0) + jitter[0]
                py = ridge.y0 + t * (ridge.y1 - ridge.y0) + jitter[1]
                sigma = ridge.width * rng.uniform(0.3, 0.55)
                height = ridge.height * rng.uniform(0.55, 1.3)
                d2 = (x - px) ** 2 + (y - py) ** 2
                elev += height * np.exp(-0.5 * d2 / sigma**2)
        rolling = ValueNoise(self.seed + 11, octaves=5, base_frequency=6).sample(size)
        result = elev + 0.15 * rolling
        self._elevation_cache[size] = result
        return result

    def land_mask(self, size: int) -> np.ndarray:
        """1.0 on land, 0.0 on ocean (noise-perturbed continent edges)."""
        cached = self._land_cache.get(size)
        if cached is not None:
            return cached
        x, y = _unit_grid(size)
        field = np.full((size, size), -1.0, dtype="float64")
        for continent in self.continents:
            d = np.sqrt(
                ((x - continent.cx) / continent.rx) ** 2
                + ((y - continent.cy) / continent.ry) ** 2
            )
            field = np.maximum(field, 1.0 - d)
        edge_noise = ValueNoise(self.seed + 23, octaves=4, base_frequency=8).sample(size)
        field += 0.25 * (edge_noise - 0.5)
        result = (field > 0.0).astype("float64")
        self._land_cache[size] = result
        return result

    def _coldness(self, size: int) -> np.ndarray:
        """Latitude-driven cold: strong near both poles, weak at equator."""
        _, y = _unit_grid(size)
        north = np.exp(-0.5 * (y / 0.22) ** 2)
        south = np.exp(-0.5 * ((1.0 - y) / 0.10) ** 2)
        return north + 1.4 * south

    def snow_fraction(self, size: int, day: int = 0) -> np.ndarray:
        """Per-cell snow cover fraction in [0, 1] for one synthetic day.

        Days share the same underlying terrain; day-to-day weather is a
        small seeded perturbation (the paper flattens one week of data).
        Snow within a range is *patchy* — real MODIS snow maps show
        valley/ridge texture at fine scales, which is what SIFT keys on —
        so a high-frequency texture field modulates the smooth extent.
        """
        elev = self.elevation(size)
        cold = self._coldness(size)
        weather = ValueNoise(
            self.seed + 101 * (day + 1), octaves=4, base_frequency=12
        ).sample(size)
        score = 2.4 * elev + 1.1 * cold + 0.5 * (weather - 0.5) - 1.45
        snow = 1.0 / (1.0 + np.exp(-6.0 * score))
        texture = ValueNoise(
            self.seed + 401 * (day + 1), octaves=5, base_frequency=24
        ).sample(size)
        snow = snow * (0.55 + 0.9 * texture)
        snow = np.clip(snow, 0.0, 1.0) * self.land_mask(size)
        return self._add_speckle(snow, size, day)

    def _add_speckle(self, snow: np.ndarray, size: int, day: int) -> np.ndarray:
        """Scatter isolated bright cells (sensor speckle / patchy frost).

        Real MODIS snow maps are full of single bright pixels that carry
        no visual structure: a histogram counts them like snow, but a
        human (and SIFT) sees no cluster worth visiting.  The rate rises
        toward cold latitudes.  Speckle is sampled at the raster
        resolution — it models per-pixel sensor-scale effects.
        """
        rng = np.random.default_rng(self.seed + 733 * (day + 1))
        salt = rng.random((size, size))
        cold = np.clip(self._coldness(size), 0.0, 1.5) / 1.5
        rate = 0.015 + 0.05 * cold
        speckle = (salt < rate) & (self.land_mask(size) > 0)
        return np.where(speckle, np.maximum(snow, 0.9), snow)

    # ------------------------------------------------------------------
    # reflectance bands
    # ------------------------------------------------------------------
    def bands(self, size: int, day: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """(VIS, SWIR) reflectance bands for one synthetic day.

        Snow reflects strongly in visible light and weakly in short-wave
        infrared, which is exactly the contrast the NDSI ratio measures:
        full snow here yields NDSI near +0.8, bare ground near -0.33.
        """
        snow = self.snow_fraction(size, day)
        sensor_vis = ValueNoise(
            self.seed + 211 * (day + 1), octaves=2, base_frequency=16
        ).sample(size)
        sensor_swir = ValueNoise(
            self.seed + 307 * (day + 1), octaves=2, base_frequency=16
        ).sample(size)
        vis = 0.20 + 0.60 * snow + 0.04 * (sensor_vis - 0.5)
        swir = 0.40 - 0.30 * snow + 0.04 * (sensor_swir - 0.5)
        return (
            np.clip(vis, 0.01, 1.0).astype("float64"),
            np.clip(swir, 0.01, 1.0).astype("float64"),
        )
