"""The NDSI user-defined function and the paper's Query 1.

The Normalized Difference Snow Index (Section 5.1)::

    NDSI = (VIS - SWIR) / (VIS + SWIR)

is close to +1 over snow and negative over bare ground.  It is computed
inside the DBMS by registering :func:`ndsi_func` as a UDF and executing
Query 1 from Section 5.1.2 —
``store(apply(join(S_VIS, S_SWIR), ndsi, ndsi_func(...)), NDSI)``.
"""

from __future__ import annotations

import numpy as np

from repro.arraydb import query as Q
from repro.arraydb.executor import Database
from repro.arraydb.functions import FunctionRegistry


def ndsi_func(vis: np.ndarray, swir: np.ndarray) -> np.ndarray:
    """Vectorized NDSI; cells where both bands are zero yield 0."""
    vis = np.asarray(vis, dtype="float64")
    swir = np.asarray(swir, dtype="float64")
    total = vis + swir
    return np.divide(
        vis - swir, total, out=np.zeros_like(total), where=total != 0
    )


def register_ndsi(registry: FunctionRegistry) -> None:
    """Register ``ndsi_func`` with a UDF registry (idempotent)."""
    if "ndsi_func" not in registry:
        registry.register("ndsi_func", ndsi_func)


def run_ndsi_query(
    db: Database,
    vis_array: str,
    swir_array: str,
    out_array: str,
    chunks: tuple[int, ...] | None = None,
) -> str:
    """Execute Query 1: join the band arrays, apply NDSI, store the result.

    The stored array has a single ``ndsi`` attribute.  Returns the output
    array name.
    """
    register_ndsi(db.registry)
    plan = Q.store(
        Q.project(
            Q.apply(
                Q.join(Q.scan(vis_array), Q.scan(swir_array)),
                "ndsi",
                "ndsi_func",
                (f"{vis_array}.reflectance", f"{swir_array}.reflectance"),
            ),
            ("ndsi",),
        ),
        out_array,
        chunks=chunks,
    )
    db.execute(plan)
    return out_array
