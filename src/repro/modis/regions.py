"""World geography for the synthetic MODIS dataset.

Coordinates are normalized to the unit square: ``x`` is longitude
(0 = 180°W, 1 = 180°E), ``y`` is latitude row (0 = north pole,
1 = south pole).  The layout loosely mirrors an equirectangular world
map so the three study tasks (Section 5.3.3) target regions in the same
relative positions as the paper's: the continental United States
(Rockies), western Europe (Alps), and South America (Andes).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MountainRange:
    """A ridge of elevated (snowy) terrain along a line segment.

    ``(x0, y0) → (x1, y1)`` is the ridge axis; ``width`` is the Gaussian
    falloff perpendicular to it; ``height`` scales how strongly the range
    raises elevation (and therefore snow likelihood).
    """

    name: str
    x0: float
    y0: float
    x1: float
    y1: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(
                f"range {self.name!r}: width and height must be positive"
            )


@dataclass(frozen=True)
class Continent:
    """An elliptical landmass blob (the land/sea mask is their union)."""

    name: str
    cx: float
    cy: float
    rx: float
    ry: float

    def __post_init__(self) -> None:
        if self.rx <= 0 or self.ry <= 0:
            raise ValueError(f"continent {self.name!r}: radii must be positive")


@dataclass(frozen=True)
class TaskSpec:
    """One study search task (Section 5.3.3).

    Users must find ``tiles_to_find`` tiles inside ``bbox`` (normalized
    ``(x_min, y_min, x_max, y_max)``) at ``target_depth`` levels above the
    pyramid's deepest level, visibly containing NDSI above
    ``ndsi_threshold``.  "Visibly" means at least ``min_fraction`` of the
    tile's cells qualify — a human judging a rendered 32x32 heatmap needs
    an actual cluster of orange pixels, not one hot cell.
    """

    task_id: int
    name: str
    bbox: tuple[float, float, float, float]
    target_depth: int
    ndsi_threshold: float
    tiles_to_find: int = 4
    min_fraction: float = 0.15

    def __post_init__(self) -> None:
        x_min, y_min, x_max, y_max = self.bbox
        if not (0 <= x_min < x_max <= 1 and 0 <= y_min < y_max <= 1):
            raise ValueError(f"task {self.name!r}: malformed bbox {self.bbox}")
        if self.target_depth < 0:
            raise ValueError(f"task {self.name!r}: target_depth must be >= 0")
        if not 0.0 < self.min_fraction <= 1.0:
            raise ValueError(f"task {self.name!r}: min_fraction must be in (0, 1]")

    def target_level(self, num_levels: int) -> int:
        """Resolve the task's absolute zoom level for a concrete pyramid."""
        level = num_levels - 1 - self.target_depth
        if level < 0:
            raise ValueError(
                f"task {self.name!r} needs {self.target_depth + 1} levels, "
                f"pyramid has {num_levels}"
            )
        return level

    def contains(self, x: float, y: float) -> bool:
        """True if a normalized point falls inside the task region."""
        x_min, y_min, x_max, y_max = self.bbox
        return x_min <= x <= x_max and y_min <= y <= y_max


#: Mountain ranges, loosely following real-world geography.  The US
#: ranges are deliberately separated (Cascades / N. Rockies / S. Rockies
#: / Sierra Nevada) so task 1 requires visiting several distinct regions,
#: as the paper's longest task did.
DEFAULT_RANGES: tuple[MountainRange, ...] = (
    MountainRange("cascades", 0.170, 0.205, 0.185, 0.26, width=0.012, height=0.95),
    MountainRange("n_rockies", 0.215, 0.235, 0.235, 0.29, width=0.014, height=1.00),
    MountainRange("s_rockies", 0.245, 0.345, 0.26, 0.405, width=0.013, height=0.90),
    MountainRange("sierra_nevada", 0.163, 0.345, 0.178, 0.40, width=0.011, height=0.85),
    MountainRange("appalachians", 0.285, 0.30, 0.315, 0.37, width=0.012, height=0.35),
    MountainRange("alps_west", 0.505, 0.292, 0.528, 0.276, width=0.013, height=0.95),
    MountainRange("alps_east", 0.528, 0.276, 0.558, 0.294, width=0.013, height=0.9),
    MountainRange("pyrenees", 0.487, 0.303, 0.503, 0.306, width=0.009, height=0.65),
    MountainRange("scandes", 0.53, 0.13, 0.56, 0.20, width=0.015, height=0.70),
    MountainRange("caucasus", 0.625, 0.28, 0.655, 0.29, width=0.011, height=0.75),
    MountainRange("himalayas", 0.70, 0.325, 0.76, 0.345, width=0.018, height=1.05),
    MountainRange("andes_north", 0.300, 0.55, 0.306, 0.68, width=0.013, height=0.95),
    MountainRange("andes_south", 0.306, 0.68, 0.325, 0.83, width=0.013, height=0.92),
    MountainRange("southern_alps_nz", 0.935, 0.73, 0.95, 0.76, width=0.010, height=0.70),
)

#: Landmass blobs for the land/sea mask.
DEFAULT_CONTINENTS: tuple[Continent, ...] = (
    Continent("north_america", 0.22, 0.28, 0.14, 0.17),
    Continent("central_america", 0.26, 0.45, 0.05, 0.06),
    Continent("south_america", 0.32, 0.65, 0.08, 0.17),
    Continent("greenland", 0.40, 0.12, 0.05, 0.06),
    Continent("europe", 0.53, 0.25, 0.08, 0.10),
    Continent("africa", 0.55, 0.50, 0.10, 0.16),
    Continent("asia", 0.70, 0.25, 0.18, 0.15),
    Continent("india", 0.70, 0.42, 0.05, 0.07),
    Continent("southeast_asia", 0.78, 0.47, 0.06, 0.06),
    Continent("australia", 0.85, 0.68, 0.08, 0.08),
    Continent("new_zealand", 0.94, 0.74, 0.025, 0.04),
    Continent("antarctica", 0.50, 0.97, 0.50, 0.05),
)

def scaled_tasks(size: int, reference_size: int = 2048) -> tuple["TaskSpec", ...]:
    """The default tasks, adjusted for a downscaled world raster.

    The study tasks are calibrated for a 2048-cell raster (7 zoom
    levels).  Halving the raster doubles the geographic area each
    target-level tile covers, so mountain peaks occupy a smaller
    fraction of every tile: the visible-cluster bar (``min_fraction``)
    and qualifying-tile counts must relax accordingly or small test
    worlds have no findable tiles at all.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    factor = reference_size / size
    if factor <= 1.0:
        return DEFAULT_TASKS
    from dataclasses import replace

    if factor <= 2.0:
        min_fraction, threshold_drop, to_find = 0.06, 0.05, 2
    else:
        min_fraction, threshold_drop, to_find = 0.04, 0.10, 2
    return tuple(
        replace(
            task,
            min_fraction=min_fraction,
            ndsi_threshold=max(0.05, task.ndsi_threshold - threshold_drop),
            tiles_to_find=to_find,
        )
        for task in DEFAULT_TASKS
    )


#: The three study tasks from Section 5.3.3.  ``target_depth`` is levels
#: above the raw level: the paper's zoom level 6 of 9 is depth 2; level 8
#: of 9 is depth 0 — kept relative so smaller pyramids stay meaningful.
DEFAULT_TASKS: tuple[TaskSpec, ...] = (
    TaskSpec(
        task_id=1,
        name="us_snow",
        bbox=(0.13, 0.22, 0.33, 0.44),
        target_depth=1,
        ndsi_threshold=0.55,
    ),
    TaskSpec(
        task_id=2,
        name="europe_snow",
        bbox=(0.46, 0.18, 0.60, 0.34),
        target_depth=0,
        ndsi_threshold=0.50,
    ),
    TaskSpec(
        task_id=3,
        name="south_america_snow",
        bbox=(0.26, 0.50, 0.40, 0.86),
        target_depth=1,
        ndsi_threshold=0.25,
    ),
)
