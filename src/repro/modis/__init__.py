"""Synthetic NASA-MODIS-style snow-cover data (Section 5.1).

The paper's evaluation browses one week of NASA MODIS satellite imagery,
reduced to a 2-D NDSI (Normalized Difference Snow Index) array with four
attributes: max / min / average NDSI and a land/sea mask.  Real MODIS
data is a 10 TB download, so this package synthesizes a world with the
same *visual structure*: continents, ocean, and spatially coherent
mountain ranges whose snow shows up as bright NDSI clusters — including
analogues of the three study regions (Rockies, Alps, Andes).

The NDSI itself is computed exactly as the paper does: a ``ndsi_func``
UDF applied through the array DBMS via Query 1
(``store(apply(join(S_VIS, S_SWIR), ndsi, ...), NDSI)``).
"""

from repro.modis.dataset import MODISDataset
from repro.modis.ndsi import ndsi_func, register_ndsi, run_ndsi_query
from repro.modis.regions import (
    Continent,
    DEFAULT_CONTINENTS,
    DEFAULT_RANGES,
    DEFAULT_TASKS,
    MountainRange,
    TaskSpec,
)
from repro.modis.synth import SyntheticWorld, ValueNoise

__all__ = [
    "Continent",
    "DEFAULT_CONTINENTS",
    "DEFAULT_RANGES",
    "DEFAULT_TASKS",
    "MODISDataset",
    "MountainRange",
    "SyntheticWorld",
    "TaskSpec",
    "ValueNoise",
    "ndsi_func",
    "register_ndsi",
    "run_ndsi_query",
]
