"""Exception hierarchy for the array DBMS substrate."""


class ArrayDBError(Exception):
    """Base class for all array DBMS errors."""


class SchemaError(ArrayDBError):
    """Raised when a schema is malformed or two schemas are incompatible."""


class ArrayNotFoundError(ArrayDBError):
    """Raised when a query references an array that does not exist."""

    def __init__(self, name: str) -> None:
        super().__init__(f"array {name!r} does not exist")
        self.name = name


class ArrayExistsError(ArrayDBError):
    """Raised when creating an array whose name is already taken."""

    def __init__(self, name: str) -> None:
        super().__init__(f"array {name!r} already exists")
        self.name = name


class UnknownFunctionError(ArrayDBError):
    """Raised when ``apply`` references a UDF that was never registered."""

    def __init__(self, name: str) -> None:
        super().__init__(f"function {name!r} is not registered")
        self.name = name


class QueryError(ArrayDBError):
    """Raised when a query plan is structurally invalid."""
