"""Chunk stores: where array chunks physically live.

A chunk key is ``(array_name, attribute_name, chunk_coords)`` where
``chunk_coords`` is a tuple of per-dimension chunk indices.  Two backends
are provided:

- :class:`MemoryChunkStore` — a dict of numpy arrays (used for tests and
  the middleware tile cache's backing store),
- :class:`DiskChunkStore` — ``.npy`` files under a directory, emulating
  SciDB's on-disk chunk storage.
"""

from __future__ import annotations

import shutil
from collections.abc import Iterator
from pathlib import Path
from typing import Protocol

import numpy as np

ChunkKey = tuple[str, str, tuple[int, ...]]


class ChunkStore(Protocol):
    """Minimal interface every chunk store implements."""

    def put(self, key: ChunkKey, chunk: np.ndarray) -> None:
        """Store (or overwrite) a chunk."""
        ...

    def get(self, key: ChunkKey) -> np.ndarray:
        """Fetch a chunk; raises ``KeyError`` if absent."""
        ...

    def __contains__(self, key: ChunkKey) -> bool: ...

    def delete(self, key: ChunkKey) -> None:
        """Remove a chunk; raises ``KeyError`` if absent."""
        ...

    def keys(self) -> Iterator[ChunkKey]:
        """Iterate over all stored chunk keys."""
        ...

    def bytes_used(self) -> int:
        """Total payload bytes currently stored."""
        ...


class MemoryChunkStore:
    """Chunks held in a plain dictionary."""

    def __init__(self) -> None:
        self._chunks: dict[ChunkKey, np.ndarray] = {}

    def put(self, key: ChunkKey, chunk: np.ndarray) -> None:
        self._chunks[key] = np.asarray(chunk)

    def get(self, key: ChunkKey) -> np.ndarray:
        return self._chunks[key]

    def __contains__(self, key: ChunkKey) -> bool:
        return key in self._chunks

    def delete(self, key: ChunkKey) -> None:
        del self._chunks[key]

    def keys(self) -> Iterator[ChunkKey]:
        return iter(list(self._chunks))

    def bytes_used(self) -> int:
        return sum(chunk.nbytes for chunk in self._chunks.values())

    def __len__(self) -> int:
        return len(self._chunks)


class DiskChunkStore:
    """Chunks stored as ``.npy`` files under ``root``.

    The file layout is ``root/<array>/<attribute>/<c0>_<c1>_....npy``.
    An in-memory index avoids directory scans on lookups.
    """

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._index: dict[ChunkKey, Path] = {}
        self._rebuild_index()

    def _path_for(self, key: ChunkKey) -> Path:
        array, attribute, coords = key
        fname = "_".join(str(c) for c in coords) + ".npy"
        return self._root / array / attribute / fname

    def _rebuild_index(self) -> None:
        self._index.clear()
        for path in self._root.glob("*/*/*.npy"):
            attribute = path.parent.name
            array = path.parent.parent.name
            coords = tuple(int(part) for part in path.stem.split("_"))
            self._index[(array, attribute, coords)] = path

    def put(self, key: ChunkKey, chunk: np.ndarray) -> None:
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.save(path, np.asarray(chunk))
        self._index[key] = path

    def get(self, key: ChunkKey) -> np.ndarray:
        path = self._index.get(key)
        if path is None:
            raise KeyError(key)
        return np.load(path)

    def __contains__(self, key: ChunkKey) -> bool:
        return key in self._index

    def delete(self, key: ChunkKey) -> None:
        path = self._index.pop(key, None)
        if path is None:
            raise KeyError(key)
        path.unlink(missing_ok=True)

    def keys(self) -> Iterator[ChunkKey]:
        return iter(list(self._index))

    def bytes_used(self) -> int:
        return sum(path.stat().st_size for path in self._index.values())

    def __len__(self) -> int:
        return len(self._index)

    def clear(self) -> None:
        """Remove every chunk and the backing directory tree."""
        shutil.rmtree(self._root, ignore_errors=True)
        self._root.mkdir(parents=True, exist_ok=True)
        self._index.clear()
