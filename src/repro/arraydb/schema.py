"""Array schemas: named dimensions and typed attributes.

Mirrors the SciDB schema notation used in the paper (Section 5.1.2)::

    S_VIS(reflectance)[latitude, longitude]

Attributes are the per-cell values; dimensions define the coordinate grid
and its chunking.  Dimension ranges are half-open ``[start, end)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.arraydb.errors import SchemaError


@dataclass(frozen=True)
class Dimension:
    """A named, integer-indexed array dimension.

    Parameters
    ----------
    name:
        Dimension name, e.g. ``"latitude"``.
    start:
        First valid coordinate (inclusive).
    end:
        One past the last valid coordinate (exclusive).
    chunk:
        Chunk interval along this dimension.  Storage splits the
        coordinate range into blocks of this many cells.
    """

    name: str
    start: int
    end: int
    chunk: int

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("dimension name must be non-empty")
        if self.end <= self.start:
            raise SchemaError(
                f"dimension {self.name!r}: end ({self.end}) must be greater "
                f"than start ({self.start})"
            )
        if self.chunk <= 0:
            raise SchemaError(
                f"dimension {self.name!r}: chunk interval must be positive, "
                f"got {self.chunk}"
            )

    @property
    def length(self) -> int:
        """Number of cells along this dimension."""
        return self.end - self.start

    @property
    def num_chunks(self) -> int:
        """Number of chunks needed to cover the dimension."""
        return math.ceil(self.length / self.chunk)

    def chunk_of(self, coordinate: int) -> int:
        """Return the chunk index containing ``coordinate``."""
        if not self.start <= coordinate < self.end:
            raise IndexError(
                f"coordinate {coordinate} outside dimension {self.name!r} "
                f"range [{self.start}, {self.end})"
            )
        return (coordinate - self.start) // self.chunk

    def chunk_bounds(self, chunk_index: int) -> tuple[int, int]:
        """Return the ``[start, end)`` coordinate range of a chunk."""
        if not 0 <= chunk_index < self.num_chunks:
            raise IndexError(
                f"chunk {chunk_index} outside dimension {self.name!r} "
                f"(has {self.num_chunks} chunks)"
            )
        lo = self.start + chunk_index * self.chunk
        hi = min(lo + self.chunk, self.end)
        return lo, hi

    def __str__(self) -> str:
        return f"{self.name}={self.start}:{self.end}:{self.chunk}"


@dataclass(frozen=True)
class Attribute:
    """A named, typed per-cell value.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"reflectance"``.
    dtype:
        Any numpy-compatible dtype string (default ``"float64"``).
    """

    name: str
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        try:
            np.dtype(self.dtype)
        except TypeError as exc:
            raise SchemaError(
                f"attribute {self.name!r}: invalid dtype {self.dtype!r}"
            ) from exc

    @property
    def numpy_dtype(self) -> np.dtype:
        """The attribute's dtype as a numpy dtype object."""
        return np.dtype(self.dtype)

    def __str__(self) -> str:
        return f"{self.name}:{self.dtype}"


@dataclass(frozen=True)
class ArraySchema:
    """The full schema of a stored array: name, attributes, dimensions."""

    name: str
    attributes: tuple[Attribute, ...] = field(default_factory=tuple)
    dimensions: tuple[Dimension, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("array name must be non-empty")
        if not self.attributes:
            raise SchemaError(f"array {self.name!r} needs at least one attribute")
        if not self.dimensions:
            raise SchemaError(f"array {self.name!r} needs at least one dimension")
        attr_names = [a.name for a in self.attributes]
        if len(set(attr_names)) != len(attr_names):
            raise SchemaError(f"array {self.name!r} has duplicate attribute names")
        dim_names = [d.name for d in self.dimensions]
        if len(set(dim_names)) != len(dim_names):
            raise SchemaError(f"array {self.name!r} has duplicate dimension names")
        if set(attr_names) & set(dim_names):
            raise SchemaError(
                f"array {self.name!r}: attribute and dimension names overlap"
            )

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.dimensions)

    @property
    def shape(self) -> tuple[int, ...]:
        """Cell counts along each dimension."""
        return tuple(d.length for d in self.dimensions)

    @property
    def origin(self) -> tuple[int, ...]:
        """Starting coordinate along each dimension."""
        return tuple(d.start for d in self.dimensions)

    @property
    def cell_count(self) -> int:
        """Total number of cells in the array."""
        return int(np.prod(self.shape, dtype=np.int64))

    @property
    def chunk_shape(self) -> tuple[int, ...]:
        """Chunk interval along each dimension."""
        return tuple(d.chunk for d in self.dimensions)

    @property
    def chunk_grid(self) -> tuple[int, ...]:
        """Number of chunks along each dimension."""
        return tuple(d.num_chunks for d in self.dimensions)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"array {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        """Return True if an attribute with this name exists."""
        return any(attr.name == name for attr in self.attributes)

    def dimension(self, name: str) -> Dimension:
        """Look up a dimension by name."""
        for dim in self.dimensions:
            if dim.name == name:
                return dim
        raise SchemaError(f"array {self.name!r} has no dimension {name!r}")

    def renamed(self, new_name: str) -> "ArraySchema":
        """Return a copy of this schema under a different array name."""
        return replace(self, name=new_name)

    def with_attributes(self, attributes: tuple[Attribute, ...]) -> "ArraySchema":
        """Return a copy of this schema with a different attribute list."""
        return replace(self, attributes=attributes)

    def same_grid(self, other: "ArraySchema") -> bool:
        """True if two schemas share dimension names, ranges, and chunks."""
        if self.ndim != other.ndim:
            return False
        return all(
            a.name == b.name and a.start == b.start and a.end == b.end
            for a, b in zip(self.dimensions, other.dimensions)
        )

    def __str__(self) -> str:
        attrs = ", ".join(str(a) for a in self.attributes)
        dims = ", ".join(str(d) for d in self.dimensions)
        return f"{self.name}<{attrs}>[{dims}]"
