"""User-defined function (UDF) registry.

The paper computes NDSI via a SciDB UDF (``ndsi_func``, Section 5.1.2).
This module provides the registry the ``apply`` operator resolves UDF
names against.  Functions are vectorized: they receive numpy arrays (one
per input attribute) and must return an array of the same shape.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.arraydb.errors import UnknownFunctionError

UDF = Callable[..., np.ndarray]


class FunctionRegistry:
    """Name → vectorized UDF mapping."""

    def __init__(self) -> None:
        self._functions: dict[str, UDF] = {}

    def register(self, name: str, func: UDF, overwrite: bool = False) -> None:
        """Register a UDF under ``name``.

        Re-registering an existing name raises unless ``overwrite`` is set,
        to catch accidental collisions between modules.
        """
        if name in self._functions and not overwrite:
            raise ValueError(f"function {name!r} is already registered")
        self._functions[name] = func

    def get(self, name: str) -> UDF:
        """Resolve a UDF by name."""
        try:
            return self._functions[name]
        except KeyError:
            raise UnknownFunctionError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> list[str]:
        """All registered function names, sorted."""
        return sorted(self._functions)


def _build_default_registry() -> FunctionRegistry:
    registry = FunctionRegistry()
    registry.register("identity", lambda a: np.asarray(a))
    registry.register("add", lambda a, b: np.asarray(a) + np.asarray(b))
    registry.register("sub", lambda a, b: np.asarray(a) - np.asarray(b))
    registry.register("mul", lambda a, b: np.asarray(a) * np.asarray(b))
    registry.register(
        "safe_div",
        lambda a, b: np.divide(
            a, b, out=np.zeros_like(np.asarray(a, dtype="float64")), where=b != 0
        ),
    )
    return registry


#: Process-wide default registry; ``Database`` uses it unless given another.
default_registry = _build_default_registry()
