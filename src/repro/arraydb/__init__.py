"""A SciDB-like in-process array DBMS substrate.

The ForeCache paper runs against SciDB 13.3.  This package provides the
subset of an array DBMS that ForeCache exercises:

- multidimensional arrays with named dimensions and typed attributes
  (:mod:`repro.arraydb.schema`, :mod:`repro.arraydb.array`),
- chunked storage, either in memory or on disk
  (:mod:`repro.arraydb.storage`),
- an AFL-style operator algebra — ``scan``, ``subarray``, ``regrid``,
  ``apply``, ``join``, ``store``, ``aggregate`` — sufficient to express
  Query 1 of the paper (:mod:`repro.arraydb.query`),
- a query executor with per-query cost accounting and a virtual clock,
  calibrated so that tile fetches cost what the paper measured on its
  SciDB testbed (:mod:`repro.arraydb.executor`,
  :mod:`repro.arraydb.cost`).

Example
-------
>>> from repro.arraydb import Database, ArraySchema, Dimension, Attribute
>>> from repro.arraydb import query as Q
>>> import numpy as np
>>> db = Database()
>>> schema = ArraySchema(
...     "A",
...     attributes=(Attribute("v"),),
...     dimensions=(Dimension("x", 0, 8, 4), Dimension("y", 0, 8, 4)),
... )
>>> db.create_array(schema)
>>> db.write("A", "v", np.arange(64.0).reshape(8, 8))
>>> result = db.execute(Q.regrid(Q.scan("A"), (2, 2)))
>>> result.attribute("v").shape
(4, 4)
"""

from repro.arraydb.array import ChunkedArray
from repro.arraydb.cost import CostModel, QueryStats, VirtualClock
from repro.arraydb.errors import (
    ArrayDBError,
    ArrayExistsError,
    ArrayNotFoundError,
    SchemaError,
    UnknownFunctionError,
)
from repro.arraydb.executor import ArrayResult, Database
from repro.arraydb.functions import FunctionRegistry, default_registry
from repro.arraydb.schema import ArraySchema, Attribute, Dimension
from repro.arraydb.storage import DiskChunkStore, MemoryChunkStore

__all__ = [
    "ArrayDBError",
    "ArrayExistsError",
    "ArrayNotFoundError",
    "ArrayResult",
    "ArraySchema",
    "Attribute",
    "ChunkedArray",
    "CostModel",
    "Database",
    "Dimension",
    "DiskChunkStore",
    "FunctionRegistry",
    "MemoryChunkStore",
    "QueryStats",
    "SchemaError",
    "UnknownFunctionError",
    "VirtualClock",
    "default_registry",
]
