"""Query cost model and virtual clock.

The paper's latency numbers (Section 5.5) come from a real SciDB testbed:
a cache hit answered from middleware memory took **19.5 ms** on average; a
cache miss that had to query SciDB took **984.0 ms**.  Our substrate is an
in-process simulator, so instead of wall-clock time we charge each query
against a :class:`CostModel` and advance a :class:`VirtualClock`.  The
model is calibrated such that fetching one data tile from the backend
costs the paper's measured miss latency, which makes the downstream
latency experiments (Figures 12 and 13) reproduce the paper's arithmetic
rather than the idiosyncrasies of our host machine.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


class VirtualClock:
    """A monotonically advancing simulated clock (seconds).

    Thread-safe: background prefetch workers and the request path may
    charge queries concurrently without losing advances.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._lock = threading.Lock()
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock; negative advances are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} seconds")
        with self._lock:
            self._now += seconds
            return self._now


@dataclass(frozen=True)
class CostModel:
    """Charges virtual seconds for query work.

    Parameters
    ----------
    per_query_overhead:
        Fixed cost per executed query (parsing, planning, dispatch).
    per_chunk_overhead:
        Cost per chunk fetched from storage.
    per_cell_scanned:
        Cost per cell scanned from storage.
    per_cell_computed:
        Cost per cell produced by compute operators (apply/regrid/join).
    """

    per_query_overhead: float = 0.05
    per_chunk_overhead: float = 0.002
    per_cell_scanned: float = 0.0
    per_cell_computed: float = 0.0

    @classmethod
    def calibrated(
        cls,
        tile_cells: int,
        miss_seconds: float = 0.984,
        query_overhead_fraction: float = 0.25,
    ) -> "CostModel":
        """Build a cost model where one tile fetch costs ``miss_seconds``.

        ``tile_cells`` is the total number of cells one tile fetch scans
        (tile area times attribute count — tiles are chunk-aligned, one
        chunk per attribute).  ``query_overhead_fraction`` of the budget
        is charged as fixed per-query overhead; the remainder is spread
        per scanned cell, so bigger reads genuinely cost more.  Compute
        operators charge the same per-cell rate.
        """
        if tile_cells <= 0:
            raise ValueError("tile_cells must be positive")
        if not 0.0 <= query_overhead_fraction < 1.0:
            raise ValueError("query_overhead_fraction must be in [0, 1)")
        overhead = miss_seconds * query_overhead_fraction
        variable = miss_seconds - overhead
        return cls(
            per_query_overhead=overhead,
            per_chunk_overhead=0.0,
            per_cell_scanned=variable / tile_cells,
            per_cell_computed=variable / tile_cells,
        )

    def query_cost(
        self, chunks_read: int, cells_scanned: int, cells_computed: int
    ) -> float:
        """Total virtual seconds for one query's work."""
        return (
            self.per_query_overhead
            + self.per_chunk_overhead * chunks_read
            + self.per_cell_scanned * cells_scanned
            + self.per_cell_computed * cells_computed
        )


@dataclass
class QueryStats:
    """Accumulated work counters for one query execution."""

    chunks_read: int = 0
    cells_scanned: int = 0
    cells_computed: int = 0
    elapsed_seconds: float = field(default=0.0)

    def merge_read(self, chunks_read: int, cells_scanned: int) -> None:
        """Fold one storage read into the counters."""
        self.chunks_read += chunks_read
        self.cells_scanned += cells_scanned

    def merge_compute(self, cells_computed: int) -> None:
        """Fold one compute step into the counters."""
        self.cells_computed += cells_computed
