"""Query execution against a :class:`Database`.

The executor walks the operator tree bottom-up, producing dense
intermediates, and charges every storage read and compute step to a
:class:`~repro.arraydb.cost.QueryStats` ledger.  When the database owns a
:class:`~repro.arraydb.cost.VirtualClock`, each query advances the clock
by the cost model's charge for that ledger — this is what makes backend
fetches "slow" relative to middleware cache hits in the latency
experiments.

One planner nicety is implemented: ``subarray(scan(A), bounds)`` is fused
into a single region read, so tile fetches only touch the chunks that
overlap the tile rather than scanning the whole array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arraydb import query as Q
from repro.arraydb.array import ChunkedArray
from repro.arraydb.cost import CostModel, QueryStats, VirtualClock
from repro.arraydb.errors import (
    ArrayExistsError,
    ArrayNotFoundError,
    QueryError,
    SchemaError,
)
from repro.arraydb.functions import FunctionRegistry, default_registry
from repro.arraydb.schema import ArraySchema, Attribute, Dimension
from repro.arraydb.storage import ChunkStore, MemoryChunkStore

_REDUCTIONS = {
    "avg": np.nanmean,
    "sum": np.nansum,
    "min": np.nanmin,
    "max": np.nanmax,
    "std": np.nanstd,
}


@dataclass
class _Intermediate:
    """A dense in-flight result: dimension names, origin, and attributes."""

    dim_names: tuple[str, ...]
    origin: tuple[int, ...]
    attributes: dict[str, np.ndarray]
    source: str = ""

    @property
    def shape(self) -> tuple[int, ...]:
        return next(iter(self.attributes.values())).shape

    @property
    def cell_count(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64))


@dataclass
class ArrayResult:
    """The materialized result of :meth:`Database.execute`.

    ``scalar`` is set (and ``attributes`` empty) for ``aggregate`` queries.
    """

    dim_names: tuple[str, ...]
    origin: tuple[int, ...]
    attributes: dict[str, np.ndarray]
    stats: QueryStats
    scalar: float | None = None

    @property
    def shape(self) -> tuple[int, ...]:
        if not self.attributes:
            return ()
        return next(iter(self.attributes.values())).shape

    def attribute(self, name: str) -> np.ndarray:
        """Fetch one output attribute by name."""
        try:
            return self.attributes[name]
        except KeyError:
            raise SchemaError(f"result has no attribute {name!r}") from None

    def attribute_names(self) -> list[str]:
        """Names of all output attributes, in plan order."""
        return list(self.attributes)


class Database:
    """An in-process array database: catalog + chunk store + executor."""

    def __init__(
        self,
        store: ChunkStore | None = None,
        registry: FunctionRegistry | None = None,
        cost_model: CostModel | None = None,
        clock: VirtualClock | None = None,
    ) -> None:
        self._store = store if store is not None else MemoryChunkStore()
        self.registry = registry if registry is not None else default_registry
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.clock = clock
        self._catalog: dict[str, ChunkedArray] = {}

    # ------------------------------------------------------------------
    # catalog operations
    # ------------------------------------------------------------------
    def create_array(self, schema: ArraySchema) -> ChunkedArray:
        """Register a new (empty) array under ``schema.name``."""
        if schema.name in self._catalog:
            raise ArrayExistsError(schema.name)
        array = ChunkedArray(schema, self._store)
        self._catalog[schema.name] = array
        return array

    def drop_array(self, name: str) -> None:
        """Delete an array and all its chunks."""
        array = self._catalog.pop(name, None)
        if array is None:
            raise ArrayNotFoundError(name)
        array.drop()

    def has_array(self, name: str) -> bool:
        """True if ``name`` exists in the catalog."""
        return name in self._catalog

    def array(self, name: str) -> ChunkedArray:
        """Look up a stored array."""
        try:
            return self._catalog[name]
        except KeyError:
            raise ArrayNotFoundError(name) from None

    def schema(self, name: str) -> ArraySchema:
        """Schema of a stored array."""
        return self.array(name).schema

    def array_names(self) -> list[str]:
        """All stored array names, sorted."""
        return sorted(self._catalog)

    # ------------------------------------------------------------------
    # direct (uncharged) data access — used by loaders and tests
    # ------------------------------------------------------------------
    def write(
        self, name: str, attribute: str, data: np.ndarray, region=None
    ) -> None:
        """Bulk-load data into an array without charging query cost."""
        self.array(name).write(attribute, data, region)

    def read(self, name: str, attribute: str, region=None) -> np.ndarray:
        """Read data directly without charging query cost."""
        data, _ = self.array(name).read(attribute, region)
        return data

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def execute(self, node: Q.QueryNode) -> ArrayResult:
        """Run a query plan, charge its cost, and return the result."""
        stats = QueryStats()
        if isinstance(node, Q.Aggregate):
            child = self._eval(node.child, stats)
            scalar = self._reduce(child, node, stats)
            result = ArrayResult(
                dim_names=(),
                origin=(),
                attributes={},
                stats=stats,
                scalar=scalar,
            )
        else:
            inter = self._eval(node, stats)
            result = ArrayResult(
                dim_names=inter.dim_names,
                origin=inter.origin,
                attributes=dict(inter.attributes),
                stats=stats,
            )
        cost = self.cost_model.query_cost(
            stats.chunks_read, stats.cells_scanned, stats.cells_computed
        )
        stats.elapsed_seconds = cost
        if self.clock is not None:
            self.clock.advance(cost)
        return result

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _eval(self, node: Q.QueryNode, stats: QueryStats) -> _Intermediate:
        if isinstance(node, Q.Scan):
            return self._eval_scan(node, None, stats)
        if isinstance(node, Q.Subarray):
            if isinstance(node.child, Q.Scan):
                # Pushdown: read only the requested region.
                return self._eval_scan(node.child, node.bounds, stats)
            return self._eval_subarray(node, stats)
        if isinstance(node, Q.Regrid):
            return self._eval_regrid(node, stats)
        if isinstance(node, Q.Apply):
            return self._eval_apply(node, stats)
        if isinstance(node, Q.Join):
            return self._eval_join(node, stats)
        if isinstance(node, Q.Project):
            return self._eval_project(node, stats)
        if isinstance(node, Q.Filter):
            return self._eval_filter(node, stats)
        if isinstance(node, Q.Store):
            return self._eval_store(node, stats)
        if isinstance(node, Q.Aggregate):
            raise QueryError("aggregate() must be the root of a query plan")
        raise QueryError(f"unknown query node {type(node).__name__}")

    def _eval_scan(
        self, node: Q.Scan, bounds, stats: QueryStats
    ) -> _Intermediate:
        array = self.array(node.array)
        schema = array.schema
        attributes: dict[str, np.ndarray] = {}
        for attr in schema.attributes:
            data, read_stats = array.read(attr.name, bounds)
            stats.merge_read(read_stats.chunks_read, read_stats.cells_scanned)
            attributes[attr.name] = data
        origin = (
            tuple(lo for lo, _ in bounds)
            if bounds is not None
            else schema.origin
        )
        return _Intermediate(
            dim_names=tuple(d.name for d in schema.dimensions),
            origin=origin,
            attributes=attributes,
            source=schema.name,
        )

    def _eval_subarray(self, node: Q.Subarray, stats: QueryStats) -> _Intermediate:
        child = self._eval(node.child, stats)
        if len(node.bounds) != len(child.shape):
            raise QueryError(
                f"subarray bounds have {len(node.bounds)} dimensions, "
                f"input has {len(child.shape)}"
            )
        slices = []
        for (lo, hi), o, n in zip(node.bounds, child.origin, child.shape):
            if lo < o or hi > o + n or lo >= hi:
                raise QueryError(
                    f"subarray bounds ({lo}, {hi}) outside input range "
                    f"[{o}, {o + n})"
                )
            slices.append(slice(lo - o, hi - o))
        attributes = {
            name: data[tuple(slices)] for name, data in child.attributes.items()
        }
        return _Intermediate(
            dim_names=child.dim_names,
            origin=tuple(lo for lo, _ in node.bounds),
            attributes=attributes,
            source=child.source,
        )

    def _eval_regrid(self, node: Q.Regrid, stats: QueryStats) -> _Intermediate:
        child = self._eval(node.child, stats)
        intervals = node.intervals
        if len(intervals) != len(child.shape):
            raise QueryError(
                f"regrid has {len(intervals)} intervals, input has "
                f"{len(child.shape)} dimensions"
            )
        if any(j <= 0 for j in intervals):
            raise QueryError(f"regrid intervals must be positive: {intervals}")
        attributes = {
            name: _window_aggregate(data, intervals, node.aggregate)
            for name, data in child.attributes.items()
        }
        out_cells = int(
            np.prod(next(iter(attributes.values())).shape, dtype=np.int64)
        )
        stats.merge_compute(out_cells * len(attributes))
        origin = tuple(o // j for o, j in zip(child.origin, intervals))
        return _Intermediate(
            dim_names=child.dim_names,
            origin=origin,
            attributes=attributes,
            source=child.source,
        )

    def _eval_apply(self, node: Q.Apply, stats: QueryStats) -> _Intermediate:
        child = self._eval(node.child, stats)
        if node.attribute in child.attributes:
            raise QueryError(f"apply output {node.attribute!r} already exists")
        func = self.registry.get(node.function)
        args = []
        for name in node.inputs:
            if name not in child.attributes:
                raise QueryError(f"apply input {name!r} not found in child result")
            args.append(child.attributes[name])
        out = np.asarray(func(*args), dtype=node.dtype)
        if out.shape != child.shape:
            raise QueryError(
                f"UDF {node.function!r} returned shape {out.shape}, "
                f"expected {child.shape}"
            )
        stats.merge_compute(out.size)
        attributes = dict(child.attributes)
        attributes[node.attribute] = out
        return _Intermediate(
            dim_names=child.dim_names,
            origin=child.origin,
            attributes=attributes,
            source=child.source,
        )

    def _eval_join(self, node: Q.Join, stats: QueryStats) -> _Intermediate:
        left = self._eval(node.left, stats)
        right = self._eval(node.right, stats)
        if left.shape != right.shape or left.origin != right.origin:
            raise QueryError(
                f"join inputs are not cell-aligned: "
                f"{left.origin}+{left.shape} vs {right.origin}+{right.shape}"
            )
        attributes: dict[str, np.ndarray] = {}
        collisions = set(left.attributes) & set(right.attributes)
        for side in (left, right):
            for name, data in side.attributes.items():
                key = name
                if name in collisions:
                    prefix = side.source or ("left" if side is left else "right")
                    key = f"{prefix}.{name}"
                if key in attributes:
                    raise QueryError(f"join produced duplicate attribute {key!r}")
                attributes[key] = data
        stats.merge_compute(left.cell_count)
        return _Intermediate(
            dim_names=left.dim_names,
            origin=left.origin,
            attributes=attributes,
            source="",
        )

    def _eval_project(self, node: Q.Project, stats: QueryStats) -> _Intermediate:
        child = self._eval(node.child, stats)
        missing = [a for a in node.attributes if a not in child.attributes]
        if missing:
            raise QueryError(f"project references unknown attributes {missing}")
        attributes = {name: child.attributes[name] for name in node.attributes}
        return _Intermediate(
            dim_names=child.dim_names,
            origin=child.origin,
            attributes=attributes,
            source=child.source,
        )

    def _eval_filter(self, node: Q.Filter, stats: QueryStats) -> _Intermediate:
        child = self._eval(node.child, stats)
        func = self.registry.get(node.function)
        args = [child.attributes[name] for name in node.inputs]
        mask = np.asarray(func(*args), dtype=bool)
        if mask.shape != child.shape:
            raise QueryError(
                f"filter predicate {node.function!r} returned shape "
                f"{mask.shape}, expected {child.shape}"
            )
        stats.merge_compute(mask.size)
        attributes = {
            name: np.where(mask, data, node.fill)
            for name, data in child.attributes.items()
        }
        return _Intermediate(
            dim_names=child.dim_names,
            origin=child.origin,
            attributes=attributes,
            source=child.source,
        )

    def _eval_store(self, node: Q.Store, stats: QueryStats) -> _Intermediate:
        child = self._eval(node.child, stats)
        chunks = node.chunks if node.chunks is not None else child.shape
        if len(chunks) != len(child.shape):
            raise QueryError(
                f"store chunks have {len(chunks)} dimensions, result has "
                f"{len(child.shape)}"
            )
        dims = tuple(
            Dimension(name, o, o + n, c)
            for name, o, n, c in zip(
                child.dim_names, child.origin, child.shape, chunks
            )
        )
        attrs = tuple(
            Attribute(name, str(data.dtype))
            for name, data in child.attributes.items()
        )
        schema = ArraySchema(node.name, attributes=attrs, dimensions=dims)
        array = self.create_array(schema)
        for name, data in child.attributes.items():
            array.write(name, data)
        return _Intermediate(
            dim_names=child.dim_names,
            origin=child.origin,
            attributes=dict(child.attributes),
            source=node.name,
        )

    def _reduce(
        self, child: _Intermediate, node: Q.Aggregate, stats: QueryStats
    ) -> float:
        if node.attribute not in child.attributes:
            raise QueryError(
                f"aggregate references unknown attribute {node.attribute!r}"
            )
        data = child.attributes[node.attribute]
        stats.merge_compute(data.size)
        if node.function == "count":
            return float(data.size)
        reducer = _REDUCTIONS.get(node.function)
        if reducer is None:
            raise QueryError(f"unknown aggregate function {node.function!r}")
        return float(reducer(data))


def _window_aggregate(
    data: np.ndarray, intervals: tuple[int, ...], aggregate: str
) -> np.ndarray:
    """Collapse ``j1 x j2 x ...`` windows of ``data`` into single cells.

    Edges that do not divide evenly are padded with NaN and reduced with
    the nan-aware reducer, so partial windows aggregate over the cells
    they actually contain (SciDB regrid semantics).
    """
    if aggregate == "count":
        reducer = None
    else:
        reducer = _REDUCTIONS.get(aggregate)
        if reducer is None:
            raise QueryError(f"unknown regrid aggregate {aggregate!r}")

    padded_shape = tuple(
        -(-n // j) * j for n, j in zip(data.shape, intervals)
    )
    if padded_shape != data.shape:
        padded = np.full(padded_shape, np.nan, dtype="float64")
        padded[tuple(slice(0, n) for n in data.shape)] = data
    else:
        padded = np.asarray(data, dtype="float64")

    # Reshape to (n1/j1, j1, n2/j2, j2, ...) and reduce the window axes.
    new_shape: list[int] = []
    for n, j in zip(padded.shape, intervals):
        new_shape.extend([n // j, j])
    blocked = padded.reshape(new_shape)
    window_axes = tuple(range(1, 2 * len(intervals), 2))
    if aggregate == "count":
        return np.sum(~np.isnan(blocked), axis=window_axes).astype("float64")
    with np.errstate(invalid="ignore"):
        return np.asarray(reducer(blocked, axis=window_axes), dtype="float64")
