"""AFL-style operator algebra.

Query plans are immutable trees of operator nodes.  The paper's Query 1::

    store(
      apply(
        join(S_VIS, S_SWIR),
        ndsi,
        ndsi_func(S_VIS.reflectance, S_SWIR.reflectance)
      ),
      NDSI
    );

is expressed here as::

    store(
        apply(
            join(scan("S_VIS"), scan("S_SWIR")),
            "ndsi",
            "ndsi_func",
            ("S_VIS.reflectance", "S_SWIR.reflectance"),
        ),
        "NDSI",
    )

Lower-case factory functions build the node dataclasses, mirroring AFL's
functional syntax.
"""

from __future__ import annotations

from dataclasses import dataclass, field

Region = tuple[tuple[int, int], ...]


class QueryNode:
    """Base class for all operator nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Scan(QueryNode):
    """Read a stored array."""

    array: str


@dataclass(frozen=True)
class Subarray(QueryNode):
    """Select a rectangular region (bounds are ``[lo, hi)`` per dimension)."""

    child: QueryNode
    bounds: Region


@dataclass(frozen=True)
class Regrid(QueryNode):
    """Aggregate fixed-size windows into single cells (Figure 3).

    ``intervals`` holds the aggregation parameter ``j`` per dimension;
    every ``j_1 x j_2 x ...`` window collapses to one output cell using
    ``aggregate`` (one of avg/sum/min/max/count).
    """

    child: QueryNode
    intervals: tuple[int, ...]
    aggregate: str = "avg"


@dataclass(frozen=True)
class Apply(QueryNode):
    """Compute a new attribute by applying a registered UDF per cell."""

    child: QueryNode
    attribute: str
    function: str
    inputs: tuple[str, ...]
    dtype: str = "float64"


@dataclass(frozen=True)
class Join(QueryNode):
    """Equi-join two arrays on their (identical) dimension grids.

    Attribute-name collisions are resolved by qualifying each colliding
    attribute with its source array name (``S_VIS.reflectance``), matching
    how the paper's query references join outputs.
    """

    left: QueryNode
    right: QueryNode


@dataclass(frozen=True)
class Project(QueryNode):
    """Keep only the named attributes."""

    child: QueryNode
    attributes: tuple[str, ...]


@dataclass(frozen=True)
class Filter(QueryNode):
    """Zero out cells where a boolean UDF over ``inputs`` is false.

    Dense arrays have no notion of absent cells, so filtered-out cells are
    written as ``fill`` (default 0), the same convention SciDB's sparse
    output takes when densified.
    """

    child: QueryNode
    function: str
    inputs: tuple[str, ...]
    fill: float = 0.0


@dataclass(frozen=True)
class Aggregate(QueryNode):
    """Reduce one attribute to a scalar (avg/sum/min/max/count/std)."""

    child: QueryNode
    function: str
    attribute: str


@dataclass(frozen=True)
class Store(QueryNode):
    """Materialize the child's result as a new stored array."""

    child: QueryNode
    name: str
    chunks: tuple[int, ...] | None = field(default=None)


# ----------------------------------------------------------------------
# AFL-style factory functions
# ----------------------------------------------------------------------
def scan(array: str) -> Scan:
    """``scan(A)`` — read stored array ``A``."""
    return Scan(array)


def subarray(child: QueryNode, bounds: Region) -> Subarray:
    """``subarray(Q, bounds)`` — rectangular window of ``Q``."""
    return Subarray(child, tuple(tuple(b) for b in bounds))


def regrid(
    child: QueryNode, intervals: tuple[int, ...], aggregate: str = "avg"
) -> Regrid:
    """``regrid(Q, (j1, j2), avg)`` — window aggregation."""
    return Regrid(child, tuple(int(j) for j in intervals), aggregate)


def apply(
    child: QueryNode,
    attribute: str,
    function: str,
    inputs: tuple[str, ...],
    dtype: str = "float64",
) -> Apply:
    """``apply(Q, name, f, inputs)`` — add computed attribute ``name``."""
    return Apply(child, attribute, function, tuple(inputs), dtype)


def join(left: QueryNode, right: QueryNode) -> Join:
    """``join(A, B)`` — cell-aligned equi-join on dimensions."""
    return Join(left, right)


def project(child: QueryNode, attributes: tuple[str, ...]) -> Project:
    """``project(Q, attrs)`` — keep only ``attrs``."""
    return Project(child, tuple(attributes))


def filter_(
    child: QueryNode, function: str, inputs: tuple[str, ...], fill: float = 0.0
) -> Filter:
    """``filter(Q, pred, inputs)`` — zero out non-matching cells."""
    return Filter(child, function, tuple(inputs), fill)


def aggregate(child: QueryNode, function: str, attribute: str) -> Aggregate:
    """``aggregate(Q, f, attr)`` — scalar reduction."""
    return Aggregate(child, function, attribute)


def store(
    child: QueryNode, name: str, chunks: tuple[int, ...] | None = None
) -> Store:
    """``store(Q, name)`` — materialize ``Q`` as array ``name``."""
    return Store(child, name, None if chunks is None else tuple(chunks))
