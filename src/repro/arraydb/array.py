"""Chunked multidimensional arrays backed by a :class:`ChunkStore`.

A :class:`ChunkedArray` binds an :class:`~repro.arraydb.schema.ArraySchema`
to a chunk store and provides region reads/writes in *array coordinates*
(which need not start at zero).  Reads assemble the covering chunks and
report how many chunks and cells were touched, which feeds the executor's
cost accounting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.arraydb.schema import ArraySchema
from repro.arraydb.storage import ChunkStore

Region = tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class ReadStats:
    """I/O accounting for a single region read."""

    chunks_read: int
    cells_scanned: int


def full_region(schema: ArraySchema) -> Region:
    """The region covering the whole array."""
    return tuple((d.start, d.end) for d in schema.dimensions)


def region_shape(region: Region) -> tuple[int, ...]:
    """Cell counts of a region along each dimension."""
    return tuple(hi - lo for lo, hi in region)


def region_cells(region: Region) -> int:
    """Total number of cells in a region."""
    return int(np.prod(region_shape(region), dtype=np.int64))


class ChunkedArray:
    """A dense array stored as fixed-size chunks.

    Missing chunks read back as the schema attribute's fill value (zero),
    matching the behaviour of an empty SciDB array.
    """

    def __init__(self, schema: ArraySchema, store: ChunkStore) -> None:
        self.schema = schema
        self._store = store

    # ------------------------------------------------------------------
    # region validation / geometry
    # ------------------------------------------------------------------
    def _check_region(self, region: Region) -> None:
        if len(region) != self.schema.ndim:
            raise ValueError(
                f"region has {len(region)} dimensions, array "
                f"{self.schema.name!r} has {self.schema.ndim}"
            )
        for (lo, hi), dim in zip(region, self.schema.dimensions):
            if lo >= hi:
                raise ValueError(f"empty region bounds ({lo}, {hi}) on {dim.name!r}")
            if lo < dim.start or hi > dim.end:
                raise ValueError(
                    f"region ({lo}, {hi}) outside dimension {dim.name!r} "
                    f"range [{dim.start}, {dim.end})"
                )

    def _covering_chunks(self, region: Region) -> list[tuple[int, ...]]:
        """Chunk coordinate tuples overlapping ``region``."""
        per_dim: list[range] = []
        for (lo, hi), dim in zip(region, self.schema.dimensions):
            first = dim.chunk_of(lo)
            last = dim.chunk_of(hi - 1)
            per_dim.append(range(first, last + 1))
        return [tuple(coords) for coords in itertools.product(*per_dim)]

    # ------------------------------------------------------------------
    # reads and writes
    # ------------------------------------------------------------------
    def read(
        self, attribute: str, region: Region | None = None
    ) -> tuple[np.ndarray, ReadStats]:
        """Read a rectangular region of one attribute.

        Returns the dense region array and the I/O stats for the read.
        """
        attr = self.schema.attribute(attribute)
        if region is None:
            region = full_region(self.schema)
        self._check_region(region)

        out = np.zeros(region_shape(region), dtype=attr.numpy_dtype)
        chunks_read = 0
        cells_scanned = 0
        for coords in self._covering_chunks(region):
            key = (self.schema.name, attribute, coords)
            if key not in self._store:
                continue
            chunk = self._store.get(key)
            chunks_read += 1
            cells_scanned += chunk.size
            bounds = [
                dim.chunk_bounds(c) for dim, c in zip(self.schema.dimensions, coords)
            ]
            # Overlap of chunk bounds with the requested region, then the
            # corresponding slices into the output and chunk arrays.
            out_slices = []
            chunk_slices = []
            for (c_lo, c_hi), (r_lo, r_hi) in zip(bounds, region):
                lo = max(c_lo, r_lo)
                hi = min(c_hi, r_hi)
                out_slices.append(slice(lo - r_lo, hi - r_lo))
                chunk_slices.append(slice(lo - c_lo, hi - c_lo))
            out[tuple(out_slices)] = chunk[tuple(chunk_slices)]
        return out, ReadStats(chunks_read=chunks_read, cells_scanned=cells_scanned)

    def write(
        self, attribute: str, data: np.ndarray, region: Region | None = None
    ) -> None:
        """Write a dense block of one attribute into a region.

        Partially-covered chunks are read-modified-written; untouched cells
        of such chunks retain their previous values (or zero).
        """
        attr = self.schema.attribute(attribute)
        if region is None:
            region = full_region(self.schema)
        self._check_region(region)
        data = np.asarray(data, dtype=attr.numpy_dtype)
        if data.shape != region_shape(region):
            raise ValueError(
                f"data shape {data.shape} does not match region shape "
                f"{region_shape(region)}"
            )

        for coords in self._covering_chunks(region):
            key = (self.schema.name, attribute, coords)
            bounds = [
                dim.chunk_bounds(c) for dim, c in zip(self.schema.dimensions, coords)
            ]
            chunk_shape = tuple(hi - lo for lo, hi in bounds)
            if key in self._store:
                chunk = np.array(self._store.get(key), dtype=attr.numpy_dtype)
            else:
                chunk = np.zeros(chunk_shape, dtype=attr.numpy_dtype)
            data_slices = []
            chunk_slices = []
            for (c_lo, c_hi), (r_lo, r_hi) in zip(bounds, region):
                lo = max(c_lo, r_lo)
                hi = min(c_hi, r_hi)
                data_slices.append(slice(lo - r_lo, hi - r_lo))
                chunk_slices.append(slice(lo - c_lo, hi - c_lo))
            chunk[tuple(chunk_slices)] = data[tuple(data_slices)]
            self._store.put(key, chunk)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stored_chunks(self, attribute: str) -> int:
        """Number of chunks physically present for one attribute."""
        return sum(
            1
            for key in self._store.keys()
            if key[0] == self.schema.name and key[1] == attribute
        )

    def drop(self) -> None:
        """Delete every chunk belonging to this array."""
        for key in list(self._store.keys()):
            if key[0] == self.schema.name:
                self._store.delete(key)
