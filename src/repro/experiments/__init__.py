"""The evaluation harness (Section 5).

Everything needed to regenerate the paper's tables and figures:

- :mod:`repro.experiments.context` — shared experiment setup (dataset,
  study traces, signature provider, model factories),
- :mod:`repro.experiments.accuracy` — trace-replay accuracy measurement,
- :mod:`repro.experiments.crossval` — leave-one-user-out evaluation,
- :mod:`repro.experiments.latency` — latency replay and the
  accuracy↔latency regression,
- :mod:`repro.experiments.report` — table formatting and paper-vs-
  measured comparison rows,
- :mod:`repro.experiments.runner` — a CLI entry point
  (``python -m repro.experiments.runner --experiment fig11``).
"""

from repro.experiments.accuracy import AccuracyResult, replay_engine
from repro.experiments.context import ExperimentContext
from repro.experiments.crossval import evaluate_engine_cv, leave_one_user_out
from repro.experiments.latency import LatencyPoint, linear_fit, replay_latency
from repro.experiments.report import Table

__all__ = [
    "AccuracyResult",
    "ExperimentContext",
    "LatencyPoint",
    "Table",
    "evaluate_engine_cv",
    "leave_one_user_out",
    "linear_fit",
    "replay_engine",
    "replay_latency",
]
