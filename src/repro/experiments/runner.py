"""Experiment runner: regenerate every table and figure of Section 5.

Each ``run_*`` function returns printable report objects; the CLI prints
them::

    python -m repro.experiments.runner --experiment fig11
    python -m repro.experiments.runner --experiment all --size 1024 --users 8

The benchmark suite under ``benchmarks/`` calls the same functions, so
``pytest benchmarks/ --benchmark-only`` and the CLI agree by
construction.
"""

from __future__ import annotations

import argparse
from collections import Counter

import numpy as np

from repro.core.allocation import PaperFinalStrategy, SingleModelStrategy
from repro.experiments.accuracy import AccuracyResult, DEFAULT_KS
from repro.experiments.context import SIGNATURE_NAMES, ExperimentContext
from repro.experiments.crossval import (
    classifier_cv_accuracy,
    evaluate_engine_cv,
    leave_one_user_out,
)
from repro.experiments.latency import (
    LatencyPoint,
    improvement_percent,
    linear_fit,
    replay_latency,
)
from repro.experiments.report import Comparison, Table
from repro.middleware.latency import MISS_SECONDS
from repro.middleware.server import ForeCacheServer
from repro.phases.features import FEATURE_NAMES
from repro.phases.labeler import model_fit_fraction
from repro.phases.model import ALL_PHASES, AnalysisPhase

#: The signature the tuned hybrid engine uses — SIFT, as in the paper:
#: it measures best overall among the four signatures on our study too.
HYBRID_SIGNATURE = "sift"


def hybrid_factory(context: ExperimentContext):
    """Engine factory for the tuned two-level engine.

    Tuned per the paper's own procedure (Section 5.4.3 updates the
    allocations "based on our observed accuracy results"): on our study
    the AB model also wins Sensemaking, so no phase hands the whole
    budget to SB — AB fills the first four slots everywhere and SB tops
    up beyond k=4 (``sb_only_phase=None``).
    """

    def factory(train):
        return context.hybrid_engine(
            train,
            sb_signature=HYBRID_SIGNATURE,
            strategy=PaperFinalStrategy(
                ab_model="markov3",
                sb_model=f"sb:{HYBRID_SIGNATURE}",
                sb_only_phase=None,
            ),
        )

    return factory


def _series_table(
    title: str,
    results: dict[str, AccuracyResult],
    phase: AnalysisPhase | None,
    ks=DEFAULT_KS,
) -> Table:
    """One accuracy-vs-k table (one plotted line per model)."""
    suffix = f" — {phase.value}" if phase is not None else " — overall"
    table = Table(["model"] + [f"k={k}" for k in ks], title=title + suffix)
    for name, result in results.items():
        table.add_row(name, *(result.accuracy(k, phase) for k in ks))
    return table


# ----------------------------------------------------------------------
# Table 1 and Section 5.4.1
# ----------------------------------------------------------------------
def run_table1(context: ExperimentContext) -> tuple[Table, Comparison]:
    """Per-feature SVM phase-classification accuracy (Table 1)."""
    paper = {
        "x_position": 0.676,
        "y_position": 0.692,
        "zoom_level": 0.696,
        "pan_flag": 0.580,
        "zoom_in_flag": 0.556,
        "zoom_out_flag": 0.448,
    }
    table = Table(["feature", "accuracy"], title="Table 1: per-feature accuracy")
    comparison = Comparison("Table 1 — single-feature SVM accuracy (LOO-CV)")
    for index, name in enumerate(FEATURE_NAMES):
        accuracy, _ = classifier_cv_accuracy(context.study, feature_indices=[index])
        table.add_row(name, accuracy)
        comparison.add(name, paper[name], accuracy)
    return table, comparison


def run_phase_classifier(context: ExperimentContext) -> Comparison:
    """Full-feature classifier accuracy (Section 5.4.1: 82%)."""
    accuracy, per_user = classifier_cv_accuracy(context.study)
    comparison = Comparison("Section 5.4.1 — phase classifier (LOO-CV)")
    comparison.add("overall accuracy", 0.82, accuracy)
    comparison.add("best user accuracy", ">= 0.90", max(per_user.values()))
    return comparison


# ----------------------------------------------------------------------
# Figure 8: move and phase distributions
# ----------------------------------------------------------------------
def run_figure8(context: ExperimentContext) -> list[Table]:
    """Move (8a) and phase (8b) distributions per task; per-user mixes (8c-e)."""
    tables = []
    move_table = Table(
        ["task", "pan", "zoom_in", "zoom_out", "avg_requests"],
        title="Figure 8a: move distribution per task",
    )
    phase_table = Table(
        ["task", "foraging", "navigation", "sensemaking"],
        title="Figure 8b: phase distribution per task",
    )
    for task_id in context.study.task_ids:
        traces = context.study.by_task(task_id)
        moves = Counter(
            r.move.category.value
            for t in traces
            for r in t.requests
            if r.move is not None
        )
        total_moves = sum(moves.values()) or 1
        phases = Counter(r.phase.value for t in traces for r in t.requests)
        total_phases = sum(phases.values()) or 1
        avg_len = float(np.mean([len(t) for t in traces]))
        move_table.add_row(
            task_id,
            moves.get("pan", 0) / total_moves,
            moves.get("zoom_in", 0) / total_moves,
            moves.get("zoom_out", 0) / total_moves,
            avg_len,
        )
        phase_table.add_row(
            task_id,
            phases.get("foraging", 0) / total_phases,
            phases.get("navigation", 0) / total_phases,
            phases.get("sensemaking", 0) / total_phases,
        )
    tables.extend([move_table, phase_table])

    user_table = Table(
        ["task", "user", "pan", "zoom_in", "zoom_out"],
        title="Figure 8c-e: per-user move mix",
    )
    for task_id in context.study.task_ids:
        for trace in context.study.by_task(task_id):
            moves = Counter(
                r.move.category.value for r in trace.requests if r.move is not None
            )
            total = sum(moves.values()) or 1
            user_table.add_row(
                task_id,
                trace.user_id,
                moves.get("pan", 0) / total,
                moves.get("zoom_in", 0) / total,
                moves.get("zoom_out", 0) / total,
            )
    tables.append(user_table)
    return tables


# ----------------------------------------------------------------------
# Figure 9: the zoom-level sawtooth
# ----------------------------------------------------------------------
def run_figure9(context: ExperimentContext) -> tuple[Table, Comparison]:
    """Zoom level per request for user 2 / task 2, plus model-fit stats."""
    trace = next(
        t
        for t in context.study.traces
        if t.user_id == 2 and t.task_id == 2
    )
    table = Table(
        ["request", "zoom_level", "move"],
        title="Figure 9: zoom level per request (user 2, task 2)",
    )
    for request in trace.requests:
        table.add_row(
            request.index,
            request.tile.level,
            request.move.value if request.move else "start",
        )

    # Section 5.3.5's fit statistics: how many users show the
    # forage-deep-return sawtooth, and how many requests fit the model.
    num_levels = context.dataset.num_levels
    sawtooth_users = 0
    for user_id in context.study.user_ids:
        sawtooth_tasks = sum(
            1 for t in context.study.by_user(user_id) if _is_sawtooth(t, num_levels)
        )
        if sawtooth_tasks >= 2:
            sawtooth_users += 1
    total_requests = context.study.total_requests()
    fitting = sum(
        model_fit_fraction(t, num_levels) * len(t) for t in context.study.traces
    )

    comparison = Comparison("Section 5.3.5 — analysis-model fit")
    comparison.add(
        "users with sawtooth pattern (2+ tasks)",
        "16/18",
        f"{sawtooth_users}/{len(context.study.user_ids)}",
    )
    comparison.add(
        "requests fitting the three-phase model",
        f"{1390 - 57}/1390",
        f"{fitting:.0f}/{total_requests}",
    )
    return table, comparison


def _is_sawtooth(trace, num_levels: int) -> bool:
    """Did the user alternate between coarse and detailed strata?"""
    levels = [r.tile.level for r in trace.requests]
    deep = max(1, 2 * (num_levels - 1) // 3)
    descents = 0
    was_coarse = True
    for level in levels:
        if was_coarse and level >= deep:
            descents += 1
            was_coarse = False
        elif not was_coarse and level < deep:
            was_coarse = True
    return descents >= 2


# ----------------------------------------------------------------------
# Figure 10: individual models
# ----------------------------------------------------------------------
def run_figure10a(context: ExperimentContext, ks=DEFAULT_KS) -> list[Table]:
    """AB (Markov3) vs Momentum vs Hotspot, per phase (Figure 10a)."""
    results = {
        "markov3": evaluate_engine_cv(
            context.study, lambda tr: context.markov_engine(tr, 3), ks
        ),
        "momentum": evaluate_engine_cv(context.study, context.momentum_engine, ks),
        "hotspot": evaluate_engine_cv(context.study, context.hotspot_engine, ks),
    }
    tables = [
        _series_table("Figure 10a: AB vs existing", results, phase, ks)
        for phase in list(ALL_PHASES) + [None]
    ]
    return tables


def run_figure10b(context: ExperimentContext, ks=DEFAULT_KS) -> list[Table]:
    """The four SB signatures, per phase (Figure 10b)."""
    results = {
        f"sb:{name}": evaluate_engine_cv(
            context.study, lambda tr, s=name: context.sb_engine(s), ks
        )
        for name in SIGNATURE_NAMES
    }
    return [
        _series_table("Figure 10b: SB signatures", results, phase, ks)
        for phase in list(ALL_PHASES) + [None]
    ]


def run_figure10c(context: ExperimentContext, ks=DEFAULT_KS) -> list[Table]:
    """Hybrid vs its best individual components (Figure 10c)."""
    results = {
        "hybrid": evaluate_engine_cv(context.study, hybrid_factory(context), ks),
        "markov3": evaluate_engine_cv(
            context.study, lambda tr: context.markov_engine(tr, 3), ks
        ),
        f"sb:{HYBRID_SIGNATURE}": evaluate_engine_cv(
            context.study, lambda tr: context.sb_engine(HYBRID_SIGNATURE), ks
        ),
    }
    return [
        _series_table("Figure 10c: hybrid vs components", results, phase, ks)
        for phase in list(ALL_PHASES) + [None]
    ]


# ----------------------------------------------------------------------
# Figure 11: hybrid vs existing techniques
# ----------------------------------------------------------------------
def run_figure11(
    context: ExperimentContext, ks=DEFAULT_KS
) -> tuple[list[Table], Comparison]:
    """Hybrid vs Momentum/Hotspot per phase, plus headline gaps."""
    results = {
        "hybrid": evaluate_engine_cv(context.study, hybrid_factory(context), ks),
        "momentum": evaluate_engine_cv(context.study, context.momentum_engine, ks),
        "hotspot": evaluate_engine_cv(context.study, context.hotspot_engine, ks),
    }
    tables = [
        _series_table("Figure 11: hybrid vs existing", results, phase, ks)
        for phase in list(ALL_PHASES) + [None]
    ]
    comparison = Comparison("Figure 11 — headline gaps at k=5")
    nav_gap = results["hybrid"].accuracy(5, AnalysisPhase.NAVIGATION) - max(
        results["momentum"].accuracy(5, AnalysisPhase.NAVIGATION),
        results["hotspot"].accuracy(5, AnalysisPhase.NAVIGATION),
    )
    sense_gap = results["hybrid"].accuracy(5, AnalysisPhase.SENSEMAKING) - max(
        results["momentum"].accuracy(5, AnalysisPhase.SENSEMAKING),
        results["hotspot"].accuracy(5, AnalysisPhase.SENSEMAKING),
    )
    comparison.add("navigation accuracy gap", "up to +0.25", nav_gap)
    comparison.add("sensemaking accuracy gap", "+0.10 to +0.18", sense_gap)
    comparison.add(
        "hybrid overall accuracy at k=5", 0.82, results["hybrid"].accuracy(5)
    )
    return tables, comparison


# ----------------------------------------------------------------------
# Figures 12 and 13: latency
# ----------------------------------------------------------------------
def latency_points(
    context: ExperimentContext, ks=DEFAULT_KS
) -> tuple[list[LatencyPoint], dict[str, AccuracyResult]]:
    """Replay every model at every fetch size through the middleware."""
    factories = {
        "momentum": context.momentum_engine,
        "hotspot": context.hotspot_engine,
        "markov3": lambda tr: context.markov_engine(tr, 3),
        "hybrid": hybrid_factory(context),
    }
    accuracy = {
        name: evaluate_engine_cv(context.study, factory, ks)
        for name, factory in factories.items()
    }
    points: list[LatencyPoint] = []
    for name, factory in factories.items():
        for k in ks:
            recorder = replay_model_latency(context, factory, k)
            points.append(
                LatencyPoint(
                    model=name,
                    k=k,
                    accuracy=accuracy[name].accuracy(k),
                    average_latency_seconds=recorder.average_seconds,
                )
            )
    return points, accuracy


#: Serving front ends the latency replay can drive.  All of them produce
#: identical virtual-time numbers (the facade is the single code path;
#: the socket front end replays over a real loopback TCP connection and
#: only adds physical transport time, never virtual latency; "cluster"
#: puts the consistent-hash router between client and a single worker,
#: which must change nothing); "server" is the default so the figure
#: benchmarks are untouched.
REPLAY_FRONTENDS = ("server", "service", "async", "socket", "cluster")


def replay_model_latency(
    context: ExperimentContext,
    factory,
    k: int,
    frontend: str = "server",
    prefetch_mode: str = "sync",
    shared_hotspots: str = "off",
):
    """LOO latency replay for one model and fetch size.

    The cache is configured as in Section 5.2.2's equivalence ("measuring
    prediction accuracy becomes equivalent to measuring the hit rate of
    our tile cache"): only the k-tile prefetch region is active, so
    latency is a pure function of prediction accuracy (Figure 12's
    near-perfect line).

    ``frontend`` selects who serves the replay: the legacy
    ``ForeCacheServer`` ("server"), the ``ForeCacheService`` facade
    ("service"), the asyncio front end ("async"), the TCP socket
    transport over loopback ("socket" — real framed bytes on a real
    port; latency stays virtual, so the numbers still match), or a
    1-worker cluster behind the consistent-hash router ("cluster" —
    the router terminates the handshake and forwards every frame, so
    the numbers must again be bit-identical).

    ``prefetch_mode="sync"`` (the default, what every figure benchmark
    uses) keeps the deterministic virtual-time numbers.
    ``"background"`` routes every prefetch round through the priority
    scheduler's worker pool instead — numbers then depend on physical
    timing (a smoke path, exercised by CI, not a figure
    reproduction).

    ``shared_hotspots`` threads the cross-session popularity knob
    through whichever front end serves the replay.  ``"off"`` (the
    default) and ``"observe"`` leave every figure number bit-identical;
    ``"boost"`` lets live hotspot recommenders and the background
    scheduler act on the shared signal (a smoke path, not a figure
    reproduction — each trace replays against a cold service, so its
    registry only ever sees that trace).
    """
    from repro.middleware.latency import LatencyRecorder

    if frontend not in REPLAY_FRONTENDS:
        raise ValueError(
            f"frontend must be one of {REPLAY_FRONTENDS}, got {frontend!r}"
        )
    if frontend == "async":
        return _replay_async_frontend(
            context, factory, k, prefetch_mode, shared_hotspots
        )
    if frontend == "socket":
        return _replay_socket_frontend(
            context, factory, k, prefetch_mode, shared_hotspots
        )
    if frontend == "cluster":
        return _replay_cluster_frontend(
            context, factory, k, prefetch_mode, shared_hotspots
        )
    recorder = LatencyRecorder()
    for _, train, test in leave_one_user_out(context.study):
        engine = factory(train)
        if frontend == "server":

            def server_factory(engine=engine):
                engine.reset()
                return _figure12_server(
                    context, engine, k, prefetch_mode, shared_hotspots
                )

            recorder.merge(replay_latency(server_factory, test))
        else:
            for trace in test:
                recorder.merge(
                    _replay_service_trace(
                        context, engine, trace, k, prefetch_mode,
                        shared_hotspots,
                    )
                )
    return recorder


def _figure12_config(
    k: int, prefetch_mode: str = "sync", shared_hotspots: str = "off"
):
    """Section 5.2.2 cache shape: the k-tile prefetch region only."""
    from repro.middleware.config import (
        CacheConfig,
        PrefetchPolicy,
        ServiceConfig,
    )

    return ServiceConfig(
        prefetch=PrefetchPolicy(
            k=k, mode=prefetch_mode, shared_hotspots=shared_hotspots
        ),
        cache=CacheConfig(recent_capacity=1, prefetch_capacity=k),
    )


def _figure12_server(
    context,
    engine,
    k: int,
    prefetch_mode: str = "sync",
    shared_hotspots: str = "off",
) -> ForeCacheServer:
    """A cold legacy server in the Section 5.2.2 cache shape."""
    from repro.cache.manager import CacheManager
    from repro.cache.tile_cache import TileCache

    cache = TileCache(recent_capacity=1, prefetch_capacity=k)
    return ForeCacheServer(
        context.pyramid,
        engine,
        cache_manager=CacheManager(context.pyramid, cache),
        prefetch_k=k,
        prefetch_mode=prefetch_mode,
        shared_hotspots=shared_hotspots,
    )


def _replay_service_trace(
    context,
    engine,
    trace,
    k: int,
    prefetch_mode: str,
    shared_hotspots: str = "off",
):
    """One trace through a cold facade session (sync front end)."""
    from repro.middleware.client import BrowsingSession
    from repro.middleware.service import ForeCacheService

    engine.reset()
    with ForeCacheService(
        context.pyramid, _figure12_config(k, prefetch_mode, shared_hotspots)
    ) as service:
        handle = service.open_session(engine)
        BrowsingSession(handle).replay(trace)
        return handle.recorder


def _replay_async_frontend(
    context,
    factory,
    k: int,
    prefetch_mode: str = "sync",
    shared_hotspots: str = "off",
):
    """The whole LOO replay on one event loop.

    Only the *service* (cache + session) must be cold per trace, so the
    loop is hoisted out of the per-trace churn; each trace gets a
    single-thread bridge (the replay is sequential).
    """
    import asyncio

    from repro.middleware.aio import AsyncForeCacheService
    from repro.middleware.client import AsyncBrowsingSession
    from repro.middleware.latency import LatencyRecorder

    async def replay_all():
        recorder = LatencyRecorder()
        for _, train, test in leave_one_user_out(context.study):
            engine = factory(train)
            for trace in test:
                engine.reset()
                async with AsyncForeCacheService.build(
                    context.pyramid,
                    _figure12_config(k, prefetch_mode, shared_hotspots),
                    max_workers=1,
                ) as service:
                    session = await service.open_session(engine)
                    await AsyncBrowsingSession(session).replay(trace)
                    recorder.merge(session.recorder)
        return recorder

    return asyncio.run(replay_all())


def _replay_socket_frontend(
    context,
    factory,
    k: int,
    prefetch_mode: str = "sync",
    shared_hotspots: str = "off",
):
    """The whole LOO replay over real loopback TCP.

    Each trace still gets a cold service (cache and session state), so a
    fresh socket server wraps each trace's service; the engine is built
    once per fold and reset per trace, exactly like the other front
    ends.  Latencies are reconstructed *client-side* from the wire
    responses — what a real browser would report — which must equal the
    server-side recorder to the bit.
    """
    from repro.middleware.client import BrowsingSession
    from repro.middleware.latency import LatencyRecorder
    from repro.middleware.net import SocketTransport, ThreadedSocketServer

    recorder = LatencyRecorder()
    for _, train, test in leave_one_user_out(context.study):
        engine = factory(train)
        for trace in test:
            engine.reset()
            with ThreadedSocketServer(
                context.pyramid,
                _figure12_config(k, prefetch_mode, shared_hotspots),
                engine_factory=lambda: engine,
                # The replay is sequential; don't spawn (and join) a full
                # 8-thread bridge pool per trace.
                max_workers=1,
            ) as server:
                with SocketTransport(
                    *server.address, pyramid=context.pyramid
                ) as transport:
                    conn = transport.connect()
                    responses = BrowsingSession(conn).replay(trace)
                    conn.close()
            for response in responses:
                recorder.record(response.latency_seconds, response.hit)
    return recorder


def _replay_cluster_frontend(
    context,
    factory,
    k: int,
    prefetch_mode: str = "sync",
    shared_hotspots: str = "off",
):
    """The whole LOO replay through a 1-worker cluster.

    Same cold-service-per-trace discipline as the socket front end,
    with the consistent-hash router in the path: client connects to the
    router, the router owns the handshake and forwards every request to
    the single worker.  Client-side reconstruction must still equal the
    pinned figure numbers to the bit — the router adds transport hops,
    never virtual latency.
    """
    from repro.middleware.client import BrowsingSession
    from repro.middleware.cluster import ThreadedClusterServer
    from repro.middleware.latency import LatencyRecorder
    from repro.middleware.net import SocketTransport

    recorder = LatencyRecorder()
    for _, train, test in leave_one_user_out(context.study):
        engine = factory(train)
        for trace in test:
            engine.reset()
            with ThreadedClusterServer(
                context.pyramid,
                _figure12_config(k, prefetch_mode, shared_hotspots),
                workers=1,
                engine_factory=lambda: engine,
                max_workers=1,
            ) as cluster:
                with SocketTransport(
                    *cluster.address, pyramid=context.pyramid
                ) as transport:
                    conn = transport.connect()
                    responses = BrowsingSession(conn).replay(trace)
                    conn.close()
            for response in responses:
                recorder.record(response.latency_seconds, response.hit)
    return recorder


def run_figure12(
    context: ExperimentContext, ks=DEFAULT_KS
) -> tuple[Table, Comparison]:
    """Latency-vs-accuracy regression (Figure 12)."""
    points, _ = latency_points(context, ks)
    table = Table(
        ["model", "k", "accuracy", "avg_latency_ms"],
        title="Figure 12: latency vs accuracy (all models, all fetch sizes)",
    )
    for point in points:
        table.add_row(point.model, point.k, point.accuracy, point.average_latency_ms)
    slope, intercept, r2 = linear_fit(points)
    comparison = Comparison("Figure 12 — linear regression latency(ms) ~ accuracy")
    comparison.add("intercept (ms)", 961.33, intercept)
    comparison.add("slope (ms per accuracy)", -939.08, slope)
    comparison.add("adjusted R^2", 0.99985, r2)
    return table, comparison


def run_figure13(
    context: ExperimentContext, ks=DEFAULT_KS
) -> tuple[Table, Comparison]:
    """Average response times per model and fetch size (Figure 13)."""
    points, _ = latency_points(context, ks)
    by_model: dict[str, dict[int, float]] = {}
    for point in points:
        by_model.setdefault(point.model, {})[point.k] = point.average_latency_ms

    table = Table(
        ["model"] + [f"k={k}" for k in ks],
        title="Figure 13: average response time (ms)",
    )
    for model, series in by_model.items():
        table.add_row(model, *(series[k] for k in ks))

    hybrid_at_5 = by_model["hybrid"][5]
    momentum_at_5 = by_model["momentum"][5]
    hotspot_at_5 = by_model["hotspot"][5]
    no_prefetch_ms = MISS_SECONDS * 1000.0
    comparison = Comparison("Figure 13 / Section 5.5 — headline latencies (k=5)")
    comparison.add("hybrid avg latency (ms)", 185.0, hybrid_at_5)
    comparison.add("momentum avg latency (ms)", 349.0, momentum_at_5)
    comparison.add("hotspot avg latency (ms)", 360.0, hotspot_at_5)
    comparison.add(
        "improvement vs no prefetching (%)",
        430.0,
        improvement_percent(no_prefetch_ms, hybrid_at_5),
    )
    comparison.add(
        "improvement vs momentum (%)",
        88.0,
        improvement_percent(momentum_at_5, hybrid_at_5),
    )
    return table, comparison


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------
def run_history_ablation(
    context: ExperimentContext, orders=(2, 3, 4, 5, 6, 8, 10), ks=(1, 2, 4)
) -> Table:
    """Markov history length sweep (Section 5.4.2: n=3 suffices)."""
    table = Table(
        ["order"] + [f"k={k}" for k in ks],
        title="Ablation: Markov chain history length (overall accuracy)",
    )
    for order in orders:
        result = evaluate_engine_cv(
            context.study, lambda tr, n=order: context.markov_engine(tr, n), ks
        )
        table.add_row(order, *(result.accuracy(k) for k in ks))
    return table


def run_allocation_ablation(context: ExperimentContext, ks=(2, 4, 5, 8)) -> Table:
    """Allocation strategies head to head (Sections 4.4 vs 5.4.3)."""
    from repro.core.allocation import PerPhaseSplitStrategy

    sb_name = f"sb:{HYBRID_SIGNATURE}"
    strategies = {
        "tuned(ab4+sb)": PaperFinalStrategy(
            "markov3", sb_name, ab_first=4, sb_only_phase=None
        ),
        "paper-final(sb-sense)": PaperFinalStrategy("markov3", sb_name, ab_first=4),
        "per-phase-split": PerPhaseSplitStrategy("markov3", sb_name),
        "ab-only": SingleModelStrategy("markov3"),
        "sb-only": SingleModelStrategy(sb_name),
    }
    table = Table(
        ["strategy"] + [f"k={k}" for k in ks],
        title="Ablation: cache allocation strategy (overall accuracy)",
    )
    for name, strategy in strategies.items():
        result = evaluate_engine_cv(
            context.study,
            lambda tr, s=strategy: context.hybrid_engine(
                tr, sb_signature=HYBRID_SIGNATURE, strategy=s
            ),
            ks,
        )
        table.add_row(name, *(result.accuracy(k) for k in ks))
    return table


def run_prefetch_distance_ablation(
    context: ExperimentContext, ks=(4, 8)
) -> Table:
    """Prefetch distance d=1 vs d=2 (Section 5.2.2: d>1 did not help)."""
    table = Table(
        ["distance"] + [f"k={k}" for k in ks],
        title="Ablation: prefetch distance (hybrid, overall accuracy)",
    )
    for distance in (1, 2):
        def factory(train, d=distance):
            engine = hybrid_factory(context)(train)
            engine.prefetch_distance = d
            return engine

        result = evaluate_engine_cv(context.study, factory, ks)
        table.add_row(distance, *(result.accuracy(k) for k in ks))
    return table


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
EXPERIMENTS = {
    "table1": lambda ctx: [*run_table1(ctx)],
    "phase": lambda ctx: [run_phase_classifier(ctx)],
    "fig8": run_figure8,
    "fig9": lambda ctx: [*run_figure9(ctx)],
    "fig10a": run_figure10a,
    "fig10b": run_figure10b,
    "fig10c": run_figure10c,
    "fig11": lambda ctx: [*run_figure11(ctx)[0], run_figure11(ctx)[1]],
    "fig12": lambda ctx: [*run_figure12(ctx)],
    "fig13": lambda ctx: [*run_figure13(ctx)],
    "ablation-history": lambda ctx: [run_history_ablation(ctx)],
    "ablation-allocation": lambda ctx: [run_allocation_ablation(ctx)],
    "ablation-distance": lambda ctx: [run_prefetch_distance_ablation(ctx)],
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        required=True,
        help="which table/figure to regenerate",
    )
    parser.add_argument("--size", type=int, default=2048, help="world raster size")
    parser.add_argument("--users", type=int, default=18, help="study participants")
    args = parser.parse_args(argv)

    context = ExperimentContext.build(size=args.size, num_users=args.users)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"\n=== {name} ===")
        for artifact in EXPERIMENTS[name](context):
            print()
            print(artifact)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
