"""Parameter-sweep experiment harness (grid runner + perf trajectory).

Declarative grids over users x admission x shards x hotspot modes x
workloads x front ends, executed through the real serving stack with
resumable per-cell persistence, aggregated into schema-versioned
``BENCH_<date>_<sha>.json`` snapshots, and gated by a tolerance-based
regression compare.  See :mod:`repro.experiments.sweep.spec` for the
spec format and ``experiments/sweep.py`` for the CLI.
"""

from repro.experiments.sweep.compare import (
    CompareReport,
    Regression,
    Tolerances,
    compare_snapshots,
)
from repro.experiments.sweep.run import (
    CellResult,
    SweepRunSummary,
    run_cell,
    run_sweep,
)
from repro.experiments.sweep.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotError,
    build_snapshot,
    find_snapshots,
    latest_snapshot,
    load_snapshot,
    snapshot_filename,
    write_snapshot,
)
from repro.experiments.sweep.spec import (
    BUILTIN_SPECS,
    DuplicateCellError,
    EmptyGridError,
    SweepCell,
    SweepSpec,
    SweepSpecError,
    UnknownParameterError,
    resolve_spec,
)

__all__ = [
    "BUILTIN_SPECS",
    "CellResult",
    "CompareReport",
    "DuplicateCellError",
    "EmptyGridError",
    "Regression",
    "SNAPSHOT_SCHEMA_VERSION",
    "SnapshotError",
    "SweepCell",
    "SweepRunSummary",
    "SweepSpec",
    "SweepSpecError",
    "Tolerances",
    "UnknownParameterError",
    "build_snapshot",
    "compare_snapshots",
    "find_snapshots",
    "latest_snapshot",
    "load_snapshot",
    "resolve_spec",
    "run_cell",
    "run_sweep",
    "snapshot_filename",
    "write_snapshot",
]
