"""Sweep execution: run every grid cell, persisting one record per cell.

Each cell is executed through the real serving stack — a
:class:`~repro.middleware.service.ForeCacheService` (or the TCP socket
transport over it) replaying the cell's workload with
:class:`~repro.middleware.latency.LatencyRecorder` capture — and its
result is written to ``<results_dir>/<cell_id>.json`` *immediately*.
An interrupted sweep therefore resumes by re-running only the missing
cells: a completed cell whose persisted parameters still match is
skipped and its file is left byte-for-byte untouched (the
skip-completed-simulations discipline of the ``MBradbury/slp`` runner).

Determinism: workloads are seeded, sessions replay sequentially, and
with the spec's ``settle`` flag every request drains the background
scheduler before the next one — so hit rates and the virtual-latency
percentiles are pure functions of the cell parameters.  Wall-clock
throughput is also recorded but is *physical* (the regression gate
treats it as warn-only).
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

from repro.core.engine import PredictionEngine
from repro.core.allocation import SingleModelStrategy
from repro.experiments.sweep.spec import SweepCell, SweepSpec, SweepSpecError
from repro.middleware.config import (
    CacheConfig,
    PrefetchPolicy,
    ServiceConfig,
)
from repro.middleware.latency import LatencyRecorder
from repro.middleware.service import ForeCacheService
from repro.modis.dataset import MODISDataset
from repro.recommenders.momentum import MomentumRecommender
from repro.users.adversarial import adversarial_walks
from repro.users.convergent import convergent_walks
from repro.users.flashcrowd import flash_crowd_walks
from repro.users.study import run_study

#: Schema of one persisted cell record.
RESULT_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# shared expensive state (one dataset/study per parameter set)
# ----------------------------------------------------------------------
@lru_cache(maxsize=4)
def _dataset(size: int, tile_size: int, seed: int) -> MODISDataset:
    return MODISDataset.build(size=size, tile_size=tile_size, days=2, seed=seed)


@lru_cache(maxsize=8)
def _study_walks(
    size: int, tile_size: int, seed: int, users: int, max_requests: int
) -> tuple:
    dataset = _dataset(size, tile_size, seed)
    study = run_study(
        dataset, num_users=users, seed=seed, max_requests=max_requests
    )
    walks = []
    for trace in study.traces:
        walks.append(
            [(request.move, request.tile) for request in trace.requests]
        )
    return tuple(tuple(walk) for walk in walks)


def cell_walks(cell_params: dict, dataset: MODISDataset) -> list:
    """The cell's workload as replayable ``(move, key)`` walks."""
    grid = dataset.pyramid.grid
    workload = cell_params["workload"]
    users = cell_params["users"]
    seed = cell_params["seed"]
    steps = cell_params["steps"]
    if workload == "study":
        return [
            list(walk)
            for walk in _study_walks(
                cell_params["size"],
                cell_params["tile_size"],
                seed,
                users,
                cell_params["max_requests"],
            )
        ]
    if workload == "convergent":
        n = 1 << grid.deepest_level
        if n < 8:
            raise SweepSpecError(
                "the convergent workload needs >= 8 tiles per dimension "
                f"at the deepest level; size={cell_params['size']} with "
                f"tile_size={cell_params['tile_size']} gives {n}"
            )
        return convergent_walks(grid, num_users=users, leg=3, dwell=2)
    if workload == "adversarial":
        return adversarial_walks(grid, num_users=users, steps=steps, seed=seed)
    if workload == "flash_crowd":
        return flash_crowd_walks(
            grid,
            num_users=users,
            bursts=2,
            wander=max(2, steps // 6),
            dwell=2,
            seed=seed,
        )
    raise SweepSpecError(f"unknown workload {workload!r}")


def cell_config(cell_params: dict) -> ServiceConfig:
    """The cell's serving configuration."""
    k = cell_params["k"]
    return ServiceConfig(
        prefetch=PrefetchPolicy(
            k=k,
            mode=cell_params["prefetch_mode"],
            workers=cell_params["prefetch_workers"],
            admission=cell_params["prefetch_admission"],
            shared_hotspots=cell_params["shared_hotspots"],
            hotspot_decay=cell_params["hotspot_decay"],
            hotspot_top_n=cell_params["hotspot_top_n"],
            hotspot_boost=cell_params["hotspot_boost"],
            hotspot_tick_every=cell_params["hotspot_tick_every"],
            hotspot_prune_epsilon=cell_params["hotspot_prune_epsilon"],
            push=cell_params["push"],
            push_budget_bytes=cell_params["push_budget_bytes"],
            push_max_inflight=cell_params["push_max_inflight"],
            fidelity=cell_params["fidelity"],
            fidelity_reduction=cell_params["fidelity_reduction"],
            shed_queue_depth=cell_params["shed_queue_depth"],
            shed_miss_streak=cell_params["shed_miss_streak"],
            shed_keep_k=cell_params["shed_keep_k"],
        ),
        cache=CacheConfig(
            recent_capacity=cell_params["recent_capacity"],
            prefetch_capacity=max(k, cell_params["prefetch_capacity"]),
            shards=cell_params["cache_shards"],
        ),
    )


def _engine_factory(grid):
    """Per-session Momentum engines: train-free, so every workload
    (including ones with no training corpus) replays identically."""

    def factory() -> PredictionEngine:
        model = MomentumRecommender()
        return PredictionEngine(
            grid=grid,
            recommenders={model.name: model},
            strategy=SingleModelStrategy(model.name),
        )

    return factory


# ----------------------------------------------------------------------
# cell execution
# ----------------------------------------------------------------------
def _replay_inprocess(
    pyramid, config: ServiceConfig, walks, settle: bool
) -> tuple[LatencyRecorder, float, int]:
    recorder = LatencyRecorder()
    with ForeCacheService(
        pyramid, config, engine_factory=_engine_factory(pyramid.grid)
    ) as service:
        start = time.perf_counter()
        for index, walk in enumerate(walks):
            with service.open_session(
                session_id=f"user-{index + 1}"
            ) as handle:
                for move, key in walk:
                    handle.request(move, key)
                    if settle:
                        service.drain()
                recorder.merge(handle.recorder)
        wall = time.perf_counter() - start
        registry = service.hotspot_registry
        tracked = len(registry) if registry is not None else 0
    return recorder, wall, tracked


def _replay_socket(
    pyramid, config: ServiceConfig, walks, settle: bool
) -> tuple[LatencyRecorder, float, int]:
    from repro.middleware.net import SocketTransport, ThreadedSocketServer

    recorder = LatencyRecorder()
    with ThreadedSocketServer(
        pyramid,
        config,
        engine_factory=_engine_factory(pyramid.grid),
        max_workers=2,
    ) as server:
        # The sync facade under the asyncio server — the sweep owns the
        # whole stack, so draining it directly between requests is fair
        # game (drain/wait_idle is thread-safe by design).
        inner = server.server.service.service
        with SocketTransport(
            *server.address,
            pyramid=pyramid,
            push=config.prefetch.push_enabled,
        ) as transport:
            start = time.perf_counter()
            for index, walk in enumerate(walks):
                client = transport.connect(session_id=f"user-{index + 1}")
                try:
                    for move, key in walk:
                        response = client.handle_request(move, key)
                        recorder.record(response.latency_seconds, response.hit)
                        if settle:
                            inner.drain()
                finally:
                    client.close()
            wall = time.perf_counter() - start
        registry = inner.hotspot_registry
        tracked = len(registry) if registry is not None else 0
    return recorder, wall, tracked


def _replay_cluster(
    pyramid, config: ServiceConfig, walks, settle: bool, workers: int
) -> tuple[LatencyRecorder, float, int]:
    from repro.middleware.cluster import ThreadedClusterServer
    from repro.middleware.net import SocketTransport

    recorder = LatencyRecorder()
    with ThreadedClusterServer(
        pyramid,
        config,
        workers=workers,
        engine_factory=_engine_factory(pyramid.grid),
        max_workers=2,
    ) as cluster:
        # Draining must reach *every* worker's scheduler: a request's
        # prefetch round runs on whichever worker owns its tile key.
        inner = [w.server.service.service for w in cluster.workers]
        with SocketTransport(
            *cluster.address,
            pyramid=pyramid,
            push=config.prefetch.push_enabled,
        ) as transport:
            start = time.perf_counter()
            for index, walk in enumerate(walks):
                client = transport.connect(session_id=f"user-{index + 1}")
                try:
                    for move, key in walk:
                        response = client.handle_request(move, key)
                        recorder.record(response.latency_seconds, response.hit)
                        if settle:
                            for service in inner:
                                service.drain()
                finally:
                    client.close()
            wall = time.perf_counter() - start
        tracked = sum(
            len(service.hotspot_registry)
            for service in inner
            if service.hotspot_registry is not None
        )
    return recorder, wall, tracked


@dataclass(frozen=True)
class CellResult:
    """One executed (or reloaded) cell."""

    cell_id: str
    params: dict
    metrics: dict

    def to_record(self) -> dict:
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "cell_id": self.cell_id,
            "params": self.params,
            "metrics": self.metrics,
        }

    @classmethod
    def from_record(cls, record: dict) -> "CellResult":
        return cls(
            cell_id=record["cell_id"],
            params=record["params"],
            metrics=record["metrics"],
        )


def run_cell(cell: SweepCell) -> CellResult:
    """Execute one grid cell through the serving stack."""
    params = cell.params
    if params["push"] == "on" and params["frontend"] != "socket":
        raise SweepSpecError(
            "push is a socket-transport behavior; cells with push='on' "
            f"must fix frontend='socket', got {params['frontend']!r}"
        )
    if params["cluster_workers"] > 1 and params["frontend"] != "cluster":
        raise SweepSpecError(
            "sweeping cluster_workers needs the cluster front end; cells "
            "with cluster_workers > 1 must fix frontend='cluster', got "
            f"{params['frontend']!r}"
        )
    dataset = _dataset(params["size"], params["tile_size"], params["seed"])
    walks = cell_walks(params, dataset)
    config = cell_config(params)
    settle = params["settle"] and config.prefetch.background
    if params["frontend"] == "cluster":
        recorder, wall, tracked = _replay_cluster(
            dataset.pyramid, config, walks, settle, params["cluster_workers"]
        )
    else:
        replay = (
            _replay_socket
            if params["frontend"] == "socket"
            else _replay_inprocess
        )
        recorder, wall, tracked = replay(
            dataset.pyramid, config, walks, settle
        )
    metrics = {
        "requests": recorder.count,
        "hits": recorder.hits,
        "hit_rate": recorder.hit_rate,
        "avg_ms": recorder.average_seconds * 1000.0,
        "p50_ms": recorder.percentile(0.50) * 1000.0,
        "p95_ms": recorder.percentile(0.95) * 1000.0,
        "p99_ms": recorder.percentile(0.99) * 1000.0,
        "wall_seconds": wall,
        "throughput_rps": (recorder.count / wall) if wall > 0 else 0.0,
        "registry_tiles": tracked,
    }
    return CellResult(cell_id=cell.cell_id, params=dict(params), metrics=metrics)


# ----------------------------------------------------------------------
# persistence + resume
# ----------------------------------------------------------------------
def cell_path(results_dir: str | Path, cell_id: str) -> Path:
    return Path(results_dir) / f"{cell_id}.json"


def load_cell_record(path: Path) -> dict | None:
    """The persisted record at ``path``, or None if unreadable/foreign."""
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if (
        not isinstance(record, dict)
        or record.get("schema_version") != RESULT_SCHEMA_VERSION
        or "params" not in record
        or "metrics" not in record
    ):
        return None
    return record


def write_cell_record(path: Path, record: dict) -> None:
    """Atomic write: a killed sweep never leaves a half-written cell."""
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(record, sort_keys=True, indent=2) + "\n"
    handle = tempfile.NamedTemporaryFile(
        "w",
        encoding="utf-8",
        dir=path.parent,
        prefix=f".{path.name}.",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
        os.replace(handle.name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(handle.name)
        raise


@dataclass
class SweepRunSummary:
    """What one ``run_sweep`` invocation did."""

    spec_name: str
    executed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    results: list[CellResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.results)


def run_sweep(
    spec: SweepSpec,
    results_dir: str | Path,
    force: bool = False,
    log=None,
    runner=run_cell,
) -> SweepRunSummary:
    """Run every cell of ``spec``, resuming over ``results_dir``.

    A cell whose record already exists with matching parameters is
    skipped (``force=True`` re-runs everything); each executed cell's
    record is persisted before the next cell starts, so an interrupted
    sweep loses at most the in-flight cell.  ``runner`` is injectable
    for tests.
    """
    results_dir = Path(results_dir)
    summary = SweepRunSummary(spec_name=spec.name)
    cells = spec.cells()
    for index, cell in enumerate(cells, start=1):
        path = cell_path(results_dir, cell.cell_id)
        if not force:
            record = load_cell_record(path)
            if record is not None and record["params"] == cell.params:
                summary.skipped.append(cell.cell_id)
                summary.results.append(CellResult.from_record(record))
                if log is not None:
                    log(f"[{index}/{len(cells)}] skip {cell.cell_id}")
                continue
        result = runner(cell)
        write_cell_record(path, result.to_record())
        summary.executed.append(cell.cell_id)
        summary.results.append(result)
        if log is not None:
            log(
                f"[{index}/{len(cells)}] ran  {cell.cell_id} "
                f"(hit_rate={result.metrics['hit_rate']:.3f}, "
                f"p95={result.metrics['p95_ms']:.1f}ms)"
            )
    return summary
