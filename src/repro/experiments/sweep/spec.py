"""Declarative sweep specifications.

A sweep spec names a parameter grid — the axes swept (cartesian
product) plus the fixed parameters every cell shares::

    {
      "name": "ci-downscaled",
      "parameters": {
        "users": [2, 4],
        "prefetch_admission": ["priority", "fifo"],
        "cache_shards": [1, 4],
        "shared_hotspots": ["off", "boost"],
        "workload": ["study", "convergent", "adversarial", "flash_crowd"],
        "frontend": ["inprocess", "socket"]
      },
      "fixed": {"size": 256, "k": 5, "prefetch_mode": "background"}
    }

Every parameter (axis or fixed) must be a *known* one — the domain table
below is the single source of truth — and validation raises typed errors
(:class:`UnknownParameterError`, :class:`EmptyGridError`,
:class:`DuplicateCellError`) so callers and CI can tell a bad spec from
a bad run.  :meth:`SweepSpec.cells` expands the grid via the cartesian
``_argument_product`` (the ``MBradbury/slp`` runner idiom) into
:class:`SweepCell` values whose ``cell_id`` is a deterministic, filename-
safe slug — the key both incremental persistence (skip-completed resume)
and snapshot diffing are built on.
"""

from __future__ import annotations

import itertools
import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.middleware.config import (
    FIDELITY_MODES,
    PREFETCH_MODES,
    PUSH_MODES,
    SHARED_HOTSPOT_MODES,
)
from repro.middleware.scheduler import ADMISSION_MODES


class SweepSpecError(ValueError):
    """A sweep spec failed validation."""


class UnknownParameterError(SweepSpecError):
    """The spec names a parameter the harness does not know."""


class EmptyGridError(SweepSpecError):
    """The spec expands to zero cells (no axes, or an empty axis)."""


class DuplicateCellError(SweepSpecError):
    """Two grid cells collapse to the same parameter assignment."""


#: Workloads a cell can replay (see :mod:`repro.users`).
WORKLOADS = ("study", "convergent", "adversarial", "flash_crowd")

#: Serving front ends a cell can replay through.
FRONTENDS = ("inprocess", "socket", "cluster")


def _check_choice(name: str, choices: Sequence[str]):
    def check(value: object) -> None:
        if value not in choices:
            raise SweepSpecError(
                f"parameter {name!r} must be one of {tuple(choices)}, "
                f"got {value!r}"
            )

    return check


def _check_int(name: str, minimum: int):
    def check(value: object) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise SweepSpecError(
                f"parameter {name!r} must be an integer, got {value!r}"
            )
        if value < minimum:
            raise SweepSpecError(
                f"parameter {name!r} must be >= {minimum}, got {value}"
            )

    return check


def _check_float(name: str, minimum: float, maximum: float | None = None):
    def check(value: object) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SweepSpecError(
                f"parameter {name!r} must be a number, got {value!r}"
            )
        if value < minimum or (maximum is not None and value > maximum):
            bound = f">= {minimum}" if maximum is None else f"in [{minimum}, {maximum}]"
            raise SweepSpecError(
                f"parameter {name!r} must be {bound}, got {value}"
            )

    return check


def _check_power_of_two(name: str):
    def check(value: object) -> None:
        if (
            not isinstance(value, int)
            or isinstance(value, bool)
            or value < 2
            or value & (value - 1)
        ):
            raise SweepSpecError(
                f"parameter {name!r} must be a power of two >= 2, "
                f"got {value!r}"
            )

    return check


def _check_bool(name: str):
    def check(value: object) -> None:
        if not isinstance(value, bool):
            raise SweepSpecError(
                f"parameter {name!r} must be a boolean, got {value!r}"
            )

    return check


#: Every parameter the harness understands: default value + validator.
#: Any of them may be swept as a grid axis or pinned under ``fixed``.
PARAMETER_DOMAINS: dict[str, tuple[object, object]] = {
    # the grid axes the ROADMAP names
    "users": (2, _check_int("users", 1)),
    "prefetch_admission": (
        "priority",
        _check_choice("prefetch_admission", ADMISSION_MODES),
    ),
    "cache_shards": (1, _check_int("cache_shards", 1)),
    "shared_hotspots": (
        "off",
        _check_choice("shared_hotspots", SHARED_HOTSPOT_MODES),
    ),
    "workload": ("convergent", _check_choice("workload", WORKLOADS)),
    "frontend": ("inprocess", _check_choice("frontend", FRONTENDS)),
    # serving knobs
    "k": (5, _check_int("k", 1)),
    "prefetch_mode": ("sync", _check_choice("prefetch_mode", PREFETCH_MODES)),
    "prefetch_workers": (1, _check_int("prefetch_workers", 1)),
    "recent_capacity": (4, _check_int("recent_capacity", 1)),
    "prefetch_capacity": (8, _check_int("prefetch_capacity", 1)),
    "hotspot_decay": (0.9, _check_float("hotspot_decay", 1e-9, 1.0)),
    "hotspot_top_n": (8, _check_int("hotspot_top_n", 1)),
    "hotspot_boost": (2, _check_int("hotspot_boost", 0)),
    "hotspot_tick_every": (16, _check_int("hotspot_tick_every", 0)),
    "hotspot_prune_epsilon": (
        1e-6,
        _check_float("hotspot_prune_epsilon", 0.0),
    ),
    # progressive fidelity + overload shedding
    "fidelity": ("off", _check_choice("fidelity", FIDELITY_MODES)),
    "fidelity_reduction": (4, _check_power_of_two("fidelity_reduction")),
    "shed_queue_depth": (32, _check_int("shed_queue_depth", 1)),
    "shed_miss_streak": (0, _check_int("shed_miss_streak", 0)),
    "shed_keep_k": (2, _check_int("shed_keep_k", 1)),
    # cluster front end (run.py enforces the frontend pairing); the
    # ring partition is a pure function of (cluster_workers,
    # ring_replicas, ring_seed) — worker node names are stable — so
    # cluster cells stay trajectory-gateable.
    "cluster_workers": (1, _check_int("cluster_workers", 1)),
    # push prefetch (socket front end only; run.py enforces the pairing)
    "push": ("off", _check_choice("push", PUSH_MODES)),
    "push_budget_bytes": (
        256 * 1024,
        _check_int("push_budget_bytes", 1024),
    ),
    "push_max_inflight": (4, _check_int("push_max_inflight", 1)),
    # world / workload shape
    "size": (256, _check_int("size", 64)),
    "tile_size": (32, _check_int("tile_size", 8)),
    "seed": (7, _check_int("seed", 0)),
    "steps": (24, _check_int("steps", 1)),
    "max_requests": (30, _check_int("max_requests", 1)),
    # ``settle`` drains the background scheduler after every request, so
    # hit rates (and so virtual latency) stay deterministic — the
    # property the regression gate needs.
    "settle": (True, _check_bool("settle")),
}

#: Short slug aliases so cell ids stay readable.
_SLUG_ALIASES = {
    "cluster_workers": "clworkers",
    "prefetch_admission": "admission",
    "cache_shards": "shards",
    "shared_hotspots": "hotspots",
    "push_budget_bytes": "pushbudget",
    "push_max_inflight": "pushinflight",
    "fidelity_reduction": "reduction",
    "shed_queue_depth": "sheddepth",
    "shed_miss_streak": "shedmiss",
    "shed_keep_k": "shedkeep",
}


def _argument_product(
    parameters: Mapping[str, Sequence[object]],
) -> list[dict[str, object]]:
    """Cartesian product of the grid axes, as one dict per cell.

    Axis order follows the spec (insertion order), so the expansion is
    reproducible for a given spec file.
    """
    names = list(parameters)
    combos = itertools.product(*(parameters[name] for name in names))
    return [dict(zip(names, values)) for values in combos]


def _slug_value(value: object) -> str:
    if isinstance(value, bool):
        return "on" if value else "off"
    if isinstance(value, float):
        return format(value, "g")
    return str(value)


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: its identity and its full parameter assignment."""

    #: Deterministic filename-safe id built from the *axis* values only
    #: (the fixed parameters are shared by the whole sweep).
    cell_id: str
    #: The axis assignment that distinguishes this cell.
    axes: dict[str, object]
    #: The complete parameter set (defaults <- fixed <- axes).
    params: dict[str, object]

    def __hash__(self) -> int:  # axes/params are dicts
        return hash(self.cell_id)


@dataclass(frozen=True)
class SweepSpec:
    """A validated sweep specification."""

    name: str
    parameters: dict[str, tuple]
    fixed: dict[str, object]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        """Validate and build a spec from its JSON form."""
        if not isinstance(data, Mapping):
            raise SweepSpecError(f"spec must be a mapping, got {type(data).__name__}")
        unknown_keys = set(data) - {"name", "parameters", "fixed"}
        if unknown_keys:
            raise SweepSpecError(
                f"unknown spec keys {sorted(unknown_keys)}; expected "
                "'name', 'parameters', 'fixed'"
            )
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise SweepSpecError("spec needs a non-empty string 'name'")
        raw_parameters = data.get("parameters", {})
        raw_fixed = data.get("fixed", {})
        if not isinstance(raw_parameters, Mapping):
            raise SweepSpecError("'parameters' must be a mapping of axis -> values")
        if not isinstance(raw_fixed, Mapping):
            raise SweepSpecError("'fixed' must be a mapping of parameter -> value")

        for source, mapping in (("parameters", raw_parameters), ("fixed", raw_fixed)):
            for key in mapping:
                if key not in PARAMETER_DOMAINS:
                    raise UnknownParameterError(
                        f"unknown parameter {key!r} in {source!r}; known "
                        f"parameters: {sorted(PARAMETER_DOMAINS)}"
                    )
        overlap = set(raw_parameters) & set(raw_fixed)
        if overlap:
            raise SweepSpecError(
                f"parameters {sorted(overlap)} appear both as grid axes "
                "and under 'fixed'; pick one"
            )

        if not raw_parameters:
            raise EmptyGridError("spec sweeps no parameters (empty grid)")
        parameters: dict[str, tuple] = {}
        for key, values in raw_parameters.items():
            if isinstance(values, (str, bytes)) or not isinstance(
                values, Sequence
            ):
                raise SweepSpecError(
                    f"axis {key!r} must be a list of values, got {values!r}"
                )
            if len(values) == 0:
                raise EmptyGridError(f"axis {key!r} has no values (empty grid)")
            checker = PARAMETER_DOMAINS[key][1]
            for value in values:
                checker(value)
            parameters[key] = tuple(values)

        fixed: dict[str, object] = {}
        for key, value in raw_fixed.items():
            PARAMETER_DOMAINS[key][1](value)
            fixed[key] = value

        spec = cls(name=name, parameters=parameters, fixed=fixed)
        seen: dict[str, dict] = {}
        for cell in spec.cells():
            if cell.cell_id in seen:
                raise DuplicateCellError(
                    f"duplicate grid cell {cell.cell_id!r} (axis values "
                    f"{cell.axes} repeat); de-duplicate the axis lists"
                )
            seen[cell.cell_id] = cell.axes
        return spec

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SweepSpecError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str | Path) -> "SweepSpec":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "parameters": {k: list(v) for k, v in self.parameters.items()},
            "fixed": dict(self.fixed),
        }

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def defaults(self) -> dict[str, object]:
        """The complete shared parameter set (defaults overlaid by fixed)."""
        params = {
            name: default for name, (default, _) in PARAMETER_DOMAINS.items()
        }
        params.update(self.fixed)
        return params

    def cell_id(self, axes: Mapping[str, object]) -> str:
        """The deterministic slug of one axis assignment."""
        parts = []
        for name in sorted(axes):
            alias = _SLUG_ALIASES.get(name, name)
            parts.append(f"{alias}={_slug_value(axes[name])}")
        return "__".join(parts)

    def cells(self) -> list[SweepCell]:
        """Expand the grid (cartesian product), sorted by cell id."""
        shared = self.defaults()
        cells = []
        for axes in _argument_product(self.parameters):
            params = dict(shared)
            params.update(axes)
            cells.append(
                SweepCell(
                    cell_id=self.cell_id(axes), axes=axes, params=params
                )
            )
        cells.sort(key=lambda cell: cell.cell_id)
        return cells


# ----------------------------------------------------------------------
# built-in specs
# ----------------------------------------------------------------------
#: The CI trajectory sweep: every axis the ROADMAP names, downscaled to
#: fit CI minutes; deterministic (settle + single prefetch worker), so
#: the hit-rate/virtual-latency trajectory is regression-gateable.
CI_SPEC = {
    "name": "ci-downscaled",
    "parameters": {
        "users": [2, 4],
        "prefetch_admission": ["priority", "fifo"],
        "cache_shards": [1, 4],
        "shared_hotspots": ["off", "boost"],
        "workload": ["study", "convergent", "adversarial", "flash_crowd"],
        "frontend": ["inprocess", "socket"],
    },
    "fixed": {
        "size": 256,
        "k": 5,
        "prefetch_mode": "background",
        "prefetch_workers": 1,
        "settle": True,
        "steps": 24,
        "max_requests": 30,
        "seed": 7,
    },
}

#: A four-cell smoke spec (examples, fast tests): in-process sync only.
SMOKE_SPEC = {
    "name": "smoke",
    "parameters": {
        "users": [1, 2],
        "workload": ["convergent", "adversarial"],
    },
    "fixed": {
        "size": 64,
        "tile_size": 8,
        "prefetch_mode": "sync",
        "settle": False,
        "steps": 12,
    },
}

#: The push-mode trajectory sweep: off/on over the socket front end (the
#: only one that can push) on the two workloads where push matters most.
#: Kept as its own spec — and its own snapshot directory in CI — so the
#: 128-cell ``ci`` grid's snapshots stay byte-comparable across the
#: push-introducing change.
CI_PUSH_SPEC = {
    "name": "ci-push",
    "parameters": {
        "push": ["off", "on"],
        "users": [2, 4],
        "workload": ["convergent", "flash_crowd"],
    },
    "fixed": {
        "size": 256,
        "k": 5,
        "frontend": "socket",
        "prefetch_mode": "background",
        "prefetch_workers": 1,
        "settle": True,
        "steps": 24,
        "max_requests": 30,
        "seed": 7,
    },
}

#: The overload-shedding trajectory sweep: the fidelity ladder off/on
#: over a deliberately starved cache (one recent slot) with the
#: deterministic miss-streak signal swept at two sensitivities.  The
#: study workload is the one whose zoom legs leave pyramid ancestors
#: resident, so degraded ancestor-carve serving actually fires there.
#: Its own spec — and its own snapshot directory in CI — so the
#: pre-fidelity ``ci``/``ci-push`` snapshots stay byte-comparable.
CI_OVERLOAD_SPEC = {
    "name": "ci-overload",
    "parameters": {
        "fidelity": ["off", "progressive"],
        "users": [2, 4],
        "shed_miss_streak": [1, 2],
    },
    "fixed": {
        "size": 256,
        "k": 5,
        "frontend": "socket",
        "workload": "study",
        "prefetch_mode": "background",
        "prefetch_workers": 1,
        "recent_capacity": 1,
        "prefetch_capacity": 5,
        "settle": True,
        "steps": 24,
        "max_requests": 30,
        "seed": 7,
    },
}

#: The cluster trajectory sweep: worker count over the consistent-hash
#: router on the two multi-user workloads.  Deterministic because the
#: ring partition only depends on (cluster_workers, ring_replicas,
#: ring_seed) and every session replays sequentially with settle.  Its
#: own spec — and its own snapshot directory in CI — so the earlier
#: snapshots stay byte-comparable across the cluster-introducing change.
CI_CLUSTER_SPEC = {
    "name": "ci-cluster",
    "parameters": {
        "cluster_workers": [1, 2],
        "users": [2, 4],
        "workload": ["convergent", "flash_crowd"],
    },
    "fixed": {
        "size": 256,
        "k": 5,
        "frontend": "cluster",
        "prefetch_mode": "background",
        "prefetch_workers": 1,
        "settle": True,
        "steps": 24,
        "max_requests": 30,
        "seed": 7,
    },
}

BUILTIN_SPECS: dict[str, dict] = {
    "ci": CI_SPEC,
    "ci-push": CI_PUSH_SPEC,
    "ci-overload": CI_OVERLOAD_SPEC,
    "ci-cluster": CI_CLUSTER_SPEC,
    "smoke": SMOKE_SPEC,
}


def resolve_spec(ref: str | Path) -> SweepSpec:
    """A spec from a built-in name (``ci``, ``ci-push``, ``ci-overload``,
    ``ci-cluster``, ``smoke``) or a JSON file."""
    if isinstance(ref, str) and ref in BUILTIN_SPECS:
        return SweepSpec.from_dict(BUILTIN_SPECS[ref])
    path = Path(ref)
    if path.exists():
        return SweepSpec.from_file(path)
    raise SweepSpecError(
        f"unknown spec {str(ref)!r}: not a built-in "
        f"({sorted(BUILTIN_SPECS)}) and no such file"
    )
