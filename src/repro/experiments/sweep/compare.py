"""The bench-regression gate: diff two trajectory snapshots.

``compare_snapshots(baseline, current)`` walks every cell the two
snapshots share and gates on the *deterministic* metrics — virtual
latency (avg/p50/p95/p99) and hit rate.  Wall-clock throughput varies
with the machine and run, so a throughput drop (or any cell-set change)
is reported as a warning, never a failure.  The CLI exits non-zero
exactly when ``CompareReport.ok`` is false, which is what CI wires into
the ``bench-trajectory`` job.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.report import Table

#: Virtual-latency metrics the gate enforces (milliseconds).
GATED_LATENCY_METRICS = ("avg_ms", "p50_ms", "p95_ms", "p99_ms")

#: Metrics reported for context but never gated (physical/wall-clock).
WARN_ONLY_METRICS = ("throughput_rps",)


@dataclass(frozen=True)
class Tolerances:
    """How much worse "current" may be before the gate fails.

    Latency gates combine a *relative* allowance with an *absolute*
    slack: a cell regresses only when
    ``current > max(baseline * (1 + latency_increase),
    baseline + latency_slack_ms)`` — the slack keeps near-zero baselines
    (an all-hit cell at ~20 ms) from flagging on float dust.
    """

    #: Allowed relative latency growth (0.25 = +25%).
    latency_increase: float = 0.25
    #: Absolute latency slack in milliseconds.
    latency_slack_ms: float = 1.0
    #: Allowed absolute hit-rate drop (0.02 = two points).
    hit_rate_drop: float = 0.02
    #: Relative throughput drop that triggers a *warning* (never fails).
    throughput_drop: float = 0.5

    def __post_init__(self) -> None:
        for name in ("latency_increase", "latency_slack_ms", "hit_rate_drop"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if not 0 <= self.throughput_drop <= 1:
            raise ValueError(
                f"throughput_drop must be in [0, 1], got {self.throughput_drop}"
            )


@dataclass(frozen=True)
class Regression:
    """One gated metric that got worse than the tolerances allow."""

    cell_id: str
    metric: str
    baseline: float
    current: float

    def describe(self) -> str:
        return (
            f"{self.cell_id}: {self.metric} {self.baseline:.4g} -> "
            f"{self.current:.4g}"
        )


@dataclass
class CompareReport:
    """Everything the gate decided, renderable as text or markdown."""

    baseline_label: str
    current_label: str
    tolerances: Tolerances
    regressions: list[Regression] = field(default_factory=list)
    improvements: list[Regression] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    compared_cells: int = 0

    @property
    def ok(self) -> bool:
        return not self.regressions

    def _table(self, rows: list[Regression], title: str) -> Table:
        table = Table(
            ["cell", "metric", "baseline", "current", "delta"], title=title
        )
        for row in rows:
            delta = row.current - row.baseline
            table.add_row(
                row.cell_id,
                row.metric,
                f"{row.baseline:.4g}",
                f"{row.current:.4g}",
                f"{delta:+.4g}",
            )
        return table

    def render(self, markdown: bool = False) -> str:
        """The human-readable verdict (markdown for CI job summaries)."""
        lines = [
            f"baseline: {self.baseline_label}",
            f"current:  {self.current_label}",
            f"cells compared: {self.compared_cells}",
        ]
        lines.extend(f"note: {note}" for note in self.notes)
        lines.append("")
        if self.regressions:
            table = self._table(self.regressions, "Regressions (gate FAILS)")
            lines.append(table.to_markdown() if markdown else str(table))
        if self.improvements:
            table = self._table(self.improvements, "Improvements")
            lines.append(table.to_markdown() if markdown else str(table))
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        lines.append("")
        verdict = (
            "OK: no gated regressions"
            if self.ok
            else f"FAIL: {len(self.regressions)} gated regression(s)"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _latency_regressed(
    baseline: float, current: float, tolerances: Tolerances
) -> bool:
    allowed = max(
        baseline * (1.0 + tolerances.latency_increase),
        baseline + tolerances.latency_slack_ms,
    )
    return current > allowed


def compare_snapshots(
    baseline: dict,
    current: dict,
    tolerances: Tolerances | None = None,
    baseline_label: str | None = None,
    current_label: str | None = None,
) -> CompareReport:
    """Gate ``current`` against ``baseline``; see the module docstring."""
    tolerances = tolerances or Tolerances()
    report = CompareReport(
        baseline_label=baseline_label
        or f"{baseline.get('git_sha')} ({baseline.get('created_utc')})",
        current_label=current_label
        or f"{current.get('git_sha')} ({current.get('created_utc')})",
        tolerances=tolerances,
    )
    base_cells = baseline["cells"]
    cur_cells = current["cells"]
    added = sorted(set(cur_cells) - set(base_cells))
    removed = sorted(set(base_cells) - set(cur_cells))
    if added:
        report.warnings.append(
            f"{len(added)} cell(s) only in current (grid grew): {added[:3]}"
        )
    if removed:
        report.warnings.append(
            f"{len(removed)} cell(s) only in baseline (grid shrank): "
            f"{removed[:3]}"
        )

    for cell_id in sorted(set(base_cells) & set(cur_cells)):
        base = base_cells[cell_id]["metrics"]
        cur = cur_cells[cell_id]["metrics"]
        report.compared_cells += 1

        for metric in GATED_LATENCY_METRICS:
            if metric not in base or metric not in cur:
                continue
            entry = Regression(cell_id, metric, base[metric], cur[metric])
            if _latency_regressed(base[metric], cur[metric], tolerances):
                report.regressions.append(entry)
            elif _latency_regressed(cur[metric], base[metric], tolerances):
                report.improvements.append(entry)

        if "hit_rate" in base and "hit_rate" in cur:
            drop = base["hit_rate"] - cur["hit_rate"]
            entry = Regression(
                cell_id, "hit_rate", base["hit_rate"], cur["hit_rate"]
            )
            if drop > tolerances.hit_rate_drop:
                report.regressions.append(entry)
            elif -drop > tolerances.hit_rate_drop:
                report.improvements.append(entry)

        for metric in WARN_ONLY_METRICS:
            if metric not in base or metric not in cur or base[metric] <= 0:
                continue
            drop = (base[metric] - cur[metric]) / base[metric]
            if drop > tolerances.throughput_drop:
                report.warnings.append(
                    f"{cell_id}: {metric} fell {drop:.0%} "
                    f"({base[metric]:.4g} -> {cur[metric]:.4g}; wall-clock, "
                    "not gated)"
                )
    return report
