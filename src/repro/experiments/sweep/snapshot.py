"""Perf-trajectory snapshots: one schema-versioned JSON per sweep run.

A snapshot aggregates every cell record of one sweep into a single
``BENCH_<date>_<git-sha>.json`` file — the unit the trajectory directory
(``benchmarks/trajectory/``) accumulates over time and the regression
gate (:mod:`repro.experiments.sweep.compare`) diffs.  The filename
carries provenance (when, from which commit); the body carries the spec,
the environment, and per-cell metrics.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
from pathlib import Path

from repro.experiments.sweep.run import CellResult
from repro.experiments.sweep.spec import SweepSpec

#: Schema of one snapshot file.  Bump on incompatible layout changes;
#: ``load_snapshot`` refuses unknown versions instead of mis-reading.
SNAPSHOT_SCHEMA_VERSION = 1

#: Discriminator so foreign JSON in the trajectory dir is rejected.
SNAPSHOT_KIND = "forecache-bench-trajectory"


class SnapshotError(ValueError):
    """A snapshot could not be built or read."""


def git_short_sha(repo_dir: str | Path | None = None) -> str:
    """The short sha of HEAD, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if sha else "unknown"


def environment_info() -> dict:
    """Where the numbers came from (context for cross-machine diffs)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def build_snapshot(
    spec: SweepSpec,
    results: list[CellResult],
    git_sha: str | None = None,
    created_utc: str | None = None,
    allow_partial: bool = False,
) -> dict:
    """Aggregate cell results into one snapshot document.

    Every cell of ``spec`` must be present (a partial sweep would make
    the trajectory silently lossy) unless ``allow_partial`` is set, in
    which case the missing ids are recorded in the document instead.
    """
    by_id = {result.cell_id: result for result in results}
    expected = [cell.cell_id for cell in spec.cells()]
    missing = [cell_id for cell_id in expected if cell_id not in by_id]
    if missing and not allow_partial:
        raise SnapshotError(
            f"sweep {spec.name!r} is missing {len(missing)} of "
            f"{len(expected)} cells (e.g. {missing[0]!r}); finish the "
            "run or pass allow_partial"
        )
    foreign = sorted(set(by_id) - set(expected))
    if foreign:
        raise SnapshotError(
            f"results contain cells not in spec {spec.name!r}: {foreign[:3]}"
        )
    if created_utc is None:
        created_utc = (
            datetime.datetime.now(datetime.timezone.utc)
            .replace(microsecond=0)
            .isoformat()
        )
    return {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "kind": SNAPSHOT_KIND,
        "created_utc": created_utc,
        "git_sha": git_sha if git_sha is not None else git_short_sha(),
        "spec": spec.to_dict(),
        "environment": environment_info(),
        "missing_cells": missing,
        "cells": {
            cell_id: {
                "params": by_id[cell_id].params,
                "metrics": by_id[cell_id].metrics,
            }
            for cell_id in expected
            if cell_id in by_id
        },
    }


def snapshot_filename(snapshot: dict) -> str:
    """``BENCH_<YYYY-MM-DD>_<sha>.json`` from the document's provenance."""
    date = snapshot["created_utc"][:10]
    return f"BENCH_{date}_{snapshot['git_sha']}.json"


def write_snapshot(snapshot: dict, out_dir: str | Path) -> Path:
    """Write the snapshot under its canonical name; returns the path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / snapshot_filename(snapshot)
    path.write_text(
        json.dumps(snapshot, sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def load_snapshot(path: str | Path) -> dict:
    """Read and schema-check one snapshot file."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if not isinstance(document, dict) or document.get("kind") != SNAPSHOT_KIND:
        raise SnapshotError(f"{path} is not a bench-trajectory snapshot")
    if document.get("schema_version") != SNAPSHOT_SCHEMA_VERSION:
        raise SnapshotError(
            f"{path} has snapshot schema "
            f"{document.get('schema_version')!r}; this build reads "
            f"{SNAPSHOT_SCHEMA_VERSION}"
        )
    if not isinstance(document.get("cells"), dict):
        raise SnapshotError(f"{path} carries no cells")
    return document


def find_snapshots(trajectory_dir: str | Path) -> list[Path]:
    """Every ``BENCH_*.json`` in the directory, oldest first.

    The ``BENCH_<date>_<sha>`` naming sorts lexicographically by date;
    same-day snapshots tie-break by sha and then mtime, which is stable
    enough for "latest vs. previous" selection.
    """
    directory = Path(trajectory_dir)
    if not directory.is_dir():
        return []
    return sorted(
        directory.glob("BENCH_*.json"),
        key=lambda p: (p.name[: len("BENCH_YYYY-MM-DD")], p.stat().st_mtime, p.name),
    )


def latest_snapshot(trajectory_dir: str | Path) -> Path | None:
    """The newest committed snapshot, or None if the dir is empty."""
    found = find_snapshots(trajectory_dir)
    return found[-1] if found else None
