"""Command-line front end of the sweep harness.

Invoked as ``python experiments/sweep.py <command>`` (the repo-root shim)
or ``python -m repro.experiments.sweep.cli``::

    cells    --spec ci                 # list the grid without running it
    run      --spec ci --results-dir . # execute (resumable) cell runs
    snapshot --spec ci --results-dir . --out-dir benchmarks/trajectory
    compare  [--baseline ...] [--current ...] [--tol-latency 0.25] ...
    report   --current ...             # markdown tables of one snapshot

``compare`` with no arguments gates the *latest* snapshot in
``benchmarks/trajectory/`` against the previous one (with a single
committed snapshot it self-compares and notes it — a fresh tree always
passes).  Exit status: 0 = gate passed, 1 = gated regression, 2 = usage
or data error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.report import Table
from repro.experiments.sweep.compare import Tolerances, compare_snapshots
from repro.experiments.sweep.run import run_sweep
from repro.experiments.sweep.snapshot import (
    SnapshotError,
    build_snapshot,
    find_snapshots,
    latest_snapshot,
    load_snapshot,
    write_snapshot,
)
from repro.experiments.sweep.spec import SweepSpecError, resolve_spec

#: Where the committed perf trajectory lives, relative to the repo root.
DEFAULT_TRAJECTORY_DIR = Path("benchmarks") / "trajectory"

#: Default scratch directory for per-cell records.
DEFAULT_RESULTS_DIR = Path(".sweep-results")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sweep.py",
        description="Parameter-sweep harness with a persisted perf trajectory.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_spec(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--spec",
            default="ci",
            help="built-in spec name (ci, smoke) or path to a JSON spec",
        )

    p_cells = sub.add_parser("cells", help="list the expanded grid")
    add_spec(p_cells)

    p_run = sub.add_parser("run", help="execute the sweep (resumable)")
    add_spec(p_run)
    p_run.add_argument(
        "--results-dir",
        default=str(DEFAULT_RESULTS_DIR),
        help="per-cell record directory (resume skips completed cells)",
    )
    p_run.add_argument(
        "--force",
        action="store_true",
        help="re-run every cell even if its record exists",
    )

    p_snap = sub.add_parser(
        "snapshot", help="aggregate cell records into BENCH_<date>_<sha>.json"
    )
    add_spec(p_snap)
    p_snap.add_argument("--results-dir", default=str(DEFAULT_RESULTS_DIR))
    p_snap.add_argument(
        "--out-dir",
        default=str(DEFAULT_TRAJECTORY_DIR),
        help="directory the snapshot is written into",
    )
    p_snap.add_argument(
        "--allow-partial",
        action="store_true",
        help="snapshot even if some cells have not run",
    )
    p_snap.add_argument(
        "--git-sha", default=None, help="override the recorded git sha"
    )

    p_cmp = sub.add_parser(
        "compare", help="gate a snapshot against a baseline (exit 1 on fail)"
    )
    p_cmp.add_argument(
        "--baseline",
        default=None,
        help="baseline snapshot file or trajectory dir "
        f"(default: previous snapshot in {DEFAULT_TRAJECTORY_DIR})",
    )
    p_cmp.add_argument(
        "--current",
        default=None,
        help="current snapshot file or dir "
        f"(default: latest snapshot in {DEFAULT_TRAJECTORY_DIR})",
    )
    p_cmp.add_argument(
        "--tol-latency",
        type=float,
        default=Tolerances.latency_increase,
        help="allowed relative latency growth (default %(default)s)",
    )
    p_cmp.add_argument(
        "--tol-latency-slack-ms",
        type=float,
        default=Tolerances.latency_slack_ms,
        help="absolute latency slack in ms (default %(default)s)",
    )
    p_cmp.add_argument(
        "--tol-hit-rate",
        type=float,
        default=Tolerances.hit_rate_drop,
        help="allowed absolute hit-rate drop (default %(default)s)",
    )
    p_cmp.add_argument(
        "--markdown", action="store_true", help="render markdown tables"
    )

    p_rep = sub.add_parser(
        "report", help="markdown tables for one snapshot's metrics"
    )
    p_rep.add_argument(
        "--current",
        default=None,
        help="snapshot file or dir (default: latest committed snapshot)",
    )

    return parser


def _resolve_snapshot_ref(ref: str | None, role: str) -> Path:
    """A snapshot path from a file, a directory, or the default dir."""
    base = Path(ref) if ref is not None else DEFAULT_TRAJECTORY_DIR
    if base.is_file():
        return base
    chosen = latest_snapshot(base)
    if chosen is None:
        raise SnapshotError(
            f"no {role} snapshot: {base} has no BENCH_*.json"
        )
    return chosen


def _cmd_cells(args) -> int:
    spec = resolve_spec(args.spec)
    cells = spec.cells()
    print(f"spec {spec.name!r}: {len(cells)} cells")
    for cell in cells:
        print(f"  {cell.cell_id}")
    return 0


def _cmd_run(args) -> int:
    spec = resolve_spec(args.spec)
    summary = run_sweep(
        spec, args.results_dir, force=args.force, log=print
    )
    print(
        f"sweep {spec.name!r}: {len(summary.executed)} executed, "
        f"{len(summary.skipped)} skipped (resume), "
        f"{summary.total} total -> {args.results_dir}"
    )
    return 0


def _cmd_snapshot(args) -> int:
    from repro.experiments.sweep.run import cell_path, load_cell_record
    from repro.experiments.sweep.run import CellResult

    spec = resolve_spec(args.spec)
    results = []
    for cell in spec.cells():
        record = load_cell_record(cell_path(args.results_dir, cell.cell_id))
        if record is not None and record["params"] == cell.params:
            results.append(CellResult.from_record(record))
    snapshot = build_snapshot(
        spec,
        results,
        git_sha=args.git_sha,
        allow_partial=args.allow_partial,
    )
    path = write_snapshot(snapshot, args.out_dir)
    print(f"wrote {path} ({len(snapshot['cells'])} cells)")
    return 0


def _cmd_compare(args) -> int:
    current_path = _resolve_snapshot_ref(args.current, "current")
    note = None
    if args.baseline is not None:
        baseline_path = _resolve_snapshot_ref(args.baseline, "baseline")
        if baseline_path == current_path:
            history = find_snapshots(baseline_path.parent)
            earlier = [p for p in history if p != current_path]
            if earlier:
                baseline_path = earlier[-1]
            else:
                note = (
                    "only one committed snapshot; self-comparison "
                    "(trivially passes)"
                )
    else:
        history = find_snapshots(DEFAULT_TRAJECTORY_DIR)
        earlier = [p for p in history if p != current_path]
        if earlier:
            baseline_path = earlier[-1]
        else:
            baseline_path = current_path
            note = (
                "only one committed snapshot; self-comparison "
                "(trivially passes)"
            )
    tolerances = Tolerances(
        latency_increase=args.tol_latency,
        latency_slack_ms=args.tol_latency_slack_ms,
        hit_rate_drop=args.tol_hit_rate,
    )
    report = compare_snapshots(
        load_snapshot(baseline_path),
        load_snapshot(current_path),
        tolerances=tolerances,
        baseline_label=str(baseline_path),
        current_label=str(current_path),
    )
    if note:
        report.notes.append(note)
    print(report.render(markdown=args.markdown))
    return 0 if report.ok else 1


def _cmd_report(args) -> int:
    path = _resolve_snapshot_ref(args.current, "current")
    snapshot = load_snapshot(path)
    print(f"# Sweep snapshot {path.name}")
    print(
        f"\nspec: {snapshot['spec']['name']} | commit: "
        f"{snapshot['git_sha']} | created: {snapshot['created_utc']}\n"
    )
    table = Table(
        [
            "cell",
            "requests",
            "hit rate",
            "avg ms",
            "p95 ms",
            "p99 ms",
            "req/s",
        ],
        title="Per-cell metrics",
    )
    for cell_id, cell in sorted(snapshot["cells"].items()):
        m = cell["metrics"]
        table.add_row(
            cell_id,
            str(m["requests"]),
            f"{m['hit_rate']:.3f}",
            f"{m['avg_ms']:.1f}",
            f"{m['p95_ms']:.1f}",
            f"{m['p99_ms']:.1f}",
            f"{m['throughput_rps']:.0f}",
        )
    print(table.to_markdown())
    return 0


_COMMANDS = {
    "cells": _cmd_cells,
    "run": _cmd_run,
    "snapshot": _cmd_snapshot,
    "compare": _cmd_compare,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (SweepSpecError, SnapshotError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
