"""Latency replay and the accuracy↔latency regression (Section 5.5).

Traces are replayed through a full middleware stack (prediction engine,
cache manager, calibrated backend); every response's latency is the
virtual time the stack actually charged.  Plotting average latency
against prefetch accuracy across all models and fetch sizes reproduces
the paper's Figure 12: a near-perfect line with intercept ≈ the miss
cost and slope ≈ −(miss − hit).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.middleware.client import BrowsingSession
from repro.middleware.latency import LatencyRecorder
from repro.middleware.server import ForeCacheServer
from repro.users.session import Trace

ServerFactory = Callable[[list[Trace], int], ForeCacheServer]


@dataclass(frozen=True)
class LatencyPoint:
    """One (model, k) cell of Figures 12/13."""

    model: str
    k: int
    accuracy: float
    average_latency_seconds: float

    @property
    def average_latency_ms(self) -> float:
        """Average latency in milliseconds."""
        return self.average_latency_seconds * 1000.0


def replay_latency(
    server_factory: Callable[[], ForeCacheServer],
    traces: Sequence[Trace],
) -> LatencyRecorder:
    """Replay traces through fresh server sessions, pooling latencies.

    A new server session (cold cache, fresh engine state) is used per
    trace, as each study trace was an independent session.
    """
    recorder = LatencyRecorder()
    for trace in traces:
        server = server_factory()
        try:
            session = BrowsingSession(server)
            session.replay(trace)
            recorder.merge(server.recorder)
        finally:
            # Sync servers make this a no-op; a background server owns
            # a worker pool that must not outlive its trace.
            server.close()
    return recorder


def linear_fit(
    points: Sequence[LatencyPoint],
) -> tuple[float, float, float]:
    """Least-squares latency(ms) = slope * accuracy + intercept.

    Returns (slope, intercept, adjusted R^2) — the paper reports
    intercept 961.33, slope -939.08, adj. R^2 0.99985.
    """
    if len(points) < 3:
        raise ValueError(f"need at least 3 points to fit, got {len(points)}")
    x = np.asarray([p.accuracy for p in points])
    y = np.asarray([p.average_latency_ms for p in points])
    fit = stats.linregress(x, y)
    n = len(points)
    r2 = fit.rvalue**2
    adjusted = 1.0 - (1.0 - r2) * (n - 1) / (n - 2)
    return float(fit.slope), float(fit.intercept), float(adjusted)


def figure13_violations(
    by_model: dict[str, dict[int, float]],
    *,
    full_scale: bool,
    headline_k: int = 5,
    interactive_ms: float = 500.0,
) -> list[str]:
    """Which of Figure 13's shape claims fail for these latency curves.

    ``by_model`` maps model name -> {k: average latency ms}.  At the
    canonical study scale the hybrid curve must sit at or below both the
    Momentum and Hotspot baselines for every ``k >= 3`` (the paper's
    Figure 13 shape), and the headline-``k`` hybrid latency must clear
    the paper's 500 ms interactivity bar.

    At downscaled world sizes (``full_scale=False``) the high-``k``
    tail of the dominance claim is *not* expected to hold: in a tiny
    world a large budget covers most legal moves, so the single-model
    baselines saturate toward a perfect hit rate while the hybrid is
    still splitting its budget between its AB and SB components — the
    calibrated task difficulty that separates the curves only exists at
    full scale (same reasoning as the other figures' full-scale-only
    assertions).  Downscaled runs therefore check the dominance claim at
    the headline ``k`` only, plus the interactivity bar.

    Returns human-readable violation strings; empty means the shape
    holds.
    """
    hybrid = by_model["hybrid"]
    ks = sorted(hybrid)
    if headline_k not in hybrid:
        raise ValueError(f"headline k={headline_k} missing from curves {ks}")
    checked = [k for k in ks if k >= 3] if full_scale else [headline_k]
    violations = []
    for k in checked:
        for baseline in ("momentum", "hotspot"):
            if hybrid[k] > by_model[baseline][k]:
                violations.append(
                    f"hybrid {hybrid[k]:.3f} ms above {baseline} "
                    f"{by_model[baseline][k]:.3f} ms at k={k}"
                )
    if not hybrid[headline_k] < interactive_ms:
        violations.append(
            f"hybrid {hybrid[headline_k]:.3f} ms at k={headline_k} misses "
            f"the {interactive_ms:.0f} ms interactivity bar"
        )
    return violations


def improvement_percent(baseline_ms: float, improved_ms: float) -> float:
    """The paper's "X% improvement" convention: (old - new) / new * 100.

    984 ms vs 185 ms → ~430%; 349 ms vs 185 ms → ~88%.
    """
    if improved_ms <= 0:
        raise ValueError("improved latency must be positive")
    return (baseline_ms - improved_ms) / improved_ms * 100.0
