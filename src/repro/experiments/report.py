"""Plain-text tables and paper-vs-measured comparison rows.

The benchmark harness prints the same rows/series the paper reports;
:class:`Table` keeps that output aligned and diff-friendly, and
:class:`Comparison` pairs each paper number with the measured one so
EXPERIMENTS.md can be generated mechanically.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field


class Table:
    """A fixed-width text table."""

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append one row; cells are stringified (floats to 3 decimals)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_format_cell(c) for c in cells])

    def __str__(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavored markdown rendering."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@dataclass
class Comparison:
    """Paper-vs-measured rows for one experiment."""

    experiment: str
    rows: list[tuple[str, str, str]] = field(default_factory=list)

    def add(self, metric: str, paper: object, measured: object) -> None:
        """Record one metric's paper value and our measurement."""
        self.rows.append((metric, _format_cell(paper), _format_cell(measured)))

    def to_table(self) -> Table:
        """Render as a 3-column table."""
        table = Table(["metric", "paper", "measured"], title=self.experiment)
        for metric, paper, measured in self.rows:
            table.add_row(metric, paper, measured)
        return table

    def __str__(self) -> str:
        return str(self.to_table())
