"""Leave-one-user-out cross validation (Section 5.4).

Every experiment in the paper trains on 17 of the 18 participants and
tests on the held-out one, then averages across users.  A *fold* is
``(user_id, training traces, test traces)``; engine factories receive
the training traces and return a fully trained engine.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence

from repro.core.engine import PredictionEngine
from repro.experiments.accuracy import AccuracyResult, DEFAULT_KS, replay_engine
from repro.phases.classifier import PhaseClassifier
from repro.phases.features import trace_features
from repro.users.session import StudyData, Trace

EngineFactory = Callable[[list[Trace]], PredictionEngine]


def leave_one_user_out(
    study: StudyData,
) -> Iterator[tuple[int, list[Trace], list[Trace]]]:
    """Yield (held-out user id, training traces, test traces) folds."""
    for user_id in study.user_ids:
        yield user_id, study.excluding_user(user_id), study.by_user(user_id)


def evaluate_engine_cv(
    study: StudyData,
    engine_factory: EngineFactory,
    ks: Sequence[int] = DEFAULT_KS,
) -> AccuracyResult:
    """LOO-CV accuracy of an engine across the whole study."""
    result = AccuracyResult()
    for _, train, test in leave_one_user_out(study):
        engine = engine_factory(train)
        replay_engine(engine, test, ks, result)
    return result


def classifier_cv_accuracy(
    study: StudyData,
    feature_indices: Sequence[int] | None = None,
    c: float = 10.0,
    gamma: float | str = 1.0,
) -> tuple[float, dict[int, float]]:
    """LOO-CV accuracy of the phase classifier (Section 5.4.1).

    Returns (overall accuracy averaged across users, per-user accuracy).
    ``feature_indices`` restricts the feature set — Table 1 evaluates
    each single feature this way.
    """
    per_user: dict[int, float] = {}
    for user_id, train, test in leave_one_user_out(study):
        classifier = PhaseClassifier(
            c=c, gamma=gamma, feature_indices=feature_indices
        )
        classifier.fit_traces(train)
        features, labels = trace_features(test)
        per_user[user_id] = classifier.accuracy(features, labels)
    overall = sum(per_user.values()) / len(per_user) if per_user else 0.0
    return overall, per_user
