"""Trace-replay accuracy measurement (Section 5.2.2).

Models are stepped through request logs one request at a time; after
each request the engine produces its top-``k`` predictions, and a *hit*
is recorded when the user's next request is among them.  This equals the
middleware cache hit rate when ``k`` tiles can be fetched per think
time.  Accuracy is bucketed by the analysis phase of the predicted
(next) request, matching the per-phase plots of Figures 10 and 11.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.core.engine import PredictionEngine
from repro.phases.model import ALL_PHASES, AnalysisPhase
from repro.users.session import Trace

#: The paper sweeps prefetch budgets 1..8 (9 is guaranteed-correct).
DEFAULT_KS: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)


class AccuracyResult:
    """Hit/total counters bucketed by (phase, k)."""

    def __init__(self) -> None:
        self._hits: Counter[tuple[AnalysisPhase | None, int]] = Counter()
        self._totals: Counter[tuple[AnalysisPhase | None, int]] = Counter()

    def record(self, phase: AnalysisPhase | None, k: int, hit: bool) -> None:
        """Log one prediction outcome."""
        self._totals[(phase, k)] += 1
        if hit:
            self._hits[(phase, k)] += 1

    def merge(self, other: "AccuracyResult") -> "AccuracyResult":
        """Fold another result's counters into this one."""
        self._hits.update(other._hits)
        self._totals.update(other._totals)
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def accuracy(self, k: int, phase: AnalysisPhase | None = None) -> float:
        """Hit rate at budget ``k``; ``phase=None`` aggregates all phases."""
        if phase is not None:
            total = self._totals[(phase, k)]
            return self._hits[(phase, k)] / total if total else 0.0
        hits = sum(h for (p, kk), h in self._hits.items() if kk == k)
        total = sum(t for (p, kk), t in self._totals.items() if kk == k)
        return hits / total if total else 0.0

    def sample_count(self, k: int, phase: AnalysisPhase | None = None) -> int:
        """Number of predictions evaluated in a bucket."""
        if phase is not None:
            return self._totals[(phase, k)]
        return sum(t for (p, kk), t in self._totals.items() if kk == k)

    def ks(self) -> list[int]:
        """All budgets with recorded data, sorted."""
        return sorted({k for _, k in self._totals})

    def phases(self) -> list[AnalysisPhase]:
        """All phases with recorded data, in canonical order."""
        present = {p for p, _ in self._totals if p is not None}
        return [p for p in ALL_PHASES if p in present]

    def as_series(self, phase: AnalysisPhase | None = None) -> dict[int, float]:
        """Accuracy per k — one plotted line of Figure 10/11."""
        return {k: self.accuracy(k, phase) for k in self.ks()}


def replay_engine(
    engine: PredictionEngine,
    traces: Sequence[Trace],
    ks: Sequence[int] = DEFAULT_KS,
    result: AccuracyResult | None = None,
) -> AccuracyResult:
    """Step an engine through traces, recording top-k hit rates.

    The engine must already be trained; its session state is reset per
    trace.  Predictions are one step ahead (``d = 1``), as in the paper.
    """
    if result is None:
        result = AccuracyResult()
    for trace in traces:
        engine.reset()
        for i, request in enumerate(trace.requests):
            engine.observe(request.move, request.tile)
            if i + 1 >= len(trace.requests):
                break
            next_request = trace.requests[i + 1]
            for k in ks:
                prediction = engine.predict(k)
                hit = next_request.tile in prediction.tiles
                result.record(next_request.phase, k, hit)
    return result
