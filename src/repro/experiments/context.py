"""Shared experiment setup: dataset, study, signatures, model factories.

Building the world, running the 18-user study, and training the visual
vocabulary are expensive; every experiment shares one
:class:`ExperimentContext` (memoized per parameter set).  The context
also centralizes engine construction so each figure's benchmark asks for
"a Momentum engine" or "the hybrid engine trained on these traces" and
nothing else.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.allocation import (
    AllocationStrategy,
    PaperFinalStrategy,
    SingleModelStrategy,
)
from repro.core.engine import PredictionEngine
from repro.modis.dataset import MODISDataset
from repro.phases.classifier import PhaseClassifier
from repro.recommenders.base import Recommender
from repro.recommenders.hotspot import HotspotRecommender
from repro.recommenders.markov import MarkovRecommender
from repro.recommenders.momentum import MomentumRecommender
from repro.recommenders.signature_based import SignatureBasedRecommender
from repro.signatures.base import SignatureRegistry
from repro.signatures.densesift import DenseSIFTSignature
from repro.signatures.histogram import HistogramSignature
from repro.signatures.provider import SignatureProvider
from repro.signatures.sift import SIFTSignature
from repro.signatures.stats import NormalSignature
from repro.signatures.visualwords import train_vocabulary
from repro.users.session import StudyData, Trace
from repro.users.study import run_study

#: The four Table 2 signatures, in paper order.
SIGNATURE_NAMES: tuple[str, ...] = ("normal", "histogram", "sift", "densesift")

_context_cache: dict[tuple, "ExperimentContext"] = {}


@dataclass
class ExperimentContext:
    """Everything the Section 5 experiments share."""

    dataset: MODISDataset
    study: StudyData
    provider: SignatureProvider
    attribute: str

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        size: int = 2048,
        tile_size: int = 32,
        days: int = 2,
        num_users: int = 18,
        world_seed: int = 7,
        study_seed: int = 17,
        num_words: int = 32,
        attribute: str = "ndsi_avg",
    ) -> "ExperimentContext":
        """Build (or fetch the memoized) experiment context."""
        key = (
            size,
            tile_size,
            days,
            num_users,
            world_seed,
            study_seed,
            num_words,
            attribute,
        )
        cached = _context_cache.get(key)
        if cached is not None:
            return cached

        dataset = MODISDataset.build(
            size=size, tile_size=tile_size, days=days, seed=world_seed
        )
        study = run_study(dataset, num_users=num_users, seed=study_seed)
        vocabulary = train_vocabulary(
            dataset.pyramid,
            attribute,
            num_words=num_words,
            seed=world_seed,
            max_tiles_per_level=48,
        )
        registry = SignatureRegistry(
            (
                NormalSignature(),
                HistogramSignature(),
                SIFTSignature(vocabulary),
                DenseSIFTSignature(vocabulary),
            )
        )
        provider = SignatureProvider(dataset.pyramid, registry, attribute)
        context = cls(
            dataset=dataset, study=study, provider=provider, attribute=attribute
        )
        _context_cache[key] = context
        return context

    @classmethod
    def default(cls) -> "ExperimentContext":
        """The benchmark-scale context.

        ``REPRO_SIZE`` / ``REPRO_USERS`` environment variables downscale
        the world for quicker runs (the shape of every result is
        preserved; absolute trace counts shrink).
        """
        size = int(os.environ.get("REPRO_SIZE", "2048"))
        users = int(os.environ.get("REPRO_USERS", "18"))
        return cls.build(size=size, num_users=users)

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    @property
    def grid(self):
        """The pyramid's tile grid."""
        return self.dataset.pyramid.grid

    @property
    def pyramid(self):
        """The dataset's tile pyramid."""
        return self.dataset.pyramid

    def _engine(
        self,
        recommenders: dict[str, Recommender],
        strategy: AllocationStrategy,
        phase_predictor=None,
    ) -> PredictionEngine:
        return PredictionEngine(
            grid=self.grid,
            recommenders=recommenders,
            strategy=strategy,
            phase_predictor=phase_predictor,
        )

    # ------------------------------------------------------------------
    # single-model engines (baselines and individual models)
    # ------------------------------------------------------------------
    def momentum_engine(self, train: list[Trace] | None = None) -> PredictionEngine:
        """The Momentum baseline (needs no training)."""
        model = MomentumRecommender()
        return self._engine({model.name: model}, SingleModelStrategy(model.name))

    def hotspot_engine(self, train: list[Trace]) -> PredictionEngine:
        """The Hotspot baseline, trained on request popularity."""
        model = HotspotRecommender()
        model.train(train)
        return self._engine({model.name: model}, SingleModelStrategy(model.name))

    def markov_engine(self, train: list[Trace], order: int = 3) -> PredictionEngine:
        """The AB model (paper default: Markov3)."""
        model = MarkovRecommender(order=order)
        model.train(train)
        return self._engine({model.name: model}, SingleModelStrategy(model.name))

    def sb_engine(self, signature_name: str) -> PredictionEngine:
        """An SB model using a single signature (Figure 10b)."""
        model = SignatureBasedRecommender(self.provider, (signature_name,))
        return self._engine({model.name: model}, SingleModelStrategy(model.name))

    # ------------------------------------------------------------------
    # the full two-level engine
    # ------------------------------------------------------------------
    def phase_classifier(self, train: list[Trace]) -> PhaseClassifier:
        """The top-level SVM, trained on labeled traces."""
        classifier = PhaseClassifier()
        classifier.fit_traces(train)
        return classifier

    def hybrid_engine(
        self,
        train: list[Trace],
        ab_order: int = 3,
        sb_signature: str = "sift",
        strategy: AllocationStrategy | None = None,
        classifier: PhaseClassifier | None = None,
    ) -> PredictionEngine:
        """The final prediction engine (Section 5.4.3).

        Markov3 + SIFT-SB recommenders under the tuned allocation
        strategy, with the SVM phase classifier on top.
        """
        ab = MarkovRecommender(order=ab_order)
        ab.train(train)
        sb = SignatureBasedRecommender(self.provider, (sb_signature,))
        if classifier is None:
            classifier = self.phase_classifier(train)
        if strategy is None:
            strategy = PaperFinalStrategy(ab_model=ab.name, sb_model=sb.name)
        return self._engine(
            {ab.name: ab, sb.name: sb},
            strategy,
            phase_predictor=classifier.predict,
        )
