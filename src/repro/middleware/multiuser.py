"""Multi-user ForeCache (Section 6.2, future work).

The paper notes its framework "does not currently take into account
potential optimizations within a multi-user scheme" and plans
coordinated predictions and caching across users.  This module
implements that design:

- one shared :class:`~repro.cache.manager.CacheManager` (and therefore
  one shared middleware cache) for all users of a dataset, so a tile
  fetched for one user serves everyone,
- one prediction engine *per user* (each session has its own history,
  ROI, and phase), feeding a shared prefetch pipeline, and
- a fair split of the prefetch budget: each user's predictions claim an
  equal share of the shared prefetch region.

Like the single-user server, two prefetch modes are offered.  In
``"sync"`` mode every request refills the shared prefetch region inline
with all users' pending predictions interleaved fairly (the seed
behavior).  In ``"background"`` mode each request enqueues that user's
share onto one shared :class:`~repro.middleware.scheduler.PrefetchScheduler`
— their next request cancels whatever of it is still queued, and the
cache manager's coalescing table dedupes tiles across users, so the
request path never blocks on prefetch work.

``handle_request`` is safe to call from many threads, one per user
session: shared state is lock-guarded, and each session's engine is
serialized by a per-session lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.cache.manager import CacheManager
from repro.cache.tile_cache import TileCache
from repro.core.engine import PredictionEngine
from repro.middleware.latency import LatencyModel, LatencyRecorder
from repro.middleware.scheduler import PrefetchScheduler
from repro.middleware.server import PREFETCH_MODES
from repro.phases.model import AnalysisPhase
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TilePyramid
from repro.tiles.tile import DataTile


@dataclass(frozen=True)
class MultiUserResponse:
    """What one user's request returns."""

    user_id: int
    tile: DataTile
    latency_seconds: float
    hit: bool
    phase: AnalysisPhase | None


@dataclass
class _UserSession:
    engine: PredictionEngine
    recorder: LatencyRecorder = field(default_factory=LatencyRecorder)
    pending: list[tuple[TileKey, str]] = field(default_factory=list)
    lock: threading.RLock = field(default_factory=threading.RLock)


class MultiUserServer:
    """Several concurrent users sharing one middleware cache.

    Total prefetch budget is ``prefetch_k`` tiles, split evenly across
    active users after every request.  Users therefore warm the cache
    for each other — the cross-user sharing the paper's Section 6.2
    calls for.
    """

    def __init__(
        self,
        pyramid: TilePyramid,
        prefetch_k: int = 9,
        recent_capacity: int = 10,
        latency_model: LatencyModel | None = None,
        cache_manager: CacheManager | None = None,
        prefetch_mode: str = "sync",
        prefetch_workers: int = 2,
    ) -> None:
        if prefetch_k < 1:
            raise ValueError(f"prefetch_k must be >= 1, got {prefetch_k}")
        if prefetch_mode not in PREFETCH_MODES:
            raise ValueError(
                f"prefetch_mode must be one of {PREFETCH_MODES}, got"
                f" {prefetch_mode!r}"
            )
        self.pyramid = pyramid
        self.prefetch_k = prefetch_k
        self.prefetch_mode = prefetch_mode
        if cache_manager is not None and (
            cache_manager.cache.prefetch_capacity < prefetch_k
        ):
            raise ValueError(
                f"cache prefetch capacity "
                f"{cache_manager.cache.prefetch_capacity} cannot hold the "
                f"prefetch budget k={prefetch_k}"
            )
        self.cache_manager = (
            cache_manager
            if cache_manager is not None
            else CacheManager(
                pyramid,
                TileCache(
                    recent_capacity=recent_capacity, prefetch_capacity=prefetch_k
                ),
            )
        )
        self.latency_model = (
            latency_model if latency_model is not None else LatencyModel()
        )
        self.scheduler: PrefetchScheduler | None = None
        if prefetch_mode == "background":
            self.scheduler = PrefetchScheduler(
                self.cache_manager, max_workers=prefetch_workers
            )
        self._lock = threading.Lock()
        self._sessions: dict[int, _UserSession] = {}

    # ------------------------------------------------------------------
    # session management
    # ------------------------------------------------------------------
    def register_user(self, user_id: int, engine: PredictionEngine) -> None:
        """Attach a user with their own (trained) prediction engine."""
        with self._lock:
            if user_id in self._sessions:
                raise ValueError(f"user {user_id} is already registered")
            engine.reset()
            self._sessions[user_id] = _UserSession(engine=engine)

    def remove_user(self, user_id: int) -> None:
        """Detach a user; their cache contributions stay shared."""
        with self._lock:
            if user_id not in self._sessions:
                raise KeyError(f"user {user_id} is not registered")
            del self._sessions[user_id]
        if self.scheduler is not None:
            self.scheduler.cancel_session(user_id)

    @property
    def user_ids(self) -> list[int]:
        """Registered users, sorted."""
        with self._lock:
            return sorted(self._sessions)

    def recorder(self, user_id: int) -> LatencyRecorder:
        """One user's latency log."""
        return self._session(user_id).recorder

    def _session(self, user_id: int) -> _UserSession:
        with self._lock:
            session = self._sessions.get(user_id)
        if session is None:
            raise KeyError(f"user {user_id} is not registered")
        return session

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def handle_request(
        self, user_id: int, move: Move | None, key: TileKey
    ) -> MultiUserResponse:
        """Serve one user's request and re-plan the shared prefetch."""
        session = self._session(user_id)

        outcome = self.cache_manager.fetch(key)
        latency = self.latency_model.response_seconds(
            outcome.hit, outcome.backend_seconds
        )

        with self._lock:
            active = max(1, len(self._sessions))
        per_user_budget = max(1, self.prefetch_k // active)

        with session.lock:
            session.recorder.record(latency, outcome.hit)
            session.engine.observe(move, key)
            result = session.engine.predict(per_user_budget)
            session.pending = result.attributed_tiles()
            if self.scheduler is not None:
                # Under the session lock so observe-order == schedule-
                # order: the round reflecting the latest observation is
                # the one that supersedes.
                self.scheduler.schedule(session.pending, session_id=user_id)

        if self.scheduler is None:
            self.cache_manager.prefetch(self._merged_predictions())
        return MultiUserResponse(
            user_id=user_id,
            tile=outcome.tile,
            latency_seconds=latency,
            hit=outcome.hit,
            phase=result.phase,
        )

    def _merged_predictions(self) -> list[tuple[TileKey, str]]:
        """Interleave all users' pending predictions, fairly.

        Round-robin by prediction rank: every user's best prediction
        first, then every user's second, and so on — deduplicated, so a
        tile two users both want claims a single slot.
        """
        with self._lock:
            queues = [
                list(session.pending)
                for _, session in sorted(self._sessions.items())
                if session.pending
            ]
        merged: list[tuple[TileKey, str]] = []
        seen: set[TileKey] = set()
        rank = 0
        while len(merged) < self.prefetch_k and any(
            rank < len(queue) for queue in queues
        ):
            for queue in queues:
                if rank < len(queue):
                    tile, model = queue[rank]
                    if tile not in seen:
                        seen.add(tile)
                        merged.append((tile, model))
                        if len(merged) >= self.prefetch_k:
                            break
            rank += 1
        return merged

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Wait until the background scheduler has no queued jobs."""
        if self.scheduler is None:
            return True
        return self.scheduler.wait_idle(timeout)

    def close(self) -> None:
        """Shut down the background worker pool, if any.  Idempotent."""
        if self.scheduler is not None:
            self.scheduler.shutdown()

    def __enter__(self) -> "MultiUserServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
