"""Multi-user ForeCache (Section 6.2), now a thin facade adapter.

.. deprecated::
    ``MultiUserServer(**kwargs)`` is the PR-1 API, kept working for the
    throughput benchmarks.  New code should build a
    :class:`~repro.middleware.service.ForeCacheService` with
    ``PrefetchPolicy(share_budget=True)`` and open one session per user.

The semantics are unchanged:

- one shared :class:`~repro.cache.manager.CacheManager` (and therefore
  one shared middleware cache) for all users of a dataset, so a tile
  fetched for one user serves everyone,
- one prediction engine *per user* (each session has its own history,
  ROI, and phase), feeding a shared prefetch pipeline, and
- a fair split of the prefetch budget: each user's predictions claim an
  equal share of the shared prefetch region.

In ``"sync"`` mode every request refills the shared prefetch region
inline with all users' pending predictions interleaved fairly; in
``"background"`` mode each request enqueues that user's share onto one
shared scheduler, superseded by their next request, with the cache
manager's coalescing table deduping tiles across users.

``handle_request`` is safe to call from many threads, one per user
session: shared state is lock-guarded, and each session's engine is
serialized by a per-session lock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.manager import CacheManager
from repro.core.engine import PredictionEngine
from repro.middleware.config import CacheConfig, PrefetchPolicy, ServiceConfig
from repro.middleware.latency import LatencyModel, LatencyRecorder
from repro.middleware.scheduler import PrefetchScheduler
from repro.middleware.service import ForeCacheService
from repro.phases.model import AnalysisPhase
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TilePyramid
from repro.tiles.tile import DataTile


@dataclass(frozen=True)
class MultiUserResponse:
    """What one user's request returns."""

    user_id: int
    tile: DataTile
    latency_seconds: float
    hit: bool
    phase: AnalysisPhase | None


class MultiUserServer:
    """Several concurrent users sharing one middleware cache.

    Total prefetch budget is ``prefetch_k`` tiles, split evenly across
    active users after every request.  Users therefore warm the cache
    for each other — the cross-user sharing the paper's Section 6.2
    calls for.
    """

    def __init__(
        self,
        pyramid: TilePyramid,
        prefetch_k: int = 9,
        recent_capacity: int = 10,
        latency_model: LatencyModel | None = None,
        cache_manager: CacheManager | None = None,
        prefetch_mode: str = "sync",
        prefetch_workers: int = 2,
        prefetch_admission: str = "priority",
        cache_shards: int = 1,
        shared_hotspots: str = "off",
    ) -> None:
        config = ServiceConfig(
            prefetch=PrefetchPolicy(
                k=prefetch_k,
                mode=prefetch_mode,
                workers=prefetch_workers,
                admission=prefetch_admission,
                share_budget=True,
                shared_hotspots=shared_hotspots,
            ),
            cache=CacheConfig(
                recent_capacity=recent_capacity,
                prefetch_capacity=prefetch_k,
                shards=cache_shards,
            ),
        )
        self._service = ForeCacheService(
            pyramid,
            config,
            cache_manager=cache_manager,
            latency_model=latency_model,
        )

    # ------------------------------------------------------------------
    # legacy surface, delegated
    # ------------------------------------------------------------------
    @property
    def service(self) -> ForeCacheService:
        """The facade this server adapts (one session per user)."""
        return self._service

    @property
    def pyramid(self) -> TilePyramid:
        return self._service.pyramid

    @property
    def cache_manager(self) -> CacheManager:
        return self._service.cache_manager

    @property
    def latency_model(self) -> LatencyModel:
        return self._service.latency_model

    @property
    def scheduler(self) -> PrefetchScheduler | None:
        return self._service.scheduler

    @property
    def hotspot_registry(self):
        """The shared popularity model (None with shared_hotspots="off")."""
        return self._service.hotspot_registry

    @property
    def prefetch_k(self) -> int:
        return self._service.config.prefetch.k

    @property
    def prefetch_mode(self) -> str:
        return self._service.config.prefetch.mode

    # ------------------------------------------------------------------
    # session management
    # ------------------------------------------------------------------
    def register_user(self, user_id: int, engine: PredictionEngine) -> None:
        """Attach a user with their own (trained) prediction engine.

        A duplicate ``user_id`` is rejected (DuplicateSessionError, a
        ValueError): two live users must never share engine state.
        """
        self._service.open_session(engine, user_id, reset_engine=True)

    def remove_user(self, user_id: int) -> None:
        """Detach a user; their cache contributions stay shared."""
        self._service.close_session(user_id)

    @property
    def user_ids(self) -> list[int]:
        """Registered users, sorted."""
        return self._service.session_ids

    def recorder(self, user_id: int) -> LatencyRecorder:
        """One user's latency log."""
        return self._service.session(user_id).recorder

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def handle_request(
        self, user_id: int, move: Move | None, key: TileKey
    ) -> MultiUserResponse:
        """Serve one user's request and re-plan the shared prefetch."""
        response = self._service.request(user_id, move, key)
        return MultiUserResponse(
            user_id=user_id,
            tile=response.tile,
            latency_seconds=response.latency_seconds,
            hit=response.hit,
            phase=response.phase,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Wait until the background scheduler has no queued jobs."""
        return self._service.drain(timeout)

    def close(self) -> None:
        """Shut down the background worker pool, if any.  Idempotent.

        (Legacy semantics: registered users stay requestable in sync
        mode — the facade's ``close()`` is stricter.)
        """
        if self._service.scheduler is not None:
            self._service.scheduler.shutdown()

    def __enter__(self) -> "MultiUserServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
