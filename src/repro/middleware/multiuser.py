"""Multi-user ForeCache (Section 6.2, future work).

The paper notes its framework "does not currently take into account
potential optimizations within a multi-user scheme" and plans
coordinated predictions and caching across users.  This module
implements the obvious first design:

- one shared :class:`~repro.cache.manager.CacheManager` (and therefore
  one shared middleware cache) for all users of a dataset, so a tile
  fetched for one user serves everyone,
- one prediction engine *per user* (each session has its own history,
  ROI, and phase), and
- a fair split of the prefetch budget: each user's predictions claim an
  equal share of the shared prefetch region, with leftover slots
  round-robined by prediction priority.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.manager import CacheManager
from repro.cache.tile_cache import TileCache
from repro.core.engine import PredictionEngine
from repro.middleware.latency import LatencyModel, LatencyRecorder
from repro.phases.model import AnalysisPhase
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TilePyramid
from repro.tiles.tile import DataTile


@dataclass(frozen=True)
class MultiUserResponse:
    """What one user's request returns."""

    user_id: int
    tile: DataTile
    latency_seconds: float
    hit: bool
    phase: AnalysisPhase | None


@dataclass
class _UserSession:
    engine: PredictionEngine
    recorder: LatencyRecorder = field(default_factory=LatencyRecorder)
    pending: list[tuple[TileKey, str]] = field(default_factory=list)


class MultiUserServer:
    """Several concurrent users sharing one middleware cache.

    Total prefetch budget is ``prefetch_k`` tiles; after every request
    the predictions of *all* active users are interleaved fairly and the
    shared prefetch region refilled.  Users therefore warm the cache for
    each other — the cross-user sharing the paper's Section 6.2 calls
    for.
    """

    def __init__(
        self,
        pyramid: TilePyramid,
        prefetch_k: int = 9,
        recent_capacity: int = 10,
        latency_model: LatencyModel | None = None,
    ) -> None:
        if prefetch_k < 1:
            raise ValueError(f"prefetch_k must be >= 1, got {prefetch_k}")
        self.pyramid = pyramid
        self.prefetch_k = prefetch_k
        self.cache_manager = CacheManager(
            pyramid,
            TileCache(
                recent_capacity=recent_capacity, prefetch_capacity=prefetch_k
            ),
        )
        self.latency_model = (
            latency_model if latency_model is not None else LatencyModel()
        )
        self._sessions: dict[int, _UserSession] = {}

    # ------------------------------------------------------------------
    # session management
    # ------------------------------------------------------------------
    def register_user(self, user_id: int, engine: PredictionEngine) -> None:
        """Attach a user with her own (trained) prediction engine."""
        if user_id in self._sessions:
            raise ValueError(f"user {user_id} is already registered")
        engine.reset()
        self._sessions[user_id] = _UserSession(engine=engine)

    def remove_user(self, user_id: int) -> None:
        """Detach a user; her cache contributions stay shared."""
        if user_id not in self._sessions:
            raise KeyError(f"user {user_id} is not registered")
        del self._sessions[user_id]

    @property
    def user_ids(self) -> list[int]:
        """Registered users, sorted."""
        return sorted(self._sessions)

    def recorder(self, user_id: int) -> LatencyRecorder:
        """One user's latency log."""
        return self._sessions[user_id].recorder

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def handle_request(
        self, user_id: int, move: Move | None, key: TileKey
    ) -> MultiUserResponse:
        """Serve one user's request and re-plan the shared prefetch."""
        session = self._sessions.get(user_id)
        if session is None:
            raise KeyError(f"user {user_id} is not registered")

        outcome = self.cache_manager.fetch(key)
        latency = self.latency_model.response_seconds(
            outcome.hit, outcome.backend_seconds
        )
        session.recorder.record(latency, outcome.hit)

        session.engine.observe(move, key)
        per_user_budget = max(1, self.prefetch_k // max(1, len(self._sessions)))
        result = session.engine.predict(per_user_budget)
        session.pending = result.attributed_tiles()

        self.cache_manager.prefetch(self._merged_predictions())
        return MultiUserResponse(
            user_id=user_id,
            tile=outcome.tile,
            latency_seconds=latency,
            hit=outcome.hit,
            phase=result.phase,
        )

    def _merged_predictions(self) -> list[tuple[TileKey, str]]:
        """Interleave all users' pending predictions, fairly.

        Round-robin by prediction rank: every user's best prediction
        first, then every user's second, and so on — deduplicated, so a
        tile two users both want claims a single slot.
        """
        queues = [
            list(session.pending)
            for _, session in sorted(self._sessions.items())
            if session.pending
        ]
        merged: list[tuple[TileKey, str]] = []
        seen: set[TileKey] = set()
        rank = 0
        while len(merged) < self.prefetch_k and any(
            rank < len(queue) for queue in queues
        ):
            for queue in queues:
                if rank < len(queue):
                    tile, model = queue[rank]
                    if tile not in seen:
                        seen.add(tile)
                        merged.append((tile, model))
                        if len(merged) >= self.prefetch_k:
                            break
            rank += 1
        return merged
