"""Continuous push prefetch: the server streams ranked tiles to clients.

ForeCache as published is pull-only — prediction quality is capped by
whether the *next* request happens to hit the warmed middleware cache.
Khameleon's insight is to invert the loop: after every request the
server keeps streaming its top-ranked predicted tiles into a
client-side cache as unsolicited ``push_tile`` frames, under a shared
downstream budget, so prediction quality converts directly into
response time (a push hit never touches the wire again).

Two pieces live here, one per side of the connection:

- :class:`PushScheduler` — the server-side allocator.  One scheduler
  serves every live push session of a socket server and splits a shared
  downstream byte budget fairly across them.  Within a session, each
  request starts a new *round* (generation): the prediction list is
  turned into :class:`PushJob` entries ordered by utility
  (rank-decayed confidence × hotspot boost, optionally divided by the
  estimated tile cost), deduplicated against everything the client
  already holds (its acked digest) or has in flight (pushed, not yet
  acked).  A new round cancels whatever the previous round still had
  queued — exactly the generation discipline of
  :class:`~repro.middleware.scheduler.PrefetchScheduler`.  The
  scheduler is *driven by* the event loop (the socket server calls it
  between awaits) and does no locking or I/O of its own; all methods
  are synchronous and deterministic.

- :class:`PushCache` — the client-side bounded LRU holding pushed
  tiles.  The session clients consult it before touching the wire; a
  hit is answered locally at zero virtual latency and reported to the
  server via ``push_ack`` so the server's engine still observes the
  move.  Its ``digest()`` is the authoritative held-tiles list the
  client attaches to every request.

Neither class touches sockets, threads, or the service — they are pure
state machines, which is what makes push delivery deterministic enough
for the conformance suite and the perf-trajectory gate to pin.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.tiles.key import TileKey
from repro.tiles.tile import DataTile

if TYPE_CHECKING:  # imported for type hints only
    from repro.core.popularity import SharedHotspotRegistry

#: Utility orderings the scheduler understands: ``"rank"`` scores by
#: rank-decayed confidence (hotspot-boosted), ``"density"`` divides
#: that score by the estimated frame cost so small tiles win ties —
#: useful when tile sizes vary across pyramid levels.
PUSH_UTILITIES: tuple[str, ...] = ("rank", "density")

#: Cache-attribution label for tiles loaded on the push path (shows up
#: in cache stats next to the per-model prefetch attributions).
PUSH_MODEL = "push"

#: Per-rank geometric confidence decay: the model's best guess gets
#: utility 1.0, the next 0.8, then 0.64, ...  Chosen to keep several
#: ranks in contention rather than collapsing onto rank 0.
CONFIDENCE_DECAY = 0.8

#: Floor of the per-level cost estimate (bytes).  Committed-frame EMAs
#: live in the thousands; without a floor a degenerate observation (an
#: empty or near-empty frame) would make ``"density"`` divide by (near)
#: zero and that level would dwarf every other utility in the queue.
MIN_LEVEL_COST = 1.0


@dataclass(frozen=True)
class PushJob:
    """One queued push: a predicted tile and its scheduling facts."""

    session_id: str
    key: TileKey
    model: str
    #: Rank in the prediction round that produced it (0 = best).
    rank: int
    #: The session's push generation when the job was queued.
    generation: int
    utility: float
    #: Linear resolution fraction the streamed frame should carry
    #: (1.0 = the full tile; < 1.0 = a coarse stand-in the client will
    #: hold until a refinement frame upgrades it).
    fidelity: float = 1.0


@dataclass
class _PushSession:
    """Server-side push state of one live session."""

    generation: int = 0
    #: Tiles the client's last digest confirmed it holds.
    held: set[TileKey] = field(default_factory=set)
    #: Pushed this connection, not yet confirmed by a digest: key ->
    #: frame bytes (counts against ``max_inflight``).
    unacked: dict[TileKey, int] = field(default_factory=dict)
    #: Tiles whose *latest* streamed frame was coarse — refinement
    #: candidates the dedup must not swallow (progressive mode only).
    coarse: set[TileKey] = field(default_factory=set)
    #: Jobs of the current round still waiting to be streamed.
    queued: list[PushJob] = field(default_factory=list)
    #: Bytes streamed in the current round (reset by ``begin_round``).
    round_bytes: int = 0
    #: The session's fair-share byte allowance, snapshotted when its
    #: round begins — sessions joining or leaving mid-round must not
    #: silently change what this round may still stream.
    allowance: int = 0


class PushScheduler:
    """Allocates a shared downstream push budget across live sessions.

    The budget is *per round*: every request's round may stream at most
    ``budget_bytes // live_sessions`` bytes to its session (fair share
    of the downstream pipe), and a session may never have more than
    ``max_inflight`` pushed-but-unacked tiles outstanding.  The caller
    drives the loop::

        scheduler.acknowledge(sid, digest)         # from the request
        scheduler.begin_round(sid, predictions)    # new generation
        while (job := scheduler.next_job(sid)) is not None:
            frame = ...load + encode...
            if not scheduler.commit(job, len(frame)):
                break                              # round budget spent
            ...stream frame...

    Everything is synchronous and deterministic — same inputs, same
    pushes, regardless of how connections interleave between calls.
    """

    def __init__(
        self,
        budget_bytes: int,
        max_inflight: int,
        utility: str = "rank",
        *,
        hotspot_registry: "SharedHotspotRegistry | None" = None,
        hotspot_top_n: int = 8,
        hotspot_boost: float = 2.0,
        confidence_decay: float = CONFIDENCE_DECAY,
        progressive: bool = False,
        reduction: int = 4,
    ) -> None:
        if budget_bytes < 1:
            raise ValueError(f"budget_bytes must be >= 1, got {budget_bytes}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if utility not in PUSH_UTILITIES:
            raise ValueError(
                f"utility must be one of {PUSH_UTILITIES}, got {utility!r}"
            )
        if not isinstance(reduction, int) or reduction < 2 or reduction & (
            reduction - 1
        ):
            raise ValueError(
                f"reduction must be a power of two >= 2, got {reduction!r}"
            )
        if hotspot_top_n < 1:
            raise ValueError(f"hotspot_top_n must be >= 1, got {hotspot_top_n}")
        if hotspot_boost < 0:
            raise ValueError(f"hotspot_boost must be >= 0, got {hotspot_boost}")
        if not 0.0 < confidence_decay <= 1.0:
            raise ValueError(
                f"confidence_decay must be in (0, 1], got {confidence_decay}"
            )
        self.budget_bytes = budget_bytes
        self.max_inflight = max_inflight
        self.utility = utility
        self.hotspot_registry = hotspot_registry
        self.hotspot_top_n = hotspot_top_n
        self.hotspot_boost = hotspot_boost
        self.confidence_decay = confidence_decay
        #: Fidelity-aware rounds: queue a coarse frame per predicted
        #: tile first, then spend leftover budget on full-fidelity
        #: refinement frames (``reduction`` is the coarse downsampling
        #: factor per axis).
        self.progressive = progressive
        self.reduction = reduction
        self._sessions: dict[str, _PushSession] = {}
        #: Per-level average committed frame bytes (the "density" cost
        #: estimate; levels not yet seen fall back to the global mean).
        self._level_cost: dict[int, float] = {}
        # counters (monotonic; exposed via stats())
        self.rounds = 0
        self.pushed_tiles = 0
        self.pushed_bytes = 0
        self.cancelled_jobs = 0
        self.deduped_jobs = 0
        self.deferred_jobs = 0
        self.skipped_oversize = 0
        self.coarse_tiles = 0
        self.refined_tiles = 0

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def open_session(self, session_id: str) -> None:
        """Register a live push session (joins the fair share)."""
        sid = str(session_id)
        if sid not in self._sessions:
            self._sessions[sid] = _PushSession()
            # A usable snapshot before the first round (direct-commit
            # callers); refreshed by every begin_round.
            self._sessions[sid].allowance = self.allowance_bytes()

    def forget_session(self, session_id: str) -> None:
        """Drop a departed session and everything it had queued or in
        flight.  Idempotent — a mid-push disconnect calls this from the
        connection's cleanup path."""
        state = self._sessions.pop(str(session_id), None)
        if state is not None:
            self.cancelled_jobs += len(state.queued)

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    def has_session(self, session_id: str) -> bool:
        return str(session_id) in self._sessions

    # ------------------------------------------------------------------
    # the push loop
    # ------------------------------------------------------------------
    def allowance_bytes(self) -> int:
        """One session's *current* fair share of the round budget.

        Live value — what a round starting now would be granted.  The
        budget a round actually charges against is the snapshot taken
        by :meth:`begin_round`, so sessions joining or leaving mid-round
        cannot move an in-progress round's goalposts.
        """
        return self.budget_bytes // max(1, len(self._sessions))

    def acknowledge(self, session_id: str, held) -> None:
        """Absorb the client's digest: ``held`` is authoritative.

        Every unacked tile is settled — confirmed tiles move to the
        held set, tiles the digest *lacks* were evicted client-side and
        become pushable again.  Unknown sessions are ignored (a stale
        ack racing a disconnect must not resurrect state).
        """
        state = self._sessions.get(str(session_id))
        if state is None:
            return
        state.held = set(held)
        state.unacked.clear()
        # A coarse tile the client no longer holds needs no refinement.
        state.coarse &= state.held

    def begin_round(self, session_id: str, predictions) -> int:
        """Start a new push round from a prediction list.

        Bumps the session's generation — whatever the previous round
        still had queued is cancelled (the new observation invalidated
        it) — and queues utility-ordered jobs for every predicted tile
        the client neither holds nor has in flight.  Returns the number
        of jobs queued.  ``predictions`` is the engine's attributed
        ranking: ``[(TileKey, model), ...]``, best first.

        In progressive mode every fresh prediction queues *two* jobs —
        a coarse stand-in first, a full-fidelity refinement after — and
        the coarse phase of the whole round precedes the refinement
        phase, so the budget covers every predicted tile at low
        resolution before it polishes any of them.  A tile the client
        already holds *coarse* queues a refinement only (the dedup must
        not swallow the upgrade).
        """
        state = self._sessions.get(str(session_id))
        if state is None:
            raise KeyError(f"push session {session_id!r} is not registered")
        self.cancelled_jobs += len(state.queued)
        state.queued = []
        state.round_bytes = 0
        state.allowance = self.allowance_bytes()
        state.generation += 1
        self.rounds += 1
        hot: frozenset[TileKey] = frozenset()
        if self.hotspot_registry is not None:
            hot = frozenset(
                self.hotspot_registry.hot_keys(self.hotspot_top_n)
            )
        coarse_fidelity = 1.0 / self.reduction
        jobs: list[PushJob] = []
        refinements: list[PushJob] = []
        seen: set[TileKey] = set()
        for rank, (key, model) in enumerate(predictions):
            if key in seen:
                continue
            seen.add(key)

            def job(fidelity: float) -> PushJob:
                return PushJob(
                    session_id=str(session_id),
                    key=key,
                    model=model,
                    rank=rank,
                    generation=state.generation,
                    utility=self._utility(key, rank, hot),
                    fidelity=fidelity,
                )

            if key in state.held or key in state.unacked:
                if self.progressive and key in state.coarse:
                    refinements.append(job(1.0))
                    continue
                self.deduped_jobs += 1
                continue
            if self.progressive:
                jobs.append(job(coarse_fidelity))
                refinements.append(job(1.0))
            else:
                jobs.append(job(1.0))
        # Utility descending within each phase; rank then key break ties
        # deterministically.
        order = lambda job: (-job.utility, job.rank, job.key)  # noqa: E731
        jobs.sort(key=order)
        refinements.sort(key=order)
        state.queued = jobs + refinements
        return len(state.queued)

    def _utility(self, key: TileKey, rank: int, hot: frozenset[TileKey]) -> float:
        confidence = self.confidence_decay**rank
        if key in hot:
            confidence *= 1.0 + self.hotspot_boost
        if self.utility == "density":
            confidence /= self._estimated_cost(key.level)
        return confidence

    def _estimated_cost(self, level: int) -> float:
        """Estimated frame bytes of one tile at ``level``.

        Cold start (no frame committed anywhere yet) returns the unit
        cost for every level, so ``"density"`` degenerates to the pure
        confidence ordering instead of inventing level preferences from
        no data.  Once any level has been observed, unseen levels
        borrow the global mean — which keeps their estimates on the
        same *byte* scale as observed levels (mixing the unit cost with
        multi-kilobyte observations would make unseen levels look
        thousands of times cheaper).  Estimates are floored at
        :data:`MIN_LEVEL_COST` so a degenerate observation can never
        divide a utility by (near) zero.
        """
        cost = self._level_cost.get(level)
        if cost is None:
            if not self._level_cost:
                return MIN_LEVEL_COST
            cost = sum(self._level_cost.values()) / len(self._level_cost)
        return max(cost, MIN_LEVEL_COST)

    def next_job(self, session_id: str) -> PushJob | None:
        """The round's next streamable job, or None when the session's
        in-flight cap (or queue) is exhausted."""
        state = self._sessions.get(str(session_id))
        if state is None or not state.queued:
            return None
        if len(state.unacked) >= self.max_inflight:
            # A refinement of a tile already in flight re-uses its
            # unacked slot, so it may stream past the cap.  (Outside
            # progressive mode begin_round dedups queued jobs against
            # unacked, so this scan never matches.)
            for index, job in enumerate(state.queued):
                if job.key in state.unacked:
                    return state.queued.pop(index)
            return None
        return state.queued.pop(0)

    def commit(self, job: PushJob, frame_bytes: int) -> bool:
        """Account one encoded push frame against the round's budget.

        Returns True when the frame fits the session's fair share (the
        caller streams it; the tile becomes in-flight), False when the
        round's budget is spent (the caller stops the round; the job is
        counted as deferred — the *next* round will re-rank the tile if
        the model still wants it).

        ``frame_bytes`` is the size of the frame *as encoded for this
        connection* — on a negotiated-binary connection push frames are
        several times smaller than their JSON form, so the same byte
        budget streams proportionally more tiles per round.

        The budget charged is the allowance *snapshotted* when the
        round began: a session opening or closing mid-round changes the
        next round's fair share, never this round's remaining bytes.
        """
        state = self._sessions.get(job.session_id)
        if state is None:
            return False
        if state.round_bytes + frame_bytes > state.allowance:
            self.deferred_jobs += 1
            return False
        state.round_bytes += frame_bytes
        state.unacked[job.key] = frame_bytes
        if job.fidelity < 1.0:
            state.coarse.add(job.key)
            self.coarse_tiles += 1
        else:
            if job.key in state.coarse:
                state.coarse.discard(job.key)
                self.refined_tiles += 1
        self.pushed_tiles += 1
        self.pushed_bytes += frame_bytes
        # Running per-level cost average feeds the "density" utility.
        previous = self._level_cost.get(job.key.level)
        self._level_cost[job.key.level] = (
            float(frame_bytes)
            if previous is None
            else 0.5 * previous + 0.5 * frame_bytes
        )
        return True

    def reject(self, job: PushJob) -> None:
        """Drop an unstreamable job (e.g. its frame exceeds the frame
        limit) without charging the budget."""
        self.deferred_jobs += 1

    def skip_oversize(self, job: PushJob, frame_bytes: int) -> bool:
        """True when this frame exceeds the round's *whole* allowance.

        Such a job could never pass :meth:`commit` — not this round, not
        any round at this session count — so re-queueing it as deferred
        would make it clog the head of every future round.  The caller
        should skip it (dropping it for good) and move on to the next
        job, which may well fit.
        """
        state = self._sessions.get(job.session_id)
        if state is None:
            return True
        if frame_bytes > state.allowance:
            self.skipped_oversize += 1
            return True
        return False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def queued_jobs(self, session_id: str) -> int:
        state = self._sessions.get(str(session_id))
        return len(state.queued) if state is not None else 0

    def inflight_tiles(self, session_id: str) -> int:
        state = self._sessions.get(str(session_id))
        return len(state.unacked) if state is not None else 0

    def generation(self, session_id: str) -> int:
        state = self._sessions.get(str(session_id))
        return state.generation if state is not None else 0

    def stats(self) -> dict:
        """A counters snapshot (diagnostics, tests, the example)."""
        return {
            "sessions": len(self._sessions),
            "rounds": self.rounds,
            "pushed_tiles": self.pushed_tiles,
            "pushed_bytes": self.pushed_bytes,
            "cancelled_jobs": self.cancelled_jobs,
            "deduped_jobs": self.deduped_jobs,
            "deferred_jobs": self.deferred_jobs,
            "skipped_oversize": self.skipped_oversize,
            "coarse_tiles": self.coarse_tiles,
            "refined_tiles": self.refined_tiles,
        }

    def __repr__(self) -> str:
        return (
            f"<PushScheduler sessions={len(self._sessions)} "
            f"budget={self.budget_bytes} inflight<={self.max_inflight} "
            f"pushed={self.pushed_tiles}>"
        )


class PushCache:
    """The client-side bounded LRU of server-pushed tiles.

    ``get`` answers a request locally (and promotes the tile); ``put``
    admits a pushed tile, evicting the least-recently-useful one beyond
    ``capacity``.  ``digest()`` — the sorted key list — is what the
    client reports to the server as its held set, so eviction here is
    automatically reconciled server-side (an evicted tile becomes
    pushable again).

    Progressive push streams a tile twice: a coarse stand-in first, a
    full-resolution refinement later.  ``put`` upgrades a held tile in
    place when the incoming frame carries *better* fidelity and ignores
    downgrades (a stale coarse frame must never clobber a full tile).
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._tiles: OrderedDict[TileKey, DataTile] = OrderedDict()
        self._fidelity: dict[TileKey, float] = {}
        self.hits = 0
        self.misses = 0
        self.pushed = 0
        self.evicted = 0
        self.upgraded = 0
        self.downgrades_ignored = 0

    def put(self, tile: DataTile, fidelity: float = 1.0) -> None:
        """Admit one pushed tile (refreshes recency on re-push).

        A held tile is replaced only by equal-or-better fidelity; an
        improving replacement counts as an in-place *upgrade*.
        """
        key = tile.key
        if key in self._tiles:
            held = self._fidelity.get(key, 1.0)
            if fidelity < held:
                self.downgrades_ignored += 1
                return
            if fidelity > held:
                self.upgraded += 1
            self._tiles.move_to_end(key)
        self._tiles[key] = tile
        self._fidelity[key] = fidelity
        self.pushed += 1
        while len(self._tiles) > self.capacity:
            victim, _ = self._tiles.popitem(last=False)
            self._fidelity.pop(victim, None)
            self.evicted += 1

    def get(self, key: TileKey) -> DataTile | None:
        """The held tile for ``key`` (promoted), or None."""
        tile = self._tiles.get(key)
        if tile is None:
            self.misses += 1
            return None
        self._tiles.move_to_end(key)
        self.hits += 1
        return tile

    def fidelity(self, key: TileKey) -> float:
        """Fidelity of the held tile for ``key`` (1.0 when not held)."""
        return self._fidelity.get(key, 1.0)

    def digest(self) -> list[TileKey]:
        """The held tiles, sorted — the wire-ready ``held`` list."""
        return sorted(self._tiles)

    def clear(self) -> None:
        self._tiles.clear()
        self._fidelity.clear()

    def __contains__(self, key: TileKey) -> bool:
        return key in self._tiles

    def __len__(self) -> int:
        return len(self._tiles)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"<PushCache {len(self._tiles)}/{self.capacity} tiles "
            f"hits={self.hits} misses={self.misses}>"
        )
