"""The socket transport: the wire protocol over real TCP connections.

The paper's middleware sits between a browser and the DBMS; this module
is the boundary where bytes actually cross a network.  One
:class:`ForeCacheSocketServer` speaks the framed JSON protocol of
:mod:`repro.middleware.protocol` over asyncio TCP, backed by an
:class:`~repro.middleware.aio.AsyncForeCacheService`:

    service = AsyncForeCacheService.build(pyramid, config, engine_factory=...)
    server = ForeCacheSocketServer(service)
    host, port = await server.start()
    ...
    await server.aclose()          # drains in-flight requests

Each connection opens with a ``hello``/``welcome`` version negotiation,
then drives sessions through the ``open_session``/``close_session``
control envelope and ``tile_request`` frames.  Sessions are registered
*per connection*: a client can only address sessions it opened, and a
dropped connection closes its own sessions without disturbing anyone
else's.  Framing violations (malformed bytes, oversized frames) are
answered with their typed :class:`~repro.middleware.protocol.ErrorInfo`
and the connection is closed; a malformed *message* on a healthy frame
stream is answered and the connection keeps serving.

Clients come in both colors — :class:`SocketTransport` (blocking
sockets, implements the shared
:class:`~repro.middleware.transport.Transport` ABC) and
:class:`AsyncSocketTransport` (asyncio streams) — each multiplexing any
number of sessions over one connection.  The connections they return
satisfy the same contract as every other front end, so the one
``BrowsingSession`` / ``AsyncBrowsingSession`` replays traces over
loopback exactly as it does in process.  :class:`ThreadedSocketServer`
runs the whole server on a dedicated daemon thread for synchronous
programs (examples, benchmarks, tests).
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
import threading
from collections import deque
from dataclasses import replace

from repro.core.engine import PredictionEngine
from repro.core.popularity import SharedHotspotRegistry
from repro.middleware import protocol
from repro.middleware.aio import AsyncForeCacheService
from repro.middleware.config import ServiceConfig
from repro.middleware.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FRAMINGS,
    PAYLOADS,
    SUPPORTED_VERSIONS,
    CloseSession,
    ErrorInfo,
    FrameDecoder,
    FrameTooLargeError,
    Hello,
    HotspotGossip,
    InvalidRequestError,
    OpenSession,
    ProtocolError,
    PushAck,
    PushTile,
    SessionClosedError,
    SessionInfo,
    SessionNotFoundError,
    TilePayload,
    TileRef,
    TileRequest,
    Welcome,
    encode_wire,
    negotiate_payload,
    negotiate_version,
)
from repro.middleware.push import PUSH_MODEL, PushCache, PushScheduler
from repro.middleware.service import TileResponse
from repro.middleware.transport import Transport, response_to_client
from repro.tiles.key import TileKey
from repro.tiles.reduce import downsample_tile, upsample_tile
from repro.tiles.moves import Move
from repro.tiles.pyramid import TilePyramid

_READ_CHUNK = 65536


def _check_framing(framing: str) -> str:
    if framing not in FRAMINGS:
        raise ValueError(f"framing must be one of {FRAMINGS}, got {framing!r}")
    return framing


def _check_payload(payload: str) -> str:
    if payload not in PAYLOADS:
        raise ValueError(
            f"payload must be one of {PAYLOADS}, got {payload!r}"
        )
    return payload


def _check_payloads(payloads) -> tuple[str, ...]:
    payloads = tuple(payloads)
    if not payloads or any(p not in PAYLOADS for p in payloads):
        raise ValueError(
            f"payloads must be a non-empty subset of {PAYLOADS}, "
            f"got {payloads!r}"
        )
    if "json" not in payloads:
        raise ValueError(
            f'payloads must include "json" (the mandatory fallback), '
            f"got {payloads!r}"
        )
    return payloads


class HotspotDecayTicker:
    """Wall-clock decay tick for a shared hotspot registry.

    Long-idle deployments see no requests, so request-count ticking
    (``PrefetchPolicy.hotspot_tick_every``) never fires and stale
    hotspots linger.  This ticker advances the registry's virtual tick
    from the asyncio loop every ``interval_seconds`` of *real* time.
    Off by default (``hotspot_tick_seconds=0``); the ``sleep``
    coroutine is injectable so tests drive the loop with a fake clock.
    """

    def __init__(
        self,
        registry,
        interval_seconds: float,
        *,
        sleep=None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        self.registry = registry
        self.interval_seconds = interval_seconds
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._task: asyncio.Task | None = None
        #: Decay ticks delivered so far (diagnostics/tests).
        self.ticks = 0

    async def _run(self) -> None:
        while True:
            await self._sleep(self.interval_seconds)
            self.registry.advance()
            self.ticks += 1

    def start(self) -> None:
        """Begin ticking on the running event loop."""
        if self._task is not None:
            raise RuntimeError("hotspot ticker already started")
        self._task = asyncio.ensure_future(self._run())

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    async def stop(self) -> None:
        """Cancel the tick task.  Idempotent."""
        if self._task is None:
            return
        self._task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._task
        self._task = None


class _ConnectionState:
    """Per-connection serving state (sessions, negotiation, push)."""

    __slots__ = ("sessions", "negotiated", "push", "payload", "payload_pending")

    def __init__(self) -> None:
        self.sessions: set[str] = set()
        self.negotiated = False
        self.push = False
        #: Payload encoding in force for frames *after* the handshake.
        self.payload = "json"
        #: Set while the welcome granting "binary" is still to be
        #: written in the pre-handshake framing; the serve loop flips
        #: ``payload`` (and the decoder) right after encoding it.
        self.payload_pending = False


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
class ForeCacheSocketServer:
    """Asyncio TCP server speaking the framed wire protocol."""

    def __init__(
        self,
        service: AsyncForeCacheService,
        *,
        host: str | None = None,
        port: int | None = None,
        framing: str = "lines",
        include_payload: bool = True,
        max_frame_bytes: int | None = None,
        payloads: tuple[str, ...] | None = None,
        server_name: str = "forecache-repro",
        owns_service: bool = False,
    ) -> None:
        config = service.config
        self.service = service
        self.host = host if host is not None else config.bind_host
        self.port = port if port is not None else config.bind_port
        self.framing = _check_framing(framing)
        #: Payload encodings this server will grant in the handshake
        #: (defaults to ``ServiceConfig.payloads``).  Clients that do
        #: not offer "binary" — or servers configured without it — stay
        #: on the byte-identical JSON wire.
        self.payloads = _check_payloads(
            payloads if payloads is not None else config.payloads
        )
        #: Ship tile payloads in responses.  False mirrors
        #: ``InProcessTransport(include_payload=False)``: a metadata-only
        #: deployment whose clients resolve tile references out of band —
        #: the shipped session clients refuse to materialize such
        #: responses, with the same typed error.
        self.include_payload = include_payload
        self.max_frame_bytes = (
            max_frame_bytes
            if max_frame_bytes is not None
            else config.max_frame_bytes
        )
        self.server_name = server_name
        #: ``(host, port)`` actually bound, available after :meth:`start`
        #: (the configured port may be 0 = ephemeral).
        self.address: tuple[str, int] | None = None
        self._owns_service = owns_service
        self._server: asyncio.AbstractServer | None = None
        self._closing: asyncio.Event | None = None
        self._closed = False
        self._conn_tasks: set[asyncio.Task] = set()
        policy = config.prefetch
        if policy.push_enabled and not self.include_payload:
            raise ValueError(
                "push streams tile payloads; a metadata-only server "
                "(include_payload=False) cannot offer the push capability"
            )
        #: The server-wide push allocator, present iff the policy says
        #: ``push="on"``.  One scheduler serves every connection, so the
        #: downstream budget is shared across *all* live push sessions.
        self.push_scheduler: PushScheduler | None = None
        if policy.push_enabled:
            registry = service.service.hotspot_registry
            self.push_scheduler = PushScheduler(
                budget_bytes=policy.push_budget_bytes,
                max_inflight=policy.push_max_inflight,
                utility=policy.push_utility,
                # Mirror the prefetch scheduler: only "boost" acts on
                # the shared signal.
                hotspot_registry=(
                    registry if policy.hotspots_live else None
                ),
                hotspot_top_n=policy.hotspot_top_n,
                hotspot_boost=float(policy.hotspot_boost),
                # Progressive fidelity: coarse frame first, refinement
                # with the round's leftover budget.  Off keeps the wire
                # byte-identical to earlier builds.
                progressive=policy.fidelity_enabled,
                reduction=policy.fidelity_reduction,
            )
        #: Wall-clock registry decay (``hotspot_tick_seconds``), started
        #: with the server when configured.
        self.hotspot_ticker: HotspotDecayTicker | None = None

    @classmethod
    def build(
        cls,
        pyramid: TilePyramid,
        config: ServiceConfig | None = None,
        *,
        engine_factory=None,
        max_workers: int = 8,
        **server_kwargs,
    ) -> "ForeCacheSocketServer":
        """Construct service and server in one call; the server owns
        (and on :meth:`aclose` closes) the service."""
        service = AsyncForeCacheService.build(
            pyramid,
            config,
            max_workers=max_workers,
            engine_factory=engine_factory,
        )
        return cls(service, owns_service=True, **server_kwargs)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("socket server already started")
        if self._closed:
            raise RuntimeError("socket server is closed")
        self._closing = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        policy = self.service.config.prefetch
        registry = self.service.service.hotspot_registry
        if policy.hotspot_tick_seconds > 0 and registry is not None:
            self.hotspot_ticker = HotspotDecayTicker(
                registry, policy.hotspot_tick_seconds
            )
            self.hotspot_ticker.start()
        return self.address

    async def aclose(self) -> None:
        """Graceful shutdown: stop accepting, let every in-flight
        request finish and its response flush, close all connections
        (their sessions with them), then — if this server built its
        service via :meth:`build` — close the service.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.hotspot_ticker is not None:
            await self.hotspot_ticker.stop()
        if self._closing is not None:
            self._closing.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._owns_service:
            await self.service.aclose()

    async def __aenter__(self) -> "ForeCacheSocketServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    @property
    def connection_count(self) -> int:
        """Connections currently being served."""
        return len(self._conn_tasks)

    # ------------------------------------------------------------------
    # per-connection serving
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            if task is not None:
                self._conn_tasks.discard(task)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        assert self._closing is not None
        conn = _ConnectionState()
        decoder = FrameDecoder(self.framing, self.max_frame_bytes)
        closing_wait = asyncio.ensure_future(self._closing.wait())
        try:
            while not self._closing.is_set():
                # Race the read against shutdown, so an *idle* connection
                # closes promptly on aclose() while a dispatch already in
                # progress (below, between reads) always runs to
                # completion and flushes its response first.
                read_task = asyncio.ensure_future(reader.read(_READ_CHUNK))
                await asyncio.wait(
                    {read_task, closing_wait},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not read_task.done():
                    read_task.cancel()
                    with contextlib.suppress(
                        asyncio.CancelledError, ConnectionError, OSError
                    ):
                        await read_task
                    break
                try:
                    data = read_task.result()
                except (ConnectionError, OSError):
                    break  # client vanished mid-read
                if not data:
                    break  # orderly EOF
                try:
                    frames = decoder.feed(data)
                except ProtocolError as exc:
                    # The byte stream itself is broken — answer with the
                    # typed error, then hang up.
                    await self._send(writer, ErrorInfo.from_exception(exc), conn)
                    break
                # Everything this read-batch produces — push frames and
                # replies across every completed frame — coalesces into
                # one buffer and leaves in a single write+drain (the
                # writev-style batching that keeps small frames from
                # paying a syscall each).
                out = bytearray()
                fatal = False
                for item in frames:
                    messages, fatal = await self._dispatch(item, conn)
                    # Push frames (if any) precede the reply — the last
                    # message is always the frame's actual answer.
                    for message in messages:
                        out += self._encode_out(message, conn)
                    if conn.payload_pending:
                        # The welcome granting "binary" was just encoded
                        # under the pre-handshake framing; every frame
                        # after it — both directions — speaks binary.
                        conn.payload_pending = False
                        conn.payload = "binary"
                        decoder.switch_to_binary()
                    if fatal:
                        break
                if out:
                    try:
                        writer.write(bytes(out))
                        await writer.drain()
                    except (ConnectionError, OSError):
                        break  # client vanished mid-write
                if fatal:
                    break
        finally:
            closing_wait.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await closing_wait
            await self._close_sessions(conn.sessions)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _wire_framing(self, conn: _ConnectionState) -> str:
        return "binary" if conn.payload == "binary" else self.framing

    def _encode_out(self, message, conn: _ConnectionState) -> bytes:
        """Encode one outgoing message (or pass through pre-encoded
        bytes — push frames are encoded once, where their byte size is
        charged against the push budget)."""
        if isinstance(message, (bytes, bytearray)):
            return bytes(message)
        framing = self._wire_framing(conn)
        try:
            return encode_wire(message, framing, self.max_frame_bytes)
        except FrameTooLargeError as exc:
            # The *response* outgrew the frame budget (giant tile
            # payload); report that instead of silently dropping it.
            return encode_wire(ErrorInfo.from_exception(exc), framing)

    async def _send(
        self, writer: asyncio.StreamWriter, message, conn: _ConnectionState
    ) -> bool:
        """Frame and flush one message; False when the client is gone.

        Kept for out-of-band sends (framing-error replies); the main
        serve loop batches via :meth:`_encode_out` instead.
        """
        try:
            writer.write(self._encode_out(message, conn))
            await writer.drain()
            return True
        except (ConnectionError, OSError):
            return False

    async def _dispatch(self, frame, conn: _ConnectionState):
        """Serve one frame; returns ``(messages, fatal)``.

        ``messages`` is everything this frame produces, in wire order;
        on push connections that is zero or more pre-encoded
        ``push_tile`` frames *followed by* the frame's actual reply, so
        push delivery is deterministic (fixed interleaving, no
        background writer task).
        """
        try:
            message = protocol.decode_wire(frame)
        except ProtocolError as exc:
            # One malformed message on a healthy frame stream: answer
            # and keep serving the connection.
            return [ErrorInfo.from_exception(exc)], False
        if not conn.negotiated and not isinstance(message, Hello):
            error = InvalidRequestError(
                "connection must open with a hello frame, got "
                f"{type(message).__name__}"
            )
            return [ErrorInfo.from_exception(error)], True
        if isinstance(message, Hello):
            try:
                version = negotiate_version(message.versions)
            except ProtocolError as exc:
                return [ErrorInfo.from_exception(exc)], True
            conn.negotiated = True
            # Push is granted only when both sides ask for it; legacy
            # peers (push=False hello, or none at all) get the exact
            # pre-push protocol.
            conn.push = bool(message.push and self.push_scheduler is not None)
            # Payload encoding likewise: "binary" only when the hello
            # offers it AND this server's payloads allow it; everyone
            # else keeps the byte-identical JSON wire.  The flip itself
            # happens in the serve loop, *after* this welcome is framed
            # in the pre-handshake encoding.
            granted = negotiate_payload(message.payloads, self.payloads)
            conn.payload_pending = granted == "binary"
            welcome = Welcome(
                version=version,
                server=self.server_name,
                max_frame_bytes=self.max_frame_bytes,
                push=conn.push,
                payload=granted,
            )
            return [welcome], False
        try:
            if isinstance(message, OpenSession):
                return await self._open_session(message, conn)
            if isinstance(message, CloseSession):
                return await self._close_session(message, conn)
            if isinstance(message, TileRequest):
                return await self._serve_request(message, conn)
            if isinstance(message, PushAck):
                return await self._serve_ack(message, conn)
            if isinstance(message, HotspotGossip):
                return self._serve_gossip(message)
            error = InvalidRequestError(
                f"server cannot serve {type(message).__name__} messages"
            )
            return [ErrorInfo.from_exception(error)], False
        except Exception as exc:
            return [ErrorInfo.from_exception(exc)], False

    def _serve_gossip(self, message: HotspotGossip):
        """Absorb a popularity snapshot; reply with this node's own.

        Cluster workers answer the router's gossip frames here: incoming
        entries are max-merged into the shared registry (idempotent —
        a rebroadcast that already contains this node's counts changes
        nothing), and the reply is the post-absorb full snapshot, so
        one round trip both delivers the cluster view and collects this
        worker's contribution.
        """
        registry = self.service.service.hotspot_registry
        if registry is None:
            raise InvalidRequestError(
                "this server shares no hotspot registry "
                '(shared_hotspots is "off")'
            )
        if message.entries:
            registry.merge_max(
                SharedHotspotRegistry.from_snapshot(
                    (
                        (TileKey(level, x, y), weight)
                        for level, x, y, weight in message.entries
                    ),
                    tick=message.tick,
                    decay=registry.decay,
                )
            )
        tick, entries = registry.gossip_snapshot()
        reply = HotspotGossip(
            entries=tuple(
                (key.level, key.x, key.y, weight) for key, weight in entries
            ),
            tick=tick,
        )
        return [reply], False

    def _require_session(self, session_id: str, conn: _ConnectionState):
        if session_id not in conn.sessions:
            # Per-connection isolation: a session another client opened
            # is invisible here, even if it exists on the service.
            raise SessionNotFoundError(
                f"session {session_id!r} is not open on this connection",
                session_id=session_id,
            )

    async def _open_session(self, message: OpenSession, conn: _ConnectionState):
        handle = await self.service.open_session(None, message.session_id)
        session_id = str(handle.session_id)
        conn.sessions.add(session_id)
        if conn.push and self.push_scheduler is not None:
            self.push_scheduler.open_session(session_id)
        return [await handle.info()], False

    async def _close_session(
        self, message: CloseSession, conn: _ConnectionState
    ):
        session_id = message.session_id
        self._require_session(session_id, conn)
        final = await self.service.info(session_id)
        await self.service.close_session(session_id)
        conn.sessions.discard(session_id)
        if self.push_scheduler is not None:
            self.push_scheduler.forget_session(session_id)
        return [replace(final, open=False)], False

    async def _serve_request(self, message: TileRequest, conn: _ConnectionState):
        session_id = message.session_id
        self._require_session(session_id, conn)
        if (
            conn.push
            and self.push_scheduler is not None
            and message.held is not None
        ):
            self.push_scheduler.acknowledge(
                session_id, [ref.to_key() for ref in message.held]
            )
        result = await self.service.request(
            session_id, message.to_move(), message.tile.to_key()
        )
        response = protocol.TileResponse.from_result(
            session_id,
            result,
            include_payload=self.include_payload,
            binary=conn.payload == "binary",
        )
        messages: list = []
        if conn.push and self.push_scheduler is not None:
            messages.extend(await self._push_messages(session_id, conn))
        messages.append(response)
        return messages, False

    async def _serve_ack(self, message: PushAck, conn: _ConnectionState):
        """Absorb a push-cache digest; with ``tile`` set, record the
        client's locally answered (push-hit) request."""
        session_id = message.session_id
        self._require_session(session_id, conn)
        if not conn.push or self.push_scheduler is None:
            raise InvalidRequestError(
                "push_ack on a connection that did not negotiate push",
                session_id=session_id,
            )
        self.push_scheduler.acknowledge(
            session_id, [ref.to_key() for ref in message.held]
        )
        if message.tile is None:
            return [await self.service.info(session_id)], False
        result = await self.service.local_hit(
            session_id, message.to_move(), message.tile.to_key()
        )
        # Payload-less by construction: the client asked because it
        # already holds the tile.
        response = protocol.TileResponse(
            session_id=session_id,
            tile=message.tile,
            latency_seconds=result.latency_seconds,
            hit=result.hit,
            phase=(
                result.phase.value if result.phase is not None else None
            ),
            prefetched=tuple(
                TileRef.from_key(k) for k in result.prefetched
            ),
            payload=None,
        )
        messages: list = list(await self._push_messages(session_id, conn))
        messages.append(response)
        return messages, False

    async def _push_messages(
        self, session_id: str, conn: _ConnectionState
    ) -> list[bytes]:
        """Run one push round for ``session_id``: queue the session's
        latest prediction list, then stream jobs until the fair-share
        byte budget or the in-flight cap stops the round.

        Returns the push frames *pre-encoded* in the connection's
        negotiated encoding: each frame is encoded exactly once — here,
        where its true wire size is charged against the push budget —
        and the serve loop passes the bytes through.  On binary
        connections a tile costs a fraction of its JSON size, so the
        same byte budget streams proportionally more tiles per round.
        """
        scheduler = self.push_scheduler
        assert scheduler is not None
        framing = self._wire_framing(conn)
        binary = conn.payload == "binary"
        messages: list[bytes] = []
        try:
            pending = await self.service.pending_predictions(session_id)
        except Exception:
            return messages  # session vanished mid-round; push nothing
        scheduler.begin_round(session_id, pending)
        generation = scheduler.generation(session_id)
        while (job := scheduler.next_job(session_id)) is not None:
            try:
                tile = await self.service.load_tile(job.key, PUSH_MODEL)
            except Exception:
                scheduler.reject(job)
                continue
            if job.fidelity < 1.0:
                # Coarse frame: block-averaged payload, a fraction of
                # the full tile's wire bytes.  The refinement job queued
                # behind it re-streams the tile at full resolution.
                tile = downsample_tile(tile, scheduler.reduction)
            push = PushTile(
                session_id=session_id,
                tile=TileRef.from_key(job.key),
                rank=job.rank,
                generation=generation,
                utility=job.utility,
                payload=TilePayload.from_tile(tile, binary=binary),
                fidelity=job.fidelity,
            )
            try:
                frame = encode_wire(push, framing, self.max_frame_bytes)
            except FrameTooLargeError:
                # This tile can never fit a frame; skip it without
                # charging the round's budget.
                scheduler.reject(job)
                continue
            if scheduler.skip_oversize(job, len(frame)):
                # Larger than a whole fair share: no future round could
                # stream it either — drop it for good instead of
                # re-queueing it forever.
                continue
            if not scheduler.commit(job, len(frame)):
                break  # round budget spent
            messages.append(frame)
        return messages

    async def _close_sessions(self, sessions: set[str]) -> None:
        """Drop the sessions a finished connection leaves behind."""
        for session_id in list(sessions):
            if self.push_scheduler is not None:
                self.push_scheduler.forget_session(session_id)
            with contextlib.suppress(Exception):
                await self.service.close_session(session_id)
        sessions.clear()


# ----------------------------------------------------------------------
# threaded server (for synchronous programs)
# ----------------------------------------------------------------------
class ThreadedSocketServer:
    """A :class:`ForeCacheSocketServer` on its own daemon thread/loop.

    Synchronous callers (examples, benchmarks, the conformance tests)
    get a live loopback endpoint with one call::

        with ThreadedSocketServer(pyramid, config, engine_factory=f) as server:
            transport = SocketTransport(*server.address, pyramid=pyramid)
            ...

    ``stop()`` (or leaving the ``with`` block) performs the server's
    graceful drain before the thread exits.
    """

    def __init__(
        self,
        pyramid: TilePyramid,
        config: ServiceConfig | None = None,
        *,
        engine_factory=None,
        framing: str = "lines",
        include_payload: bool = True,
        max_workers: int = 8,
        host: str | None = None,
        port: int | None = None,
        payloads: tuple[str, ...] | None = None,
    ) -> None:
        self._pyramid = pyramid
        self._config = config
        self._engine_factory = engine_factory
        self._framing = _check_framing(framing)
        self._include_payload = include_payload
        self._payloads = (
            _check_payloads(payloads) if payloads is not None else None
        )
        self._max_workers = max_workers
        self._host = host
        self._port = port
        self.address: tuple[str, int] | None = None
        #: The underlying asyncio server (set once :meth:`start` returns).
        self.server: ForeCacheSocketServer | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None

    def start(self) -> tuple[str, int]:
        """Start the server thread; returns the bound ``(host, port)``."""
        if self._thread is not None:
            raise RuntimeError("threaded socket server already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="forecache-socket-server",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._error is not None:
            raise self._error
        if self.address is None:
            raise RuntimeError("socket server thread failed to start")
        return self.address

    async def _main(self) -> None:
        server = None
        try:
            server = ForeCacheSocketServer.build(
                self._pyramid,
                self._config,
                engine_factory=self._engine_factory,
                max_workers=self._max_workers,
                framing=self._framing,
                include_payload=self._include_payload,
                host=self._host,
                port=self._port,
                payloads=self._payloads,
            )
            await server.start()
        except BaseException as exc:  # surface bind errors to start()
            if server is not None:
                # The built service owns thread pools; a failed bind
                # must not leak them.
                with contextlib.suppress(BaseException):
                    await server.aclose()
            self._error = exc
            self._ready.set()
            return
        self.server = server
        self.address = server.address
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._ready.set()
        await self._stop_event.wait()
        await server.aclose()

    def stop(self) -> None:
        """Drain and shut the server down.  Idempotent."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            stop_event = self._stop_event

            def _signal() -> None:
                stop_event.set()

            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(_signal)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "ThreadedSocketServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# synchronous client
# ----------------------------------------------------------------------
class SocketTransport(Transport):
    """Blocking-socket client transport; multiplexes sessions over one
    TCP connection.

    ``pyramid`` is the client's local copy of the tile-grid metadata
    (a real visualizer downloads it once at startup); it is only needed
    when a :class:`~repro.middleware.client.BrowsingSession` should
    validate moves client-side — trace replay works without it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        pyramid: TilePyramid | None = None,
        *,
        framing: str = "lines",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        timeout: float | None = 30.0,
        client_name: str = "forecache-python",
        push: bool = False,
        push_cache_capacity: int = 32,
        payload: str = "json",
        wire_tap: bool = False,
    ) -> None:
        self.pyramid = pyramid
        self._framing = _check_framing(framing)
        #: Framing actually on the wire right now — starts as the JSON
        #: framing, flips to "binary" if the handshake grants it.
        self._wire = self._framing
        # Outgoing limit; clamped to the server's advertised budget after
        # the handshake, so an over-limit request fails locally (and
        # recoverably) instead of tripping the server's decoder — which
        # hangs up and would take every session on this connection down.
        self._send_limit = max_frame_bytes
        self._decoder = FrameDecoder(framing, max_frame_bytes)
        self._pending: deque[str | bytes] = deque()
        self._lock = threading.RLock()
        # _closed is guarded by its own lock so close() can run while a
        # roundtrip holds self._lock blocked in recv.
        self._close_lock = threading.Lock()
        self._closed = False
        self._push_cache_capacity = push_cache_capacity
        #: Per-session push caches (only populated on push connections).
        self._push_caches: dict[str, PushCache] = {}
        #: True once both sides agreed on push (requested AND granted).
        self.push_enabled = False
        #: Payload encoding in force ("json" until the handshake grants
        #: more).
        self.payload = "json"
        #: Wire byte counters, always on (cheap integer adds) — the
        #: benchmark's bytes-per-tile numbers come straight from here.
        self.bytes_sent = 0
        self.bytes_received = 0
        #: With ``wire_tap=True`` every byte sent/received is also
        #: appended to these buffers (conformance tests assert whole
        #: streams byte-identical across negotiation outcomes).
        self.wire_sent: bytearray | None = bytearray() if wire_tap else None
        self.wire_received: bytearray | None = (
            bytearray() if wire_tap else None
        )
        requested = _check_payload(payload)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        try:
            welcome = self.roundtrip(
                Hello(
                    versions=SUPPORTED_VERSIONS,
                    client=client_name,
                    push=push,
                    payloads=(
                        ("json", "binary")
                        if requested == "binary"
                        else ("json",)
                    ),
                )
            )
            if isinstance(welcome, ErrorInfo):
                raise welcome.to_exception()
            if not isinstance(welcome, Welcome):
                raise ProtocolError(
                    f"expected welcome, got {type(welcome).__name__}"
                )
            if welcome.payload == "binary" and requested != "binary":
                raise ProtocolError(
                    "server granted the binary payload encoding this "
                    "client never offered"
                )
            if welcome.payload not in PAYLOADS:
                raise ProtocolError(
                    f"server granted unknown payload encoding "
                    f"{welcome.payload!r}"
                )
        except BaseException:
            self.close()
            raise
        #: Negotiated protocol revision and the server's advertised limits.
        self.server_version = welcome.version
        self.server_name = welcome.server
        self.server_max_frame_bytes = welcome.max_frame_bytes
        self.push_enabled = bool(push and welcome.push)
        self.payload = welcome.payload
        if self.payload == "binary":
            # The welcome itself arrived in the JSON framing; everything
            # after it — both directions — speaks binary framing.  The
            # strict request/reply pairing guarantees nothing else is
            # buffered at this point.
            self._wire = "binary"
            self._decoder.switch_to_binary()
        if welcome.max_frame_bytes > 0:
            self._send_limit = min(self._send_limit, welcome.max_frame_bytes)
            # Receiving is sized to the server's budget too: the server
            # never frames a reply above its advertised limit, so a
            # legitimate large response must not trip our decoder and
            # take the connection down.
            self._decoder.max_frame_bytes = max(
                self._decoder.max_frame_bytes, welcome.max_frame_bytes
            )

    # ------------------------------------------------------------------
    # wire plumbing
    # ------------------------------------------------------------------
    def roundtrip(self, message):
        """Send one message, return the decoded reply.

        The lock serializes concurrent sessions sharing this connection:
        the protocol is strict request/reply, so reply N always answers
        request N.  Any failure between send and a fully received reply
        (socket error, recv timeout, framing violation) leaves a reply
        possibly still in flight — the pairing is unrecoverable, so the
        transport closes itself rather than hand request N+1 the answer
        to request N; later calls raise ``SessionClosedError``.

        On push connections the server may precede the reply with
        ``push_tile`` frames; those are absorbed into the addressed
        session's :class:`PushCache` here, under the same lock, before
        the reply is returned.
        """
        with self._lock:
            if self._closed:
                raise SessionClosedError("socket transport is closed")
            # An over-limit request raises here, before any bytes move —
            # a local, recoverable failure that leaves the stream synced.
            frame = encode_wire(message, self._wire, self._send_limit)
            if not self.push_enabled:
                try:
                    self._sendall(frame)
                    raw = self._recv_frame()
                except BaseException:
                    self.close()  # RLock: safe while held
                    raise
                # The frame was fully consumed, so the stream stays in
                # sync even if its content fails to decode.
                return protocol.decode_wire(raw)
            try:
                self._sendall(frame)
                while True:
                    # Unlike the pull-only path, decode failures are
                    # fatal here: an undecodable frame might have been a
                    # push, so "which frame answers the request" is no
                    # longer knowable.
                    reply = protocol.decode_wire(self._recv_frame())
                    if isinstance(reply, PushTile):
                        self._absorb_push(reply)
                        continue
                    return reply
            except BaseException:
                self.close()  # RLock: safe while held
                raise

    def _sendall(self, frame: bytes) -> None:
        self._sock.sendall(frame)
        self.bytes_sent += len(frame)
        if self.wire_sent is not None:
            self.wire_sent += frame

    def _absorb_push(self, message: PushTile) -> None:
        """File one unsolicited pushed tile into its session's cache.

        A coarse frame (``fidelity < 1``) is upsampled back to full tile
        shape — the stand-in a client renders while the refinement frame
        is still in flight; the cache's fidelity tracking upgrades it in
        place when that frame lands.
        """
        cache = self._push_caches.get(message.session_id)
        if cache is not None and message.payload is not None:
            tile = message.payload.to_tile()
            if message.fidelity < 1.0:
                tile = upsample_tile(tile, int(round(1.0 / message.fidelity)))
            cache.put(tile, fidelity=message.fidelity)

    def _recv_frame(self) -> str | bytes:
        while not self._pending:
            data = self._sock.recv(_READ_CHUNK)
            if not data:
                raise ProtocolError("server closed the connection")
            self.bytes_received += len(data)
            if self.wire_received is not None:
                self.wire_received += data
            self._pending.extend(self._decoder.feed(data))
        return self._pending.popleft()

    # ------------------------------------------------------------------
    # Transport contract
    # ------------------------------------------------------------------
    def connect(
        self,
        engine: PredictionEngine | None = None,
        session_id: str | None = None,
    ) -> "SocketSessionClient":
        """Open a server-side session; returns its client stub.

        Engines live server-side (the server's ``engine_factory`` builds
        one per session); passing one here is a usage error.
        """
        if engine is not None:
            raise ValueError(
                "socket sessions get their engine from the server's "
                "engine_factory; pass engine=None"
            )
        reply = self.roundtrip(
            OpenSession(
                session_id=str(session_id) if session_id is not None else None
            )
        )
        if isinstance(reply, ErrorInfo):
            raise reply.to_exception()
        if not isinstance(reply, SessionInfo):
            raise ProtocolError(
                f"expected session_info, got {type(reply).__name__}"
            )
        push_cache: PushCache | None = None
        if self.push_enabled:
            push_cache = PushCache(capacity=self._push_cache_capacity)
            self._push_caches[reply.session_id] = push_cache
        return SocketSessionClient(self, reply.session_id, push_cache)

    def _drop_push_cache(self, session_id: str) -> None:
        self._push_caches.pop(session_id, None)

    def close(self) -> None:
        """Drop the connection (server closes its sessions).  Idempotent.

        Deliberately does *not* take the roundtrip lock: a watchdog
        thread must be able to abort a roundtrip blocked in ``recv``
        (closing the socket is what unblocks it); the interrupted
        roundtrip then surfaces an ``OSError`` and stays closed.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        with contextlib.suppress(OSError):
            self._sock.close()


class SocketSessionClient:
    """One session's client stub over a :class:`SocketTransport`.

    On push connections the stub consults its :class:`PushCache` before
    touching the wire: a held tile is answered locally and the server is
    told via ``push_ack`` (so its prediction engine still observes the
    move); every wire request carries the cache digest so the server
    never re-streams a held tile.
    """

    def __init__(
        self,
        transport: SocketTransport,
        session_id: str,
        push_cache: PushCache | None = None,
    ) -> None:
        self.transport = transport
        self.session_id = session_id
        self.push_cache = push_cache
        self._closed = False

    @property
    def pyramid(self) -> TilePyramid | None:
        return self.transport.pyramid

    def _digest(self) -> tuple[TileRef, ...]:
        assert self.push_cache is not None
        return tuple(TileRef.from_key(k) for k in self.push_cache.digest())

    def handle_request(self, move: Move | None, key: TileKey) -> TileResponse:
        """Round-trip one request over the socket (or answer it from the
        push cache when the tile was already streamed here)."""
        held: tuple[TileRef, ...] | None = None
        if self.push_cache is not None:
            tile = self.push_cache.get(key)
            if tile is not None:
                return self._local_hit(move, tile)
            held = self._digest()
        reply = self.transport.roundtrip(
            TileRequest(
                session_id=self.session_id,
                tile=TileRef.from_key(key),
                move=move.value if move is not None else None,
                held=held,
            )
        )
        return response_to_client(reply)

    def _local_hit(self, move: Move | None, tile) -> TileResponse:
        """Answer from the push cache; report the hit to the server."""
        reply = self.transport.roundtrip(
            PushAck(
                session_id=self.session_id,
                held=self._digest(),
                move=move.value if move is not None else None,
                tile=TileRef.from_key(tile.key),
            )
        )
        if isinstance(reply, ErrorInfo):
            raise reply.to_exception()
        if not isinstance(reply, protocol.TileResponse):
            raise ProtocolError(
                f"expected tile_response, got {type(reply).__name__}"
            )
        # The reply is payload-less by design — materialize the
        # in-process response from the tile this cache already holds.
        return TileResponse(
            tile=tile,
            latency_seconds=reply.latency_seconds,
            hit=reply.hit,
            phase=reply.to_phase(),
            prefetched=tuple(ref.to_key() for ref in reply.prefetched),
            # A held tile may still be the coarse stand-in awaiting its
            # refinement frame; report what this cache actually holds.
            fidelity=self.push_cache.fidelity(tile.key),
        )

    # The connection contract every front end shares.
    request = handle_request

    def close(self) -> None:
        """Close the server-side session.  Idempotent; tolerates a
        transport that already went away."""
        if self._closed:
            return
        self._closed = True
        self.transport._drop_push_cache(self.session_id)
        try:
            reply = self.transport.roundtrip(CloseSession(self.session_id))
        except (ProtocolError, OSError):
            return  # connection gone; the server reaps the session
        if isinstance(reply, ErrorInfo):
            exc = reply.to_exception()
            if not isinstance(exc, SessionNotFoundError):
                raise exc


# ----------------------------------------------------------------------
# asyncio client
# ----------------------------------------------------------------------
class AsyncSocketTransport:
    """Asyncio-streams client transport; the awaitable twin of
    :class:`SocketTransport`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        pyramid: TilePyramid | None,
        framing: str,
        max_frame_bytes: int,
    ) -> None:
        self.pyramid = pyramid
        self._reader = reader
        self._writer = writer
        self._framing = framing
        #: Framing actually on the wire (flips to "binary" post-handshake).
        self._wire = framing
        # Outgoing limit; clamped to the server's advertised budget after
        # the handshake (see SocketTransport for the rationale).
        self._send_limit = max_frame_bytes
        self._decoder = FrameDecoder(framing, max_frame_bytes)
        self._pending: deque[str | bytes] = deque()
        self._lock = asyncio.Lock()
        self._closed = False
        self.server_version: int | None = None
        self.server_name = ""
        self.server_max_frame_bytes = 0
        self._push_cache_capacity = 32
        #: Per-session push caches (only populated on push connections).
        self._push_caches: dict[str, PushCache] = {}
        #: True once both sides agreed on push (requested AND granted).
        self.push_enabled = False
        #: Payload encoding in force ("json" until the handshake grants
        #: more).
        self.payload = "json"
        #: Wire byte counters (always on; see SocketTransport).
        self.bytes_sent = 0
        self.bytes_received = 0
        self.wire_sent: bytearray | None = None
        self.wire_received: bytearray | None = None

    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        pyramid: TilePyramid | None = None,
        *,
        framing: str = "lines",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        client_name: str = "forecache-python-aio",
        push: bool = False,
        push_cache_capacity: int = 32,
        payload: str = "json",
        wire_tap: bool = False,
    ) -> "AsyncSocketTransport":
        """Connect and run the hello/welcome handshake."""
        _check_framing(framing)
        requested = _check_payload(payload)
        reader, writer = await asyncio.open_connection(host, port)
        self = cls(reader, writer, pyramid, framing, max_frame_bytes)
        self._push_cache_capacity = push_cache_capacity
        if wire_tap:
            self.wire_sent = bytearray()
            self.wire_received = bytearray()
        try:
            welcome = await self.roundtrip(
                Hello(
                    versions=SUPPORTED_VERSIONS,
                    client=client_name,
                    push=push,
                    payloads=(
                        ("json", "binary")
                        if requested == "binary"
                        else ("json",)
                    ),
                )
            )
            if isinstance(welcome, ErrorInfo):
                raise welcome.to_exception()
            if not isinstance(welcome, Welcome):
                raise ProtocolError(
                    f"expected welcome, got {type(welcome).__name__}"
                )
            if welcome.payload == "binary" and requested != "binary":
                raise ProtocolError(
                    "server granted the binary payload encoding this "
                    "client never offered"
                )
            if welcome.payload not in PAYLOADS:
                raise ProtocolError(
                    f"server granted unknown payload encoding "
                    f"{welcome.payload!r}"
                )
        except BaseException:
            await self.aclose()
            raise
        self.server_version = welcome.version
        self.server_name = welcome.server
        self.server_max_frame_bytes = welcome.max_frame_bytes
        self.push_enabled = bool(push and welcome.push)
        self.payload = welcome.payload
        if self.payload == "binary":
            # The welcome itself arrived in the JSON framing; everything
            # after it — both directions — speaks binary framing.
            self._wire = "binary"
            self._decoder.switch_to_binary()
        if welcome.max_frame_bytes > 0:
            self._send_limit = min(self._send_limit, welcome.max_frame_bytes)
            # See SocketTransport: receive limit follows the server's
            # advertised budget so a large-but-legal reply never kills
            # the connection.
            self._decoder.max_frame_bytes = max(
                self._decoder.max_frame_bytes, welcome.max_frame_bytes
            )
        return self

    async def roundtrip(self, message):
        """Send one message, await the decoded reply (serialized).

        A failure — or a *cancellation* — between send and a fully
        received reply leaves that reply in flight, permanently
        desynchronizing the strict request/reply pairing; the transport
        closes itself instead of letting the next request read a stale
        answer.  Later calls raise ``SessionClosedError``.
        """
        async with self._lock:
            if self._closed:
                raise SessionClosedError("socket transport is closed")
            # An over-limit request raises here, before any bytes move —
            # local and recoverable, the stream stays synced.
            frame = encode_wire(message, self._wire, self._send_limit)
            try:
                self._writer.write(frame)
                self.bytes_sent += len(frame)
                if self.wire_sent is not None:
                    self.wire_sent += frame
                await self._writer.drain()
                if not self.push_enabled:
                    raw = await self._recv_frame()
                else:
                    # Push connections absorb unsolicited push_tile
                    # frames until the actual reply arrives; a decode
                    # failure is fatal here (the undecodable frame might
                    # have been a push — pairing is unrecoverable).
                    while True:
                        reply = protocol.decode_wire(await self._recv_frame())
                        if isinstance(reply, PushTile):
                            self._absorb_push(reply)
                            continue
                        return reply
            except BaseException:
                # No awaits here: this must complete even while a
                # cancellation is being delivered.
                self._closed = True
                self._writer.close()
                raise
            # A fully consumed frame keeps the stream in sync even if
            # its content fails to decode.
            return protocol.decode_wire(raw)

    def _absorb_push(self, message: PushTile) -> None:
        """File one unsolicited pushed tile into its session's cache.

        A coarse frame (``fidelity < 1``) is upsampled back to full tile
        shape — the stand-in a client renders while the refinement frame
        is still in flight; the cache's fidelity tracking upgrades it in
        place when that frame lands.
        """
        cache = self._push_caches.get(message.session_id)
        if cache is not None and message.payload is not None:
            tile = message.payload.to_tile()
            if message.fidelity < 1.0:
                tile = upsample_tile(tile, int(round(1.0 / message.fidelity)))
            cache.put(tile, fidelity=message.fidelity)

    async def _recv_frame(self) -> str | bytes:
        while not self._pending:
            data = await self._reader.read(_READ_CHUNK)
            if not data:
                raise ProtocolError("server closed the connection")
            self.bytes_received += len(data)
            if self.wire_received is not None:
                self.wire_received += data
            self._pending.extend(self._decoder.feed(data))
        return self._pending.popleft()

    async def connect(
        self,
        engine: PredictionEngine | None = None,
        session_id: str | None = None,
    ) -> "AsyncSocketSessionClient":
        """Open a server-side session; returns its awaitable stub."""
        if engine is not None:
            raise ValueError(
                "socket sessions get their engine from the server's "
                "engine_factory; pass engine=None"
            )
        reply = await self.roundtrip(
            OpenSession(
                session_id=str(session_id) if session_id is not None else None
            )
        )
        if isinstance(reply, ErrorInfo):
            raise reply.to_exception()
        if not isinstance(reply, SessionInfo):
            raise ProtocolError(
                f"expected session_info, got {type(reply).__name__}"
            )
        push_cache: PushCache | None = None
        if self.push_enabled:
            push_cache = PushCache(capacity=self._push_cache_capacity)
            self._push_caches[reply.session_id] = push_cache
        return AsyncSocketSessionClient(self, reply.session_id, push_cache)

    def _drop_push_cache(self, session_id: str) -> None:
        self._push_caches.pop(session_id, None)

    async def aclose(self) -> None:
        """Drop the connection (server closes its sessions).  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        with contextlib.suppress(Exception):
            await self._writer.wait_closed()

    async def __aenter__(self) -> "AsyncSocketTransport":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()


class AsyncSocketSessionClient:
    """One session's awaitable stub over an :class:`AsyncSocketTransport`.

    Satisfies the ``AsyncBrowsingSession`` connection contract
    (``.pyramid`` + awaitable ``.request(move, key)``).
    """

    def __init__(
        self,
        transport: AsyncSocketTransport,
        session_id: str,
        push_cache: PushCache | None = None,
    ) -> None:
        self.transport = transport
        self.session_id = session_id
        self.push_cache = push_cache
        self._closed = False

    @property
    def pyramid(self) -> TilePyramid | None:
        return self.transport.pyramid

    def _digest(self) -> tuple[TileRef, ...]:
        assert self.push_cache is not None
        return tuple(TileRef.from_key(k) for k in self.push_cache.digest())

    async def request(self, move: Move | None, key: TileKey) -> TileResponse:
        """Round-trip one request over the socket (or answer it from the
        push cache when the tile was already streamed here)."""
        held: tuple[TileRef, ...] | None = None
        if self.push_cache is not None:
            tile = self.push_cache.get(key)
            if tile is not None:
                return await self._local_hit(move, tile)
            held = self._digest()
        reply = await self.transport.roundtrip(
            TileRequest(
                session_id=self.session_id,
                tile=TileRef.from_key(key),
                move=move.value if move is not None else None,
                held=held,
            )
        )
        return response_to_client(reply)

    async def _local_hit(self, move: Move | None, tile) -> TileResponse:
        """Answer from the push cache; report the hit to the server."""
        reply = await self.transport.roundtrip(
            PushAck(
                session_id=self.session_id,
                held=self._digest(),
                move=move.value if move is not None else None,
                tile=TileRef.from_key(tile.key),
            )
        )
        if isinstance(reply, ErrorInfo):
            raise reply.to_exception()
        if not isinstance(reply, protocol.TileResponse):
            raise ProtocolError(
                f"expected tile_response, got {type(reply).__name__}"
            )
        # The reply is payload-less by design — materialize the
        # in-process response from the tile this cache already holds.
        return TileResponse(
            tile=tile,
            latency_seconds=reply.latency_seconds,
            hit=reply.hit,
            phase=reply.to_phase(),
            prefetched=tuple(ref.to_key() for ref in reply.prefetched),
            # A held tile may still be the coarse stand-in awaiting its
            # refinement frame; report what this cache actually holds.
            fidelity=self.push_cache.fidelity(tile.key),
        )

    async def close(self) -> None:
        """Close the server-side session.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.transport._drop_push_cache(self.session_id)
        try:
            reply = await self.transport.roundtrip(
                CloseSession(self.session_id)
            )
        except (ProtocolError, OSError):
            return
        if isinstance(reply, ErrorInfo):
            exc = reply.to_exception()
            if not isinstance(exc, SessionNotFoundError):
                raise exc

    async def __aenter__(self) -> "AsyncSocketSessionClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
