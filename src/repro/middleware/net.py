"""The socket transport: the wire protocol over real TCP connections.

The paper's middleware sits between a browser and the DBMS; this module
is the boundary where bytes actually cross a network.  One
:class:`ForeCacheSocketServer` speaks the framed JSON protocol of
:mod:`repro.middleware.protocol` over asyncio TCP, backed by an
:class:`~repro.middleware.aio.AsyncForeCacheService`:

    service = AsyncForeCacheService.build(pyramid, config, engine_factory=...)
    server = ForeCacheSocketServer(service)
    host, port = await server.start()
    ...
    await server.aclose()          # drains in-flight requests

Each connection opens with a ``hello``/``welcome`` version negotiation,
then drives sessions through the ``open_session``/``close_session``
control envelope and ``tile_request`` frames.  Sessions are registered
*per connection*: a client can only address sessions it opened, and a
dropped connection closes its own sessions without disturbing anyone
else's.  Framing violations (malformed bytes, oversized frames) are
answered with their typed :class:`~repro.middleware.protocol.ErrorInfo`
and the connection is closed; a malformed *message* on a healthy frame
stream is answered and the connection keeps serving.

Clients come in both colors — :class:`SocketTransport` (blocking
sockets, implements the shared
:class:`~repro.middleware.transport.Transport` ABC) and
:class:`AsyncSocketTransport` (asyncio streams) — each multiplexing any
number of sessions over one connection.  The connections they return
satisfy the same contract as every other front end, so the one
``BrowsingSession`` / ``AsyncBrowsingSession`` replays traces over
loopback exactly as it does in process.  :class:`ThreadedSocketServer`
runs the whole server on a dedicated daemon thread for synchronous
programs (examples, benchmarks, tests).
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
import threading
from collections import deque
from dataclasses import replace

from repro.core.engine import PredictionEngine
from repro.middleware import protocol
from repro.middleware.aio import AsyncForeCacheService
from repro.middleware.config import ServiceConfig
from repro.middleware.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FRAMINGS,
    SUPPORTED_VERSIONS,
    CloseSession,
    ErrorInfo,
    FrameDecoder,
    FrameTooLargeError,
    Hello,
    InvalidRequestError,
    OpenSession,
    ProtocolError,
    SessionClosedError,
    SessionInfo,
    SessionNotFoundError,
    TileRef,
    TileRequest,
    Welcome,
    encode_frame,
    negotiate_version,
)
from repro.middleware.service import TileResponse
from repro.middleware.transport import Transport, response_to_client
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TilePyramid

_READ_CHUNK = 65536


def _check_framing(framing: str) -> str:
    if framing not in FRAMINGS:
        raise ValueError(f"framing must be one of {FRAMINGS}, got {framing!r}")
    return framing


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
class ForeCacheSocketServer:
    """Asyncio TCP server speaking the framed wire protocol."""

    def __init__(
        self,
        service: AsyncForeCacheService,
        *,
        host: str | None = None,
        port: int | None = None,
        framing: str = "lines",
        include_payload: bool = True,
        max_frame_bytes: int | None = None,
        server_name: str = "forecache-repro",
        owns_service: bool = False,
    ) -> None:
        config = service.config
        self.service = service
        self.host = host if host is not None else config.bind_host
        self.port = port if port is not None else config.bind_port
        self.framing = _check_framing(framing)
        #: Ship tile payloads in responses.  False mirrors
        #: ``InProcessTransport(include_payload=False)``: a metadata-only
        #: deployment whose clients resolve tile references out of band —
        #: the shipped session clients refuse to materialize such
        #: responses, with the same typed error.
        self.include_payload = include_payload
        self.max_frame_bytes = (
            max_frame_bytes
            if max_frame_bytes is not None
            else config.max_frame_bytes
        )
        self.server_name = server_name
        #: ``(host, port)`` actually bound, available after :meth:`start`
        #: (the configured port may be 0 = ephemeral).
        self.address: tuple[str, int] | None = None
        self._owns_service = owns_service
        self._server: asyncio.AbstractServer | None = None
        self._closing: asyncio.Event | None = None
        self._closed = False
        self._conn_tasks: set[asyncio.Task] = set()

    @classmethod
    def build(
        cls,
        pyramid: TilePyramid,
        config: ServiceConfig | None = None,
        *,
        engine_factory=None,
        max_workers: int = 8,
        **server_kwargs,
    ) -> "ForeCacheSocketServer":
        """Construct service and server in one call; the server owns
        (and on :meth:`aclose` closes) the service."""
        service = AsyncForeCacheService.build(
            pyramid,
            config,
            max_workers=max_workers,
            engine_factory=engine_factory,
        )
        return cls(service, owns_service=True, **server_kwargs)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("socket server already started")
        if self._closed:
            raise RuntimeError("socket server is closed")
        self._closing = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def aclose(self) -> None:
        """Graceful shutdown: stop accepting, let every in-flight
        request finish and its response flush, close all connections
        (their sessions with them), then — if this server built its
        service via :meth:`build` — close the service.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._closing is not None:
            self._closing.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._owns_service:
            await self.service.aclose()

    async def __aenter__(self) -> "ForeCacheSocketServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    @property
    def connection_count(self) -> int:
        """Connections currently being served."""
        return len(self._conn_tasks)

    # ------------------------------------------------------------------
    # per-connection serving
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            if task is not None:
                self._conn_tasks.discard(task)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        assert self._closing is not None
        sessions: set[str] = set()
        decoder = FrameDecoder(self.framing, self.max_frame_bytes)
        negotiated = False
        closing_wait = asyncio.ensure_future(self._closing.wait())
        try:
            while not self._closing.is_set():
                # Race the read against shutdown, so an *idle* connection
                # closes promptly on aclose() while a dispatch already in
                # progress (below, between reads) always runs to
                # completion and flushes its response first.
                read_task = asyncio.ensure_future(reader.read(_READ_CHUNK))
                await asyncio.wait(
                    {read_task, closing_wait},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not read_task.done():
                    read_task.cancel()
                    with contextlib.suppress(
                        asyncio.CancelledError, ConnectionError, OSError
                    ):
                        await read_task
                    break
                try:
                    data = read_task.result()
                except (ConnectionError, OSError):
                    break  # client vanished mid-read
                if not data:
                    break  # orderly EOF
                try:
                    frames = decoder.feed(data)
                except ProtocolError as exc:
                    # The byte stream itself is broken — answer with the
                    # typed error, then hang up.
                    await self._send(writer, ErrorInfo.from_exception(exc))
                    break
                fatal = False
                for text in frames:
                    reply, fatal, negotiated = await self._dispatch(
                        text, sessions, negotiated
                    )
                    if reply is not None and not await self._send(
                        writer, reply
                    ):
                        fatal = True
                    if fatal:
                        break
                if fatal:
                    break
        finally:
            closing_wait.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await closing_wait
            await self._close_sessions(sessions)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _send(self, writer: asyncio.StreamWriter, message) -> bool:
        """Frame and flush one message; False when the client is gone."""
        try:
            frame = encode_frame(
                protocol.encode(message), self.framing, self.max_frame_bytes
            )
        except FrameTooLargeError as exc:
            # The *response* outgrew the frame budget (giant tile
            # payload); report that instead of silently dropping it.
            frame = encode_frame(
                protocol.encode(ErrorInfo.from_exception(exc)), self.framing
            )
        try:
            writer.write(frame)
            await writer.drain()
            return True
        except (ConnectionError, OSError):
            return False

    async def _dispatch(
        self, text: str, sessions: set[str], negotiated: bool
    ):
        """Serve one frame; returns ``(reply, fatal, negotiated)``."""
        try:
            message = protocol.decode(text)
        except ProtocolError as exc:
            # One malformed message on a healthy frame stream: answer
            # and keep serving the connection.
            return ErrorInfo.from_exception(exc), False, negotiated
        if not negotiated:
            if not isinstance(message, Hello):
                error = InvalidRequestError(
                    "connection must open with a hello frame, got "
                    f"{type(message).__name__}"
                )
                return ErrorInfo.from_exception(error), True, False
        if isinstance(message, Hello):
            try:
                version = negotiate_version(message.versions)
            except ProtocolError as exc:
                return ErrorInfo.from_exception(exc), True, negotiated
            welcome = Welcome(
                version=version,
                server=self.server_name,
                max_frame_bytes=self.max_frame_bytes,
            )
            return welcome, False, True
        try:
            if isinstance(message, OpenSession):
                return await self._open_session(message, sessions)
            if isinstance(message, CloseSession):
                return await self._close_session(message, sessions)
            if isinstance(message, TileRequest):
                return await self._serve_request(message, sessions)
            error = InvalidRequestError(
                f"server cannot serve {type(message).__name__} messages"
            )
            return ErrorInfo.from_exception(error), False, True
        except Exception as exc:
            return ErrorInfo.from_exception(exc), False, True

    async def _open_session(self, message: OpenSession, sessions: set[str]):
        handle = await self.service.open_session(None, message.session_id)
        session_id = str(handle.session_id)
        sessions.add(session_id)
        return await handle.info(), False, True

    async def _close_session(self, message: CloseSession, sessions: set[str]):
        session_id = message.session_id
        if session_id not in sessions:
            # Per-connection isolation: a session another client opened
            # is invisible here, even if it exists on the service.
            raise SessionNotFoundError(
                f"session {session_id!r} is not open on this connection",
                session_id=session_id,
            )
        final = await self.service.info(session_id)
        await self.service.close_session(session_id)
        sessions.discard(session_id)
        return replace(final, open=False), False, True

    async def _serve_request(self, message: TileRequest, sessions: set[str]):
        session_id = message.session_id
        if session_id not in sessions:
            raise SessionNotFoundError(
                f"session {session_id!r} is not open on this connection",
                session_id=session_id,
            )
        result = await self.service.request(
            session_id, message.to_move(), message.tile.to_key()
        )
        response = protocol.TileResponse.from_result(
            session_id, result, include_payload=self.include_payload
        )
        return response, False, True

    async def _close_sessions(self, sessions: set[str]) -> None:
        """Drop the sessions a finished connection leaves behind."""
        for session_id in list(sessions):
            with contextlib.suppress(Exception):
                await self.service.close_session(session_id)
        sessions.clear()


# ----------------------------------------------------------------------
# threaded server (for synchronous programs)
# ----------------------------------------------------------------------
class ThreadedSocketServer:
    """A :class:`ForeCacheSocketServer` on its own daemon thread/loop.

    Synchronous callers (examples, benchmarks, the conformance tests)
    get a live loopback endpoint with one call::

        with ThreadedSocketServer(pyramid, config, engine_factory=f) as server:
            transport = SocketTransport(*server.address, pyramid=pyramid)
            ...

    ``stop()`` (or leaving the ``with`` block) performs the server's
    graceful drain before the thread exits.
    """

    def __init__(
        self,
        pyramid: TilePyramid,
        config: ServiceConfig | None = None,
        *,
        engine_factory=None,
        framing: str = "lines",
        include_payload: bool = True,
        max_workers: int = 8,
        host: str | None = None,
        port: int | None = None,
    ) -> None:
        self._pyramid = pyramid
        self._config = config
        self._engine_factory = engine_factory
        self._framing = _check_framing(framing)
        self._include_payload = include_payload
        self._max_workers = max_workers
        self._host = host
        self._port = port
        self.address: tuple[str, int] | None = None
        #: The underlying asyncio server (set once :meth:`start` returns).
        self.server: ForeCacheSocketServer | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None

    def start(self) -> tuple[str, int]:
        """Start the server thread; returns the bound ``(host, port)``."""
        if self._thread is not None:
            raise RuntimeError("threaded socket server already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="forecache-socket-server",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._error is not None:
            raise self._error
        if self.address is None:
            raise RuntimeError("socket server thread failed to start")
        return self.address

    async def _main(self) -> None:
        server = None
        try:
            server = ForeCacheSocketServer.build(
                self._pyramid,
                self._config,
                engine_factory=self._engine_factory,
                max_workers=self._max_workers,
                framing=self._framing,
                include_payload=self._include_payload,
                host=self._host,
                port=self._port,
            )
            await server.start()
        except BaseException as exc:  # surface bind errors to start()
            if server is not None:
                # The built service owns thread pools; a failed bind
                # must not leak them.
                with contextlib.suppress(BaseException):
                    await server.aclose()
            self._error = exc
            self._ready.set()
            return
        self.server = server
        self.address = server.address
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._ready.set()
        await self._stop_event.wait()
        await server.aclose()

    def stop(self) -> None:
        """Drain and shut the server down.  Idempotent."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            stop_event = self._stop_event

            def _signal() -> None:
                stop_event.set()

            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(_signal)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "ThreadedSocketServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# synchronous client
# ----------------------------------------------------------------------
class SocketTransport(Transport):
    """Blocking-socket client transport; multiplexes sessions over one
    TCP connection.

    ``pyramid`` is the client's local copy of the tile-grid metadata
    (a real visualizer downloads it once at startup); it is only needed
    when a :class:`~repro.middleware.client.BrowsingSession` should
    validate moves client-side — trace replay works without it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        pyramid: TilePyramid | None = None,
        *,
        framing: str = "lines",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        timeout: float | None = 30.0,
        client_name: str = "forecache-python",
    ) -> None:
        self.pyramid = pyramid
        self._framing = _check_framing(framing)
        # Outgoing limit; clamped to the server's advertised budget after
        # the handshake, so an over-limit request fails locally (and
        # recoverably) instead of tripping the server's decoder — which
        # hangs up and would take every session on this connection down.
        self._send_limit = max_frame_bytes
        self._decoder = FrameDecoder(framing, max_frame_bytes)
        self._pending: deque[str] = deque()
        self._lock = threading.RLock()
        # _closed is guarded by its own lock so close() can run while a
        # roundtrip holds self._lock blocked in recv.
        self._close_lock = threading.Lock()
        self._closed = False
        self._sock = socket.create_connection((host, port), timeout=timeout)
        try:
            welcome = self.roundtrip(
                Hello(versions=SUPPORTED_VERSIONS, client=client_name)
            )
            if isinstance(welcome, ErrorInfo):
                raise welcome.to_exception()
            if not isinstance(welcome, Welcome):
                raise ProtocolError(
                    f"expected welcome, got {type(welcome).__name__}"
                )
        except BaseException:
            self.close()
            raise
        #: Negotiated protocol revision and the server's advertised limits.
        self.server_version = welcome.version
        self.server_name = welcome.server
        self.server_max_frame_bytes = welcome.max_frame_bytes
        if welcome.max_frame_bytes > 0:
            self._send_limit = min(self._send_limit, welcome.max_frame_bytes)
            # Receiving is sized to the server's budget too: the server
            # never frames a reply above its advertised limit, so a
            # legitimate large response must not trip our decoder and
            # take the connection down.
            self._decoder.max_frame_bytes = max(
                self._decoder.max_frame_bytes, welcome.max_frame_bytes
            )

    # ------------------------------------------------------------------
    # wire plumbing
    # ------------------------------------------------------------------
    def roundtrip(self, message):
        """Send one message, return the decoded reply.

        The lock serializes concurrent sessions sharing this connection:
        the protocol is strict request/reply, so reply N always answers
        request N.  Any failure between send and a fully received reply
        (socket error, recv timeout, framing violation) leaves a reply
        possibly still in flight — the pairing is unrecoverable, so the
        transport closes itself rather than hand request N+1 the answer
        to request N; later calls raise ``SessionClosedError``.
        """
        with self._lock:
            if self._closed:
                raise SessionClosedError("socket transport is closed")
            # An over-limit request raises here, before any bytes move —
            # a local, recoverable failure that leaves the stream synced.
            frame = encode_frame(
                protocol.encode(message), self._framing, self._send_limit
            )
            try:
                self._sock.sendall(frame)
                text = self._recv_frame()
            except BaseException:
                self.close()  # RLock: safe while held
                raise
            # The frame was fully consumed, so the stream stays in sync
            # even if its content fails to decode.
            return protocol.decode(text)

    def _recv_frame(self) -> str:
        while not self._pending:
            data = self._sock.recv(_READ_CHUNK)
            if not data:
                raise ProtocolError("server closed the connection")
            self._pending.extend(self._decoder.feed(data))
        return self._pending.popleft()

    # ------------------------------------------------------------------
    # Transport contract
    # ------------------------------------------------------------------
    def connect(
        self,
        engine: PredictionEngine | None = None,
        session_id: str | None = None,
    ) -> "SocketSessionClient":
        """Open a server-side session; returns its client stub.

        Engines live server-side (the server's ``engine_factory`` builds
        one per session); passing one here is a usage error.
        """
        if engine is not None:
            raise ValueError(
                "socket sessions get their engine from the server's "
                "engine_factory; pass engine=None"
            )
        reply = self.roundtrip(
            OpenSession(
                session_id=str(session_id) if session_id is not None else None
            )
        )
        if isinstance(reply, ErrorInfo):
            raise reply.to_exception()
        if not isinstance(reply, SessionInfo):
            raise ProtocolError(
                f"expected session_info, got {type(reply).__name__}"
            )
        return SocketSessionClient(self, reply.session_id)

    def close(self) -> None:
        """Drop the connection (server closes its sessions).  Idempotent.

        Deliberately does *not* take the roundtrip lock: a watchdog
        thread must be able to abort a roundtrip blocked in ``recv``
        (closing the socket is what unblocks it); the interrupted
        roundtrip then surfaces an ``OSError`` and stays closed.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        with contextlib.suppress(OSError):
            self._sock.close()


class SocketSessionClient:
    """One session's client stub over a :class:`SocketTransport`."""

    def __init__(self, transport: SocketTransport, session_id: str) -> None:
        self.transport = transport
        self.session_id = session_id
        self._closed = False

    @property
    def pyramid(self) -> TilePyramid | None:
        return self.transport.pyramid

    def handle_request(self, move: Move | None, key: TileKey) -> TileResponse:
        """Round-trip one request over the socket."""
        reply = self.transport.roundtrip(
            TileRequest(
                session_id=self.session_id,
                tile=TileRef.from_key(key),
                move=move.value if move is not None else None,
            )
        )
        return response_to_client(reply)

    # The connection contract every front end shares.
    request = handle_request

    def close(self) -> None:
        """Close the server-side session.  Idempotent; tolerates a
        transport that already went away."""
        if self._closed:
            return
        self._closed = True
        try:
            reply = self.transport.roundtrip(CloseSession(self.session_id))
        except (ProtocolError, OSError):
            return  # connection gone; the server reaps the session
        if isinstance(reply, ErrorInfo):
            exc = reply.to_exception()
            if not isinstance(exc, SessionNotFoundError):
                raise exc


# ----------------------------------------------------------------------
# asyncio client
# ----------------------------------------------------------------------
class AsyncSocketTransport:
    """Asyncio-streams client transport; the awaitable twin of
    :class:`SocketTransport`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        pyramid: TilePyramid | None,
        framing: str,
        max_frame_bytes: int,
    ) -> None:
        self.pyramid = pyramid
        self._reader = reader
        self._writer = writer
        self._framing = framing
        # Outgoing limit; clamped to the server's advertised budget after
        # the handshake (see SocketTransport for the rationale).
        self._send_limit = max_frame_bytes
        self._decoder = FrameDecoder(framing, max_frame_bytes)
        self._pending: deque[str] = deque()
        self._lock = asyncio.Lock()
        self._closed = False
        self.server_version: int | None = None
        self.server_name = ""
        self.server_max_frame_bytes = 0

    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        pyramid: TilePyramid | None = None,
        *,
        framing: str = "lines",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        client_name: str = "forecache-python-aio",
    ) -> "AsyncSocketTransport":
        """Connect and run the hello/welcome handshake."""
        _check_framing(framing)
        reader, writer = await asyncio.open_connection(host, port)
        self = cls(reader, writer, pyramid, framing, max_frame_bytes)
        try:
            welcome = await self.roundtrip(
                Hello(versions=SUPPORTED_VERSIONS, client=client_name)
            )
            if isinstance(welcome, ErrorInfo):
                raise welcome.to_exception()
            if not isinstance(welcome, Welcome):
                raise ProtocolError(
                    f"expected welcome, got {type(welcome).__name__}"
                )
        except BaseException:
            await self.aclose()
            raise
        self.server_version = welcome.version
        self.server_name = welcome.server
        self.server_max_frame_bytes = welcome.max_frame_bytes
        if welcome.max_frame_bytes > 0:
            self._send_limit = min(self._send_limit, welcome.max_frame_bytes)
            # See SocketTransport: receive limit follows the server's
            # advertised budget so a large-but-legal reply never kills
            # the connection.
            self._decoder.max_frame_bytes = max(
                self._decoder.max_frame_bytes, welcome.max_frame_bytes
            )
        return self

    async def roundtrip(self, message):
        """Send one message, await the decoded reply (serialized).

        A failure — or a *cancellation* — between send and a fully
        received reply leaves that reply in flight, permanently
        desynchronizing the strict request/reply pairing; the transport
        closes itself instead of letting the next request read a stale
        answer.  Later calls raise ``SessionClosedError``.
        """
        async with self._lock:
            if self._closed:
                raise SessionClosedError("socket transport is closed")
            # An over-limit request raises here, before any bytes move —
            # local and recoverable, the stream stays synced.
            frame = encode_frame(
                protocol.encode(message), self._framing, self._send_limit
            )
            try:
                self._writer.write(frame)
                await self._writer.drain()
                text = await self._recv_frame()
            except BaseException:
                # No awaits here: this must complete even while a
                # cancellation is being delivered.
                self._closed = True
                self._writer.close()
                raise
            # A fully consumed frame keeps the stream in sync even if
            # its content fails to decode.
            return protocol.decode(text)

    async def _recv_frame(self) -> str:
        while not self._pending:
            data = await self._reader.read(_READ_CHUNK)
            if not data:
                raise ProtocolError("server closed the connection")
            self._pending.extend(self._decoder.feed(data))
        return self._pending.popleft()

    async def connect(
        self,
        engine: PredictionEngine | None = None,
        session_id: str | None = None,
    ) -> "AsyncSocketSessionClient":
        """Open a server-side session; returns its awaitable stub."""
        if engine is not None:
            raise ValueError(
                "socket sessions get their engine from the server's "
                "engine_factory; pass engine=None"
            )
        reply = await self.roundtrip(
            OpenSession(
                session_id=str(session_id) if session_id is not None else None
            )
        )
        if isinstance(reply, ErrorInfo):
            raise reply.to_exception()
        if not isinstance(reply, SessionInfo):
            raise ProtocolError(
                f"expected session_info, got {type(reply).__name__}"
            )
        return AsyncSocketSessionClient(self, reply.session_id)

    async def aclose(self) -> None:
        """Drop the connection (server closes its sessions).  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        with contextlib.suppress(Exception):
            await self._writer.wait_closed()

    async def __aenter__(self) -> "AsyncSocketTransport":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()


class AsyncSocketSessionClient:
    """One session's awaitable stub over an :class:`AsyncSocketTransport`.

    Satisfies the ``AsyncBrowsingSession`` connection contract
    (``.pyramid`` + awaitable ``.request(move, key)``).
    """

    def __init__(
        self, transport: AsyncSocketTransport, session_id: str
    ) -> None:
        self.transport = transport
        self.session_id = session_id
        self._closed = False

    @property
    def pyramid(self) -> TilePyramid | None:
        return self.transport.pyramid

    async def request(self, move: Move | None, key: TileKey) -> TileResponse:
        """Round-trip one request over the socket."""
        reply = await self.transport.roundtrip(
            TileRequest(
                session_id=self.session_id,
                tile=TileRef.from_key(key),
                move=move.value if move is not None else None,
            )
        )
        return response_to_client(reply)

    async def close(self) -> None:
        """Close the server-side session.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            reply = await self.transport.roundtrip(
                CloseSession(self.session_id)
            )
        except (ProtocolError, OSError):
            return
        if isinstance(reply, ErrorInfo):
            exc = reply.to_exception()
            if not isinstance(exc, SessionNotFoundError):
                raise exc

    async def __aenter__(self) -> "AsyncSocketSessionClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
