"""Background prefetch scheduling.

The paper's central claim is that prefetching overlaps with the user's
*think time*: the middleware fetches the prediction engine's ordered
list ``P`` while the user studies the tile they just received, so
prefetch work never counts toward response latency.  The synchronous
server realizes that overlap only in virtual time; this module makes it
physical.  A :class:`PrefetchScheduler` owns a small worker pool and
runs prefetch jobs off the request path:

- ``schedule()`` turns a prediction round into one :class:`PrefetchJob`
  per tile and hands the jobs to the pool in priority order;
- each call supersedes the session's previous round — that session's
  generation counter is bumped, and workers drop any queued job from an
  older generation before touching the DBMS (*stale cancellation*);
- the actual tile loads go through
  :meth:`~repro.cache.manager.CacheManager.prefetch_one`, so jobs
  coalesce with concurrent user requests for the same tile and with
  other sessions' jobs.

Several sessions (a :class:`~repro.middleware.multiuser.MultiUserServer`)
share one scheduler, one worker pool, and one cache: each session
cancels only its own stale work, while the coalescing table dedupes
across sessions.
"""

from __future__ import annotations

import threading
from collections.abc import Hashable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.cache.manager import CacheManager
from repro.tiles.key import TileKey
from repro.tiles.tile import DataTile

#: Job lifecycle states.
PENDING = "pending"
DONE = "done"
CANCELLED = "cancelled"
FAILED = "failed"


@dataclass
class PrefetchJob:
    """One tile of one session's prefetch list, queued for a worker."""

    key: TileKey
    model: str
    rank: int
    session_id: Hashable
    generation: int
    state: str = PENDING
    tile: DataTile | None = field(default=None, repr=False)
    error: BaseException | None = field(default=None, repr=False)

    @property
    def finished(self) -> bool:
        return self.state != PENDING


class PrefetchScheduler:
    """Runs prefetch lists on a worker pool, cancelling stale rounds.

    One instance serves any number of sessions.  All public methods are
    thread-safe.
    """

    def __init__(
        self,
        cache_manager: CacheManager,
        max_workers: int = 2,
        name: str = "prefetch",
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"worker pool needs >= 1 workers, got {max_workers}")
        self.cache_manager = cache_manager
        self.max_workers = max_workers
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix=name
        )
        self._lock = threading.Lock()
        # Generations are drawn from one global counter: a session's
        # entry maps to its latest round, and a popped entry (cancel)
        # matches no job.  Global uniqueness means a cancelled-then-
        # rescheduled session can never collide with its old jobs.
        self._next_generation = 0
        self._generation: dict[Hashable, int] = {}
        self._pending = 0
        self._idle = threading.Event()
        self._idle.set()
        self._closed = False
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_cancelled = 0
        self.jobs_failed = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        predictions,
        session_id: Hashable = 0,
    ) -> list[PrefetchJob]:
        """Queue one session's new prefetch round, superseding its last.

        ``predictions`` is a :class:`~repro.core.engine.PredictionResult`
        (consumed via its ``ranked()`` triples) or a plain ordered
        ``(tile, model)`` sequence.  The session's generation is bumped
        first, so queued jobs from its previous round become stale and
        are dropped by whichever worker picks them up.  Returns the
        jobs, in priority order.
        """
        if hasattr(predictions, "ranked"):
            ranked = predictions.ranked()
        else:
            ranked = [
                (rank, key, model)
                for rank, (key, model) in enumerate(predictions)
            ]
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is shut down")
            self._next_generation += 1
            generation = self._next_generation
            self._generation[session_id] = generation
            jobs = [
                PrefetchJob(
                    key=key,
                    model=model,
                    rank=rank,
                    session_id=session_id,
                    generation=generation,
                )
                for rank, key, model in ranked
            ]
            self.jobs_submitted += len(jobs)
            self._pending += len(jobs)
            if self._pending:
                self._idle.clear()
        for job in jobs:
            try:
                self._executor.submit(self._run, job)
            except RuntimeError:
                # Lost the race with shutdown(): the request was already
                # served, so drop the job instead of failing the caller.
                job.state = CANCELLED
                with self._lock:
                    self.jobs_cancelled += 1
                    self._pending -= 1
                    if self._pending == 0:
                        self._idle.set()
        return jobs

    def cancel_session(self, session_id: Hashable) -> None:
        """Drop a session's queued jobs and forget the session."""
        with self._lock:
            self._generation.pop(session_id, None)

    # ------------------------------------------------------------------
    # worker body
    # ------------------------------------------------------------------
    def _stale(self, job: PrefetchJob) -> bool:
        with self._lock:
            return self._generation.get(job.session_id) != job.generation

    def _run(self, job: PrefetchJob) -> None:
        try:
            if self._stale(job):
                job.state = CANCELLED
                with self._lock:
                    self.jobs_cancelled += 1
                return
            try:
                job.tile = self.cache_manager.prefetch_one(job.key, job.model)
            except BaseException as exc:
                job.error = exc
                job.state = FAILED
                with self._lock:
                    self.jobs_failed += 1
                return
            job.state = DONE
            with self._lock:
                self.jobs_completed += 1
        finally:
            with self._lock:
                self._pending -= 1
                if self._pending == 0:
                    self._idle.set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` has run."""
        with self._lock:
            return self._closed

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until every queued job has run (or been dropped).

        Returns False if ``timeout`` expired first.  Mainly for tests
        and benchmarks — live servers never need to drain.
        """
        return self._idle.wait(timeout)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=wait, cancel_futures=True)
        # Futures cancelled before running never decrement _pending;
        # unblock any drainer.
        self._idle.set()

    def __enter__(self) -> "PrefetchScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
