"""Background prefetch scheduling with rank-aware fair admission.

The paper's central claim is that prefetching overlaps with the user's
*think time*: the middleware fetches the prediction engine's ordered
list ``P`` while the user studies the tile they just received, so
prefetch work never counts toward response latency.  The synchronous
server realizes that overlap only in virtual time; this module makes it
physical.  A :class:`PrefetchScheduler` owns a small worker pool that
drains an explicit priority queue:

- ``schedule()`` turns a prediction round into one :class:`PrefetchJob`
  per tile and pushes the jobs onto a shared heap;
- under ``admission="priority"`` the heap is ordered by
  ``(rank, session deficit, generation)`` — every session's top-ranked
  prediction is fetched before anyone's low-rank tail, equally-ranked
  jobs favor the session the pool has served least (deficit
  round-robin), and among those the freshest round wins;
  ``admission="fifo"`` preserves plain arrival order (the pre-priority
  behavior, kept as a benchmark baseline);
- each call supersedes the session's previous round — that session's
  generation counter is bumped, and a worker popping a job from an
  older generation drops it *at pop time*, so stale work never occupies
  a worker slot or touches the DBMS (*stale cancellation*);
- the actual tile loads go through
  :meth:`~repro.cache.manager.CacheManager.prefetch_one`, so jobs
  coalesce with concurrent user requests for the same tile and with
  other sessions' jobs.

Several sessions (a :class:`~repro.middleware.service.ForeCacheService`)
share one scheduler, one worker pool, and one cache: each session
cancels only its own stale work, while the coalescing table dedupes
across sessions.

Fairness is *deficit round-robin at round granularity*: the scheduler
counts jobs executed per session, and a job's fairness key is its
session's count at admission time, floored to the least-served active
session so a newcomer cannot monopolize the pool.  Rank dominates — a
busy session's rank-0 tile still beats an idle session's rank-5 tile —
because a top prediction is overwhelmingly more likely to be the next
request (Figure 12's accuracy↔latency line).

With a bound :class:`~repro.core.popularity.SharedHotspotRegistry`
(``PrefetchPolicy(shared_hotspots="boost")``) priority admission also
consults the *global* signal: a job whose tile is currently among the
registry's hottest gets its queue rank boosted by ``hotspot_boost``
steps, because a globally popular tile pays off even if this session's
model ranked it low — some session will ask for it, and the shared
cache serves everyone.  The job's own ``rank`` is untouched (it still
reports the model's opinion); only the heap key moves.
"""

from __future__ import annotations

import asyncio
import heapq
import threading
from collections.abc import Hashable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cache.manager import CacheManager
from repro.tiles.key import TileKey
from repro.tiles.tile import DataTile

if TYPE_CHECKING:
    from repro.core.popularity import SharedHotspotRegistry

#: Job lifecycle states.
PENDING = "pending"
DONE = "done"
CANCELLED = "cancelled"
FAILED = "failed"

#: Queue disciplines: rank-aware fair priority (default) or arrival
#: order (the pre-priority baseline, kept for benchmarks).
ADMISSION_MODES = ("priority", "fifo")


@dataclass
class PrefetchJob:
    """One tile of one session's prefetch list, queued for a worker."""

    key: TileKey
    model: str
    rank: int
    session_id: Hashable
    generation: int
    state: str = PENDING
    tile: DataTile | None = field(default=None, repr=False)
    error: BaseException | None = field(default=None, repr=False)
    #: Position in the scheduler's global completion order (1-based),
    #: set when the job reaches ``DONE``.  Lets tests and benchmarks
    #: assert rank-priority without timestamping.
    finish_order: int | None = field(default=None, repr=False)

    @property
    def finished(self) -> bool:
        return self.state != PENDING


class PrefetchScheduler:
    """Runs prefetch lists on a worker pool, cancelling stale rounds.

    One instance serves any number of sessions.  All public methods are
    thread-safe.
    """

    def __init__(
        self,
        cache_manager: CacheManager,
        max_workers: int = 2,
        name: str = "prefetch",
        admission: str = "priority",
        hotspot_registry: "SharedHotspotRegistry | None" = None,
        hotspot_top_n: int = 8,
        hotspot_boost: int = 2,
        shed_queue_depth: int | None = None,
        shed_keep_k: int = 2,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"worker pool needs >= 1 workers, got {max_workers}")
        if admission not in ADMISSION_MODES:
            raise ValueError(
                f"admission must be one of {ADMISSION_MODES}, got {admission!r}"
            )
        if hotspot_top_n < 1:
            raise ValueError(f"hotspot_top_n must be >= 1, got {hotspot_top_n}")
        if hotspot_boost < 0:
            raise ValueError(f"hotspot_boost must be >= 0, got {hotspot_boost}")
        if shed_queue_depth is not None and shed_queue_depth < 1:
            raise ValueError(
                f"shed_queue_depth must be >= 1, got {shed_queue_depth}"
            )
        if shed_keep_k < 1:
            raise ValueError(f"shed_keep_k must be >= 1, got {shed_keep_k}")
        self.cache_manager = cache_manager
        self.max_workers = max_workers
        self.admission = admission
        self.hotspot_registry = hotspot_registry
        self.hotspot_top_n = hotspot_top_n
        self.hotspot_boost = hotspot_boost
        #: Overload shedding: once this many jobs are pending, a new
        #: round admits only its ``shed_keep_k`` best-ranked tiles and
        #: drops the low-rank tail (None = never shed, the default —
        #: bit-identical to the pre-shedding scheduler).
        self.shed_queue_depth = shed_queue_depth
        self.shed_keep_k = shed_keep_k
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        #: Heap of ``(sort_key, job)``; sort keys are unique (they end
        #: in an admission sequence number), so jobs are never compared.
        self._heap: list[tuple[tuple, PrefetchJob]] = []
        self._seq = 0
        self._finish_seq = 0
        # Generations are drawn from one global counter: a session's
        # entry maps to its latest round, and a popped entry (cancel)
        # matches no job.  Global uniqueness means a cancelled-then-
        # rescheduled session can never collide with its old jobs.
        self._next_generation = 0
        self._generation: dict[Hashable, int] = {}
        #: Deficit round-robin state: jobs this session has had executed.
        self._deficit: dict[Hashable, int] = {}
        self._pending = 0
        self._idle = threading.Event()
        self._idle.set()
        self._closed = False
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_cancelled = 0
        self.jobs_failed = 0
        self.jobs_shed = 0
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"{name}-{i}", daemon=True
            )
            for i in range(max_workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        predictions,
        session_id: Hashable = 0,
    ) -> list[PrefetchJob]:
        """Queue one session's new prefetch round, superseding its last.

        ``predictions`` is a :class:`~repro.core.engine.PredictionResult`
        (consumed via its ``ranked()`` triples) or a plain ordered
        ``(tile, model)`` sequence.  The session's generation is bumped
        first, so queued jobs from its previous round become stale and
        are dropped by whichever worker pops them.  Returns the jobs,
        in priority order.
        """
        if hasattr(predictions, "ranked"):
            ranked = predictions.ranked()
        else:
            ranked = [
                (rank, key, model)
                for rank, (key, model) in enumerate(predictions)
            ]
        # One registry read per round, outside our lock (the registry
        # has its own striped locks): the hot set is a snapshot — jobs
        # queued this round keep the boost they were admitted with.
        hot: frozenset[TileKey] = frozenset()
        if (
            self.hotspot_registry is not None
            and self.hotspot_boost > 0
            and self.admission == "priority"
        ):
            hot = frozenset(self.hotspot_registry.hot_keys(self.hotspot_top_n))
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is shut down")
            self._next_generation += 1
            generation = self._next_generation
            # Floor the session's deficit to the least-served *other*
            # active session: a newcomer starts level with the pack
            # instead of at zero (which would let it starve long-running
            # sessions at equal rank until it "caught up").
            floor = min(
                (
                    self._deficit.get(s, 0)
                    for s in self._generation
                    if s != session_id
                ),
                default=0,
            )
            self._generation[session_id] = generation
            deficit = max(self._deficit.get(session_id, 0), floor)
            self._deficit[session_id] = deficit
            if (
                self.shed_queue_depth is not None
                and self._pending >= self.shed_queue_depth
            ):
                # Overloaded: the backlog already exceeds what the pool
                # can drain before this round goes stale, so queueing the
                # low-rank tail only adds pop-time cancellation work.
                # Keep the few predictions most likely to be the next
                # request; shed the rest *at admission*, before they ever
                # hold a heap slot.
                kept = [
                    entry for entry in ranked if entry[0] < self.shed_keep_k
                ]
                self.jobs_shed += len(ranked) - len(kept)
                ranked = kept
            jobs = [
                PrefetchJob(
                    key=key,
                    model=model,
                    rank=rank,
                    session_id=session_id,
                    generation=generation,
                )
                for rank, key, model in ranked
            ]
            for job in jobs:
                self._seq += 1
                if self.admission == "priority":
                    rank = job.rank
                    if job.key in hot:
                        rank = max(0, rank - self.hotspot_boost)
                    sort_key = (rank, deficit, -generation, self._seq)
                else:
                    sort_key = (self._seq,)
                heapq.heappush(self._heap, (sort_key, job))
            self.jobs_submitted += len(jobs)
            self._pending += len(jobs)
            if self._pending:
                self._idle.clear()
            self._work.notify(len(jobs))
        return jobs

    @property
    def queue_depth(self) -> int:
        """Jobs queued or running right now (the overload load signal)."""
        with self._lock:
            return self._pending

    def cancel_session(self, session_id: Hashable) -> None:
        """Drop a session's queued jobs and forget the session.

        Queued jobs are cancelled lazily: with no generation entry to
        match, workers drop them at pop time without touching the DBMS.
        """
        with self._lock:
            self._generation.pop(session_id, None)
            self._deficit.pop(session_id, None)

    # ------------------------------------------------------------------
    # worker body
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._lock:
                while not self._heap and not self._closed:
                    self._work.wait()
                if not self._heap:
                    return  # closed, queue drained
                _, job = heapq.heappop(self._heap)
                if self._generation.get(job.session_id) != job.generation:
                    # Stale (superseded or cancelled session): dropped
                    # here, at pop time, so it never burns a worker slot.
                    job.state = CANCELLED
                    self.jobs_cancelled += 1
                    self._finish_one_locked()
                    continue
                self._deficit[job.session_id] = (
                    self._deficit.get(job.session_id, 0) + 1
                )
            try:
                job.tile = self.cache_manager.prefetch_one(job.key, job.model)
            except BaseException as exc:  # worker must survive any load error
                job.error = exc
                job.state = FAILED
                with self._lock:
                    self.jobs_failed += 1
                    self._finish_one_locked()
                continue
            with self._lock:
                self._finish_seq += 1
                job.finish_order = self._finish_seq
                job.state = DONE
                self.jobs_completed += 1
                self._finish_one_locked()

    def _finish_one_locked(self) -> None:
        self._pending -= 1
        if self._pending == 0:
            self._idle.set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` has run."""
        with self._lock:
            return self._closed

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until every queued job has run (or been dropped).

        Returns False if ``timeout`` expired first.  Mainly for tests
        and benchmarks — live servers never need to drain.
        """
        return self._idle.wait(timeout)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool.  Idempotent.

        Queued jobs are cancelled — marked ``CANCELLED``, counted in
        ``jobs_cancelled``, and reconciled against the pending count, so
        no job is ever stranded ``PENDING`` and ``wait_idle`` observes a
        truthful drain.  Jobs already running finish; with ``wait=True``
        the workers are joined.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            dropped = [job for _, job in self._heap]
            self._heap.clear()
            for job in dropped:
                job.state = CANCELLED
            self.jobs_cancelled += len(dropped)
            self._pending -= len(dropped)
            if self._pending == 0:
                self._idle.set()
            self._work.notify_all()
        if wait:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "PrefetchScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class AsyncPrefetchScheduler:
    """The event-loop face of a :class:`PrefetchScheduler`.

    ``schedule`` and ``cancel_session`` are already non-blocking — they
    take the scheduler lock only for heap pushes and dict updates, never
    across a tile load — so the loop calls them inline with no thread
    hop.  Only the genuinely blocking operations (:meth:`wait_idle`,
    :meth:`shutdown`) hop to the executor.
    """

    def __init__(self, scheduler: PrefetchScheduler, executor=None) -> None:
        self.scheduler = scheduler
        self._executor = executor

    @property
    def closed(self) -> bool:
        return self.scheduler.closed

    def schedule(
        self, predictions, session_id: Hashable = 0
    ) -> list[PrefetchJob]:
        """Queue a prediction round inline (no awaiting, no hop)."""
        return self.scheduler.schedule(predictions, session_id=session_id)

    def cancel_session(self, session_id: Hashable) -> None:
        """Drop a session's queued jobs inline."""
        self.scheduler.cancel_session(session_id)

    async def wait_idle(self, timeout: float | None = None) -> bool:
        """Await the drain of every queued job without blocking the loop."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, self.scheduler.wait_idle, timeout
        )

    async def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool off-loop.  Idempotent."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, self.scheduler.shutdown, wait
        )
