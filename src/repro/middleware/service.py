"""The unified session-oriented serving facade.

:class:`ForeCacheService` is the single entry point the paper's Figure 5
puts between visualizer and DBMS.  One service owns one middleware cache
(and, in background mode, one prefetch worker pool); *sessions* are
first-class:

    service = ForeCacheService(pyramid, ServiceConfig(...))
    session = service.open_session(engine)
    response = session.request(move, key)     # -> TileResponse
    session.close()

Every session gets its own prediction engine (history, ROI, phase are
per user) and its own latency recorder, while all sessions share the
cache — a tile fetched for one user serves everyone.  With
``PrefetchPolicy(share_budget=True)`` the prefetch budget ``k`` is split
fairly across open sessions and, in sync mode, every request refills the
shared prefetch region with all sessions' predictions interleaved — the
multi-user scheme of Section 6.2.

Beyond shared *tiles*, sessions can share the *signal*:
``PrefetchPolicy(shared_hotspots="observe" | "boost")`` gives the
service one :class:`~repro.core.popularity.SharedHotspotRegistry` that
every session's requests feed; under ``"boost"`` live
:class:`~repro.recommenders.hotspot.HotspotRecommender` instances and
the background scheduler consult it, so one user's traffic steers
another user's prefetching (see README "Shared prediction").

The legacy :class:`~repro.middleware.server.ForeCacheServer` and
:class:`~repro.middleware.multiuser.MultiUserServer` are thin adapters
over this facade; new code should use the facade (or its asyncio front
end, :class:`~repro.middleware.aio.AsyncForeCacheService`) directly.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Hashable
from dataclasses import dataclass, field

from repro.cache.manager import CacheManager
from repro.core.engine import PredictionEngine
from repro.core.popularity import SharedHotspotRegistry
from repro.middleware.config import PrefetchPolicy, ServiceConfig
from repro.middleware.latency import LatencyModel, LatencyRecorder
from repro.middleware.protocol import (
    DuplicateSessionError,
    SessionClosedError,
    SessionInfo,
    SessionNotFoundError,
)
from repro.middleware.scheduler import PrefetchScheduler
from repro.phases.model import AnalysisPhase
from repro.tiles.key import TileKey
from repro.tiles.reduce import carve_fidelity, carve_from_ancestor
from repro.tiles.moves import Move
from repro.tiles.pyramid import TilePyramid
from repro.tiles.tile import DataTile


@dataclass(frozen=True)
class TileResponse:
    """What one request returns, in process."""

    tile: DataTile
    latency_seconds: float
    hit: bool
    phase: AnalysisPhase | None
    prefetched: tuple[TileKey, ...] = field(default_factory=tuple)
    #: Linear resolution fraction of the payload: 1.0 is the real tile;
    #: under overload (``PrefetchPolicy.fidelity="progressive"``) an
    #: ancestor-carved stand-in reports ``2**-depth``.
    fidelity: float = 1.0


@dataclass(frozen=True)
class PushHitResult:
    """Outcome of a client-side push-cache hit reported to the server.

    The client already holds the tile, so no tile (and no cache fetch)
    is involved — the server records the zero-latency hit, feeds the
    session's engine, and returns the new prediction round's metadata.
    """

    phase: AnalysisPhase | None
    prefetched: tuple[TileKey, ...] = field(default_factory=tuple)
    latency_seconds: float = 0.0
    hit: bool = True


@dataclass
class _SessionRecord:
    """Server-side state of one open session."""

    session_id: Hashable
    engine: PredictionEngine
    recorder: LatencyRecorder = field(default_factory=LatencyRecorder)
    pending: list[tuple[TileKey, str]] = field(default_factory=list)
    lock: threading.RLock = field(default_factory=threading.RLock)
    closed: bool = False


class SessionHandle:
    """The client-side face of one open session.

    Exposes ``request()`` (alias ``handle_request``) plus the session's
    recorder and engine.  Also a context manager: leaving the ``with``
    block closes the session.
    """

    def __init__(self, service: "ForeCacheService", record: _SessionRecord):
        self._service = service
        self._record = record

    @property
    def session_id(self) -> Hashable:
        return self._record.session_id

    @property
    def engine(self) -> PredictionEngine:
        return self._record.engine

    @property
    def recorder(self) -> LatencyRecorder:
        return self._record.recorder

    @property
    def closed(self) -> bool:
        return self._record.closed

    @property
    def pyramid(self) -> TilePyramid:
        return self._service.pyramid

    def request(self, move: Move | None, key: TileKey) -> TileResponse:
        """Serve one tile request for this session."""
        return self._service._request(self._record, move, key)

    # The same signature the legacy servers exposed, so a
    # BrowsingSession drives a handle and a server identically.
    handle_request = request

    def info(self) -> SessionInfo:
        """This session's wire-ready state snapshot."""
        recorder = self._record.recorder
        return SessionInfo(
            session_id=str(self._record.session_id),
            open=not self._record.closed,
            prefetch_mode=self._service.config.prefetch.mode,
            requests=recorder.count,
            hits=recorder.hits,
            hit_rate=recorder.hit_rate,
            average_latency_seconds=recorder.average_seconds,
        )

    def reset(self) -> None:
        """Fresh recorder and engine state; queued prefetches dropped."""
        self._service._reset_session(self._record)

    def close(self) -> None:
        """Close this session.  Idempotent."""
        self._service._close_record(self._record)

    def __enter__(self) -> "SessionHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ForeCacheService:
    """Sessions, cache, prediction, and prefetch behind one facade."""

    def __init__(
        self,
        pyramid: TilePyramid,
        config: ServiceConfig | None = None,
        *,
        cache_manager: CacheManager | None = None,
        scheduler: PrefetchScheduler | None = None,
        latency_model: LatencyModel | None = None,
        engine_factory: Callable[[], PredictionEngine] | None = None,
        hotspot_registry: SharedHotspotRegistry | None = None,
    ) -> None:
        self.pyramid = pyramid
        self.config = config if config is not None else ServiceConfig()
        policy = self.config.prefetch
        if hotspot_registry is not None and not policy.shares_hotspots:
            raise ValueError(
                "a hotspot_registry was provided but "
                "PrefetchPolicy.shared_hotspots is 'off'; nothing would "
                "ever feed or read it"
            )
        if policy.shares_hotspots and hotspot_registry is None:
            # Shards match the cache striping: hot sessions observing
            # different tiles stop serializing on one registry mutex.
            hotspot_registry = SharedHotspotRegistry(
                shards=self.config.cache.shards,
                decay=policy.hotspot_decay,
                prune_epsilon=policy.hotspot_prune_epsilon,
            )
        self.hotspot_registry = hotspot_registry
        if cache_manager is None:
            # A provided scheduler's manager IS the serving cache;
            # building a second one would prefetch into the wrong cache.
            cache_manager = (
                scheduler.cache_manager
                if scheduler is not None
                else self.config.cache.build_cache_manager(pyramid)
            )
        elif scheduler is not None and scheduler.cache_manager is not cache_manager:
            raise ValueError(
                "scheduler and service must share one cache_manager; "
                "prefetched tiles would land in a cache requests never read"
            )
        if policy.share_budget and (
            cache_manager.cache.prefetch_capacity < policy.k
        ):
            raise ValueError(
                f"cache prefetch capacity "
                f"{cache_manager.cache.prefetch_capacity} cannot hold the "
                f"prefetch budget k={policy.k}"
            )
        self.cache_manager = cache_manager
        self.latency_model = (
            latency_model
            if latency_model is not None
            else self.config.build_latency_model()
        )
        self.engine_factory = engine_factory
        self._owns_scheduler = False
        if policy.background and scheduler is None:
            scheduler = PrefetchScheduler(
                self.cache_manager,
                max_workers=policy.workers,
                admission=policy.admission,
                # Only "boost" acts on the shared signal; "observe"
                # collects without changing any scheduling decision.
                hotspot_registry=(
                    self.hotspot_registry if policy.hotspots_live else None
                ),
                hotspot_top_n=policy.hotspot_top_n,
                hotspot_boost=policy.hotspot_boost,
                # Shedding only arms with progressive fidelity; off mode
                # keeps the scheduler bit-identical to earlier builds.
                shed_queue_depth=(
                    policy.shed_queue_depth if policy.fidelity_enabled else None
                ),
                shed_keep_k=policy.shed_keep_k,
            )
            self._owns_scheduler = True
        self.scheduler = scheduler
        #: Request-count decay ticking (policy.hotspot_tick_every); its
        #: own lock so ticking never contends with the session table.
        self._hotspot_tick_lock = threading.Lock()
        self._hotspot_requests = 0
        self._lock = threading.Lock()
        self._sessions: dict[Hashable, _SessionRecord] = {}
        self._auto_session = 0
        self._closed = False
        #: Degraded-serving state (``fidelity="progressive"`` only):
        #: consecutive real misses across all sessions — the
        #: deterministic overload signal — plus a counter of requests
        #: answered from a cached ancestor instead of the backend.
        self._miss_lock = threading.Lock()
        self._miss_streak = 0
        self.degraded_served = 0

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def open_session(
        self,
        engine: PredictionEngine | None = None,
        session_id: Hashable | None = None,
        *,
        reset_engine: bool = False,
    ) -> SessionHandle:
        """Open a session and return its handle.

        ``session_id`` defaults to a fresh unique id.  A duplicate id is
        rejected with :class:`DuplicateSessionError` — two live sessions
        must never share prediction state.  ``engine`` may be omitted
        only when the service was built with an ``engine_factory``.
        """
        if engine is None:
            if self.engine_factory is None:
                raise ValueError(
                    "open_session needs an engine (or construct the "
                    "service with an engine_factory)"
                )
            engine = self.engine_factory()
        with self._lock:
            if self._closed:
                raise SessionClosedError("service is closed")
            if session_id is None:
                # Skip counter values a caller already claimed by name.
                while True:
                    self._auto_session += 1
                    session_id = f"session-{self._auto_session}"
                    if session_id not in self._sessions:
                        break
            if session_id in self._sessions:
                raise DuplicateSessionError(
                    f"session {session_id!r} is already open",
                    session_id=str(session_id),
                )
            # Reset only after every rejection path: a refused open must
            # not wipe the caller's engine state as a side effect.
            if reset_engine:
                engine.reset()
            record = _SessionRecord(session_id=session_id, engine=engine)
            self._sessions[session_id] = record
        # Only a successfully opened session joins the shared popularity
        # model (a refused open must not rebind the caller's engine).
        if self.hotspot_registry is not None:
            engine.bind_hotspot_registry(
                self.hotspot_registry,
                live=self.config.prefetch.hotspots_live,
            )
        return SessionHandle(self, record)

    def close_session(self, session_id: Hashable) -> None:
        """Close one session; its cache contributions stay shared."""
        with self._lock:
            record = self._sessions.get(session_id)
        if record is None:
            raise SessionNotFoundError(
                f"session {session_id!r} is not open",
                session_id=str(session_id),
            )
        self._close_record(record)

    def _close_record(self, record: _SessionRecord) -> None:
        # The session lock serializes closing against an in-flight
        # request: once we hold it, any request either already scheduled
        # its prefetch round (cancelled just below) or will observe
        # ``closed`` and raise.  Lock order (record -> service) matches
        # the request path.
        with record.lock:
            with self._lock:
                if record.closed:
                    return
                record.closed = True
                self._sessions.pop(record.session_id, None)
            self._unbind_engine(record.engine)
        if self.scheduler is not None:
            self.scheduler.cancel_session(record.session_id)

    def _unbind_engine(self, engine: PredictionEngine) -> None:
        """Detach a departing engine from *this service's* registry.

        An engine leaving its session must stop feeding (and, when live,
        predicting from) a registry it no longer belongs to — otherwise
        reusing it under a later ``shared_hotspots="off"`` service would
        silently keep the stale signal alive.  An engine the caller
        bound to some *other* registry is none of our business.
        """
        if (
            self.hotspot_registry is not None
            and engine.hotspot_registry is self.hotspot_registry
        ):
            engine.bind_hotspot_registry(
                None, live=self.config.prefetch.hotspots_live
            )

    def _reset_session(self, record: _SessionRecord) -> None:
        if self.scheduler is not None:
            self.scheduler.cancel_session(record.session_id)
        with record.lock:
            record.engine.reset()
            record.recorder = LatencyRecorder()
            record.pending = []

    @property
    def session_ids(self) -> list[Hashable]:
        """Ids of the open sessions (sorted when comparable)."""
        with self._lock:
            ids = list(self._sessions)
        try:
            return sorted(ids)
        except TypeError:
            return sorted(ids, key=str)

    @property
    def session_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def session(self, session_id: Hashable) -> SessionHandle:
        """A handle for an open session (by id)."""
        return SessionHandle(self, self._record(session_id))

    def info(self, session_id: Hashable) -> SessionInfo:
        """One session's wire-ready snapshot."""
        return self.session(session_id).info()

    def _record(self, session_id: Hashable) -> _SessionRecord:
        with self._lock:
            record = self._sessions.get(session_id)
        if record is None:
            raise SessionNotFoundError(
                f"session {session_id!r} is not open",
                session_id=str(session_id),
            )
        return record

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def request(
        self, session_id: Hashable, move: Move | None, key: TileKey
    ) -> TileResponse:
        """Serve one request on behalf of an open session (by id)."""
        return self._request(self._record(session_id), move, key)

    def _request(
        self, record: _SessionRecord, move: Move | None, key: TileKey
    ) -> TileResponse:
        if record.closed:
            raise SessionClosedError(
                f"session {record.session_id!r} is closed",
                session_id=str(record.session_id),
            )
        if self.config.prefetch.fidelity_enabled and self._overloaded():
            degraded = self._degraded_response(record, move, key)
            if degraded is not None:
                return degraded
        outcome = self.cache_manager.fetch(key)
        return self._complete_request(record, move, key, outcome)

    def _overloaded(self) -> bool:
        """Is the service past its shedding thresholds right now?

        Two signals, either trips it: the *physical* backlog (queued
        prefetch jobs plus in-flight backend loads, against
        ``shed_queue_depth``) and the *deterministic* miss streak
        (consecutive real misses against ``shed_miss_streak``, which a
        replay reproduces exactly — physical queue depths depend on
        worker timing).
        """
        policy = self.config.prefetch
        depth = self.cache_manager.inflight_count
        if self.scheduler is not None:
            depth += self.scheduler.queue_depth
        if depth >= policy.shed_queue_depth:
            return True
        if policy.shed_miss_streak > 0:
            with self._miss_lock:
                return self._miss_streak >= policy.shed_miss_streak
        return False

    def _degraded_response(
        self, record: _SessionRecord, move: Move | None, key: TileKey
    ) -> TileResponse | None:
        """Answer from a cached ancestor at reduced fidelity, if one is
        resident.

        The quadtree makes an ancestor's sub-block an exact (coarse)
        stand-in for the requested tile, so under overload the service
        trades resolution for latency instead of queueing on the
        backend.  Probes are pure (:meth:`CacheManager.peek`) — they
        never distort hit counters or LRU order.  Returns None when the
        real tile is already resident (serve it full-res) or no
        ancestor within the reduction budget is cached (the request
        must pay the backend either way, so degrading would only lose
        resolution without saving any time).
        """
        if self.cache_manager.peek(key) is not None:
            return None
        max_depth = self.config.prefetch.fidelity_reduction.bit_length() - 1
        for depth in range(1, max_depth + 1):
            level = key.level - depth
            if level < 0:
                break
            ancestor = self.cache_manager.peek(key.ancestor(level))
            if ancestor is None:
                continue
            tile = carve_from_ancestor(ancestor, key)
            with self._miss_lock:
                self.degraded_served += 1
            # Served from memory: charge the hit-path latency.  The
            # streak is left alone — only a *real* hit clears overload.
            latency = self.latency_model.response_seconds(True, 0.0)
            phase, prefetched = self._observe_and_predict(
                record, move, key, latency, True
            )
            return TileResponse(
                tile=tile,
                latency_seconds=latency,
                hit=True,
                phase=phase,
                prefetched=prefetched,
                fidelity=carve_fidelity(level, key.level),
            )
        return None

    def _complete_request(
        self, record: _SessionRecord, move: Move | None, key: TileKey, outcome
    ) -> TileResponse:
        """The post-fetch half of :meth:`_request`.

        Split out so the asyncio front end can serve a cache hit it
        probed on the event loop (via
        :meth:`~repro.cache.manager.CacheManager.try_fetch`) and finish
        the round — latency accounting, observe/predict, prefetch
        scheduling — without re-entering the fetch path.
        """
        if self.config.prefetch.fidelity_enabled:
            with self._miss_lock:
                if outcome.hit:
                    self._miss_streak = 0
                else:
                    self._miss_streak += 1
        latency = self.latency_model.response_seconds(
            outcome.hit, outcome.backend_seconds
        )
        phase, prefetched = self._observe_and_predict(
            record, move, key, latency, outcome.hit
        )
        return TileResponse(
            tile=outcome.tile,
            latency_seconds=latency,
            hit=outcome.hit,
            phase=phase,
            prefetched=prefetched,
        )

    def _observe_and_predict(
        self,
        record: _SessionRecord,
        move: Move | None,
        key: TileKey,
        latency: float,
        hit: bool,
    ) -> tuple[AnalysisPhase | None, tuple[TileKey, ...]]:
        """The post-fetch half of a request: record, observe, predict,
        and run/schedule the prefetch round.  Shared by the normal
        request path and the push-hit path (which has no fetch)."""
        policy = self.config.prefetch
        phase: AnalysisPhase | None = None
        prefetched: tuple[TileKey, ...] = ()
        pending: list[tuple[TileKey, str]] = []
        with record.lock:
            # Re-check under the lock: a concurrent close may have won
            # the race since the entry check above, and scheduling a
            # prefetch round for it would resurrect the session in the
            # scheduler's generation table.
            if record.closed:
                raise SessionClosedError(
                    f"session {record.session_id!r} is closed",
                    session_id=str(record.session_id),
                )
            record.recorder.record(latency, hit)
            record.engine.observe(move, key)
            if policy.enabled:
                result = record.engine.predict(self._budget(policy))
                phase = result.phase
                prefetched = tuple(result.tiles)
                pending = result.attributed_tiles()
                record.pending = pending
                if self.scheduler is not None and policy.background:
                    # Under the session lock so observe-order ==
                    # schedule-order: the round reflecting the latest
                    # observation is the one that supersedes.
                    try:
                        self.scheduler.schedule(
                            pending, session_id=record.session_id
                        )
                    except RuntimeError:
                        if not self.scheduler.closed:
                            raise  # not a lifecycle race — don't mask it
                        # The scheduler shut down under us (service
                        # close, or a legacy adapter's close()); the
                        # tile was served, so report the typed
                        # lifecycle error, named accurately.
                        raise SessionClosedError(
                            "prefetch scheduler is shut down; session"
                            f" {record.session_id!r} can no longer be"
                            " served",
                            session_id=str(record.session_id),
                        ) from None
        if (
            self.hotspot_registry is not None
            and policy.hotspot_tick_every > 0
        ):
            # Request-count decay ticking: one registry tick every N
            # served requests, whoever served them.
            with self._hotspot_tick_lock:
                self._hotspot_requests += 1
                if self._hotspot_requests % policy.hotspot_tick_every == 0:
                    self.hotspot_registry.advance()
        if policy.enabled and not (
            self.scheduler is not None and policy.background
        ):
            # ``pending`` is the local computed under the lock — not a
            # re-read of record.pending, which a concurrent reset() may
            # have already replaced.
            self.cache_manager.prefetch(
                self._merged_predictions()
                if policy.share_budget
                else pending
            )
        return phase, prefetched

    # ------------------------------------------------------------------
    # push support (the socket server's continuous-prefetch hooks)
    # ------------------------------------------------------------------
    def local_hit(
        self, session_id: Hashable, move: Move | None, key: TileKey
    ) -> PushHitResult:
        """Absorb a client-side push-cache hit.

        The client answered the request locally from a pushed tile;
        the server still must see the move — engine history, the latency
        recorder (a zero-latency hit), the shared popularity signal, and
        the next prefetch/push round all flow from it.  No cache fetch
        happens (the tile never touches the middleware cache).
        """
        record = self._record(session_id)
        if record.closed:
            raise SessionClosedError(
                f"session {record.session_id!r} is closed",
                session_id=str(record.session_id),
            )
        phase, prefetched = self._observe_and_predict(
            record, move, key, 0.0, True
        )
        return PushHitResult(phase=phase, prefetched=prefetched)

    def pending_predictions(
        self, session_id: Hashable
    ) -> list[tuple[TileKey, str]]:
        """The session's latest attributed prediction list (ranked)."""
        record = self._record(session_id)
        with record.lock:
            return list(record.pending)

    def load_tile(self, key: TileKey, model: str = "push") -> DataTile:
        """Materialize one tile for streaming (push path).

        Loads through the cache manager's coalesced prefetch path, so a
        pushed tile also warms the shared prefetch region under the
        given attribution label.
        """
        return self.cache_manager.prefetch_one(key, model)

    def _budget(self, policy: PrefetchPolicy) -> int:
        """This round's per-session prediction budget."""
        if not policy.share_budget:
            return policy.k
        with self._lock:
            active = max(1, len(self._sessions))
        return max(1, policy.k // active)

    def _merged_predictions(self) -> list[tuple[TileKey, str]]:
        """Interleave all sessions' pending predictions, fairly.

        Round-robin by prediction rank: every session's best prediction
        first, then every session's second, and so on — deduplicated, so
        a tile two sessions both want claims a single slot.
        """
        with self._lock:
            records = list(self._sessions.items())
        try:
            records.sort()
        except TypeError:
            records.sort(key=lambda item: str(item[0]))
        queues = [
            list(record.pending) for _, record in records if record.pending
        ]
        budget = self.config.prefetch.k
        merged: list[tuple[TileKey, str]] = []
        seen: set[TileKey] = set()
        rank = 0
        while len(merged) < budget and any(
            rank < len(queue) for queue in queues
        ):
            for queue in queues:
                if rank < len(queue):
                    tile, model = queue[rank]
                    if tile not in seen:
                        seen.add(tile)
                        merged.append((tile, model))
                        if len(merged) >= budget:
                            break
            rank += 1
        return merged

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def owns_scheduler(self) -> bool:
        """True when this service created (and will shut down) its pool."""
        return self._owns_scheduler

    def drain(self, timeout: float | None = None) -> bool:
        """Wait for outstanding background prefetch work (tests/benchmarks)."""
        if self.scheduler is None:
            return True
        return self.scheduler.wait_idle(timeout)

    def close(self) -> None:
        """Close every session and release the worker pool.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            records = list(self._sessions.values())
            self._sessions.clear()
        for record in records:
            # Per-session lock so an in-flight request finishes its
            # prefetch round before we mark the session closed and
            # cancel that round below.
            with record.lock:
                record.closed = True
                self._unbind_engine(record.engine)
        if self.scheduler is not None:
            if self._owns_scheduler:
                self.scheduler.shutdown()
            else:
                for record in records:
                    self.scheduler.cancel_session(record.session_id)

    def __enter__(self) -> "ForeCacheService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
