"""Latency accounting (Section 5.5).

The paper measured, on its SciDB testbed, an average of **19.5 ms** to
serve a tile from the middleware cache and **984.0 ms** when the tile
had to be fetched from SciDB.  Our backend charges its own (calibrated)
virtual query cost on a miss; the latency model adds the fixed
middleware/transfer overhead that every response pays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Average response time for a middleware cache hit (paper: 19.5 ms).
HIT_SECONDS = 0.0195
#: Average response time for a cache miss (paper: 984.0 ms).
MISS_SECONDS = 0.984


@dataclass(frozen=True)
class LatencyModel:
    """Maps request outcomes to response latency."""

    transfer_seconds: float = HIT_SECONDS

    def response_seconds(self, hit: bool, backend_seconds: float) -> float:
        """Latency of one response.

        Hits pay only the middleware/transfer overhead; misses pay the
        backend query on top of it.
        """
        if hit:
            return self.transfer_seconds
        return self.transfer_seconds + backend_seconds


@dataclass
class LatencyRecorder:
    """Accumulates per-request latencies for one experiment run."""

    latencies: list[float] = field(default_factory=list)
    hits: int = 0

    def record(self, seconds: float, hit: bool) -> None:
        """Log one response."""
        self.latencies.append(seconds)
        if hit:
            self.hits += 1

    @property
    def count(self) -> int:
        """Number of recorded responses."""
        return len(self.latencies)

    @property
    def average_seconds(self) -> float:
        """Mean response latency."""
        return sum(self.latencies) / self.count if self.count else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of responses served from cache."""
        return self.hits / self.count if self.count else 0.0

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's measurements into this one."""
        self.latencies.extend(other.latencies)
        self.hits += other.hits
