"""Latency accounting (Section 5.5).

The paper measured, on its SciDB testbed, an average of **19.5 ms** to
serve a tile from the middleware cache and **984.0 ms** when the tile
had to be fetched from SciDB.  Our backend charges its own (calibrated)
virtual query cost on a miss; the latency model adds the fixed
middleware/transfer overhead that every response pays.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

#: Average response time for a middleware cache hit (paper: 19.5 ms).
HIT_SECONDS = 0.0195
#: Average response time for a cache miss (paper: 984.0 ms).
MISS_SECONDS = 0.984


def nearest_rank_percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values``, ``q`` in [0, 1].

    The textbook definition — the smallest value with at least ``q`` of
    the sample at or below it (``ceil(q * n)``-th order statistic) — and
    the one definition shared by the recorder and the throughput
    benchmarks, so reported tails can never drift apart.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile q must be in [0, 1], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    index = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[index]


@dataclass(frozen=True)
class LatencyModel:
    """Maps request outcomes to response latency."""

    transfer_seconds: float = HIT_SECONDS

    def response_seconds(self, hit: bool, backend_seconds: float) -> float:
        """Latency of one response.

        Hits pay only the middleware/transfer overhead; misses pay the
        backend query on top of it.
        """
        if hit:
            return self.transfer_seconds
        return self.transfer_seconds + backend_seconds


@dataclass
class LatencyRecorder:
    """Accumulates per-request latencies for one experiment run."""

    latencies: list[float] = field(default_factory=list)
    hits: int = 0

    def record(self, seconds: float, hit: bool) -> None:
        """Log one response."""
        self.latencies.append(seconds)
        if hit:
            self.hits += 1

    @property
    def count(self) -> int:
        """Number of recorded responses."""
        return len(self.latencies)

    @property
    def average_seconds(self) -> float:
        """Mean response latency."""
        return sum(self.latencies) / self.count if self.count else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of responses served from cache."""
        return self.hits / self.count if self.count else 0.0

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's measurements into this one."""
        self.latencies.extend(other.latencies)
        self.hits += other.hits

    def percentile(self, q: float) -> float:
        """Nearest-rank latency percentile, ``q`` in [0, 1]."""
        return nearest_rank_percentile(self.latencies, q)

    # ------------------------------------------------------------------
    # serialization (per-session stats cross the protocol boundary)
    # ------------------------------------------------------------------
    def to_dict(self, include_latencies: bool = True) -> dict:
        """A JSON-ready summary (plus raw samples unless opted out)."""
        data = {
            "count": self.count,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
            "average_seconds": self.average_seconds,
            "p50_seconds": self.percentile(0.50),
            "p95_seconds": self.percentile(0.95),
        }
        if include_latencies:
            data["latencies"] = list(self.latencies)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyRecorder":
        """Rebuild a recorder from :meth:`to_dict` output.

        Requires the raw samples; a summary-only dict cannot round-trip.
        """
        if "latencies" not in data:
            raise ValueError(
                "cannot rebuild a LatencyRecorder from a summary-only "
                "dict (serialize with include_latencies=True)"
            )
        return cls(latencies=list(data["latencies"]), hits=int(data["hits"]))

    def to_json(self, include_latencies: bool = True) -> str:
        """:meth:`to_dict`, serialized."""
        return json.dumps(self.to_dict(include_latencies=include_latencies))

    @classmethod
    def from_json(cls, data: str) -> "LatencyRecorder":
        """Inverse of :meth:`to_json` (with samples included)."""
        return cls.from_dict(json.loads(data))
