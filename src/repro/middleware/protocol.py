"""The typed, JSON-serializable request/response protocol.

Everything that crosses the client/server boundary is one of the wire
messages defined here — plain frozen dataclasses whose fields are JSON
scalars, lists, or further wire messages, so any transport that can move
strings can carry the protocol.  The in-process objects (``DataTile``,
``Move``, ``AnalysisPhase``) stay server-side; the wire speaks tile
*references* (``level, x, y``), move names, and phase names, plus an
optional dense payload encoding for transports that ship tile data.

Messages are tagged with a ``type`` field by :func:`encode`;
:func:`decode` dispatches back to the right class.  Failures travel as
:class:`ErrorInfo`, which maps 1:1 onto the typed exception hierarchy
(:class:`SessionNotFoundError`, :class:`DuplicateSessionError`,
:class:`SessionClosedError`, :class:`InvalidRequestError`, and the
byte-level :class:`FramingError` family) so a client can re-raise
exactly what the server threw.

For transports that move *bytes* rather than strings (the socket
transport in :mod:`repro.middleware.net`), this module also defines the
framing layer: messages travel as newline-delimited (``"lines"``) or
4-byte-big-endian length-prefixed (``"length"``) UTF-8 JSON frames, cut
back out of the byte stream by the incremental :class:`FrameDecoder`.
A connection starts with a :class:`Hello`/:class:`Welcome`
version-negotiation handshake, then drives sessions with the
:class:`OpenSession`/:class:`CloseSession` control envelope (the reply
to both is a :class:`SessionInfo`).  The handshake also negotiates the
optional ``push`` capability: when both peers opt in, the server may
stream unsolicited :class:`PushTile` frames (always *before* the reply
they accompany) and the client reports its push-cache state via
:class:`PushAck` / ``TileRequest.held`` digests.

All ``from_dict`` constructors tolerate unknown fields (they extract
the fields they know and ignore the rest), so a newer peer can add
fields without breaking an older one.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.phases.model import AnalysisPhase
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.tile import DataTile


# ----------------------------------------------------------------------
# error variants
# ----------------------------------------------------------------------
class ProtocolError(Exception):
    """Base of every typed serving-protocol failure."""

    code = "error"

    def __init__(self, message: str, session_id: str | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.session_id = session_id

    # KeyError subclasses would otherwise render str(exc) as
    # repr(message), double-quoting every log line and match= pattern.
    __str__ = Exception.__str__


class SessionNotFoundError(ProtocolError, KeyError):
    """The request named a session the service does not know."""

    code = "session_not_found"


class DuplicateSessionError(ProtocolError, ValueError):
    """``open_session`` asked for an id that is already live."""

    code = "duplicate_session"


class SessionClosedError(ProtocolError, RuntimeError):
    """The request arrived after the session (or service) closed."""

    code = "session_closed"


class InvalidRequestError(ProtocolError, ValueError):
    """The request was malformed or not legal for the pyramid."""

    code = "invalid_request"


class FramingError(ProtocolError, ValueError):
    """The byte stream could not be cut into frames."""

    code = "framing"


class FrameTooLargeError(FramingError):
    """A frame exceeded the transport's ``max_frame_bytes`` budget."""

    code = "frame_too_large"


class VersionMismatchError(ProtocolError, ValueError):
    """Hello/Welcome negotiation found no mutually supported version."""

    code = "version_mismatch"


ERROR_TYPES: dict[str, type[ProtocolError]] = {
    cls.code: cls
    for cls in (
        ProtocolError,
        SessionNotFoundError,
        DuplicateSessionError,
        SessionClosedError,
        InvalidRequestError,
        FramingError,
        FrameTooLargeError,
        VersionMismatchError,
    )
}


# ----------------------------------------------------------------------
# wire building blocks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TileRef:
    """A tile address on the wire: ``[level, x, y]``."""

    level: int
    x: int
    y: int

    @classmethod
    def from_key(cls, key: TileKey) -> "TileRef":
        return cls(level=key.level, x=key.x, y=key.y)

    def to_key(self) -> TileKey:
        return TileKey(self.level, self.x, self.y)

    def to_list(self) -> list[int]:
        return [self.level, self.x, self.y]

    @classmethod
    def from_list(cls, data) -> "TileRef":
        level, x, y = data
        return cls(level=int(level), x=int(x), y=int(y))


@dataclass(frozen=True)
class AttributeBlock:
    """One attribute's dense block, flattened for JSON."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    values: tuple

    @classmethod
    def from_array(cls, name: str, array: np.ndarray) -> "AttributeBlock":
        return cls(
            name=name,
            dtype=str(array.dtype),
            shape=tuple(array.shape),
            values=tuple(array.ravel().tolist()),
        )

    def to_array(self) -> np.ndarray:
        return np.asarray(self.values, dtype=self.dtype).reshape(self.shape)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "values": list(self.values),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttributeBlock":
        return cls(
            name=data["name"],
            dtype=data["dtype"],
            shape=tuple(int(n) for n in data["shape"]),
            values=tuple(data["values"]),
        )


@dataclass(frozen=True)
class TilePayload:
    """A full tile on the wire: its address plus every attribute block."""

    tile: TileRef
    attributes: tuple[AttributeBlock, ...]

    @classmethod
    def from_tile(cls, tile: DataTile) -> "TilePayload":
        return cls(
            tile=TileRef.from_key(tile.key),
            attributes=tuple(
                AttributeBlock.from_array(name, array)
                for name, array in sorted(tile.attributes.items())
            ),
        )

    def to_tile(self) -> DataTile:
        return DataTile(
            key=self.tile.to_key(),
            attributes={
                block.name: block.to_array() for block in self.attributes
            },
        )

    def to_dict(self) -> dict:
        return {
            "tile": self.tile.to_list(),
            "attributes": [block.to_dict() for block in self.attributes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TilePayload":
        return cls(
            tile=TileRef.from_list(data["tile"]),
            attributes=tuple(
                AttributeBlock.from_dict(block) for block in data["attributes"]
            ),
        )


# ----------------------------------------------------------------------
# messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TileRequest:
    """One client request: session, the move taken, the target tile."""

    session_id: str
    tile: TileRef
    #: The interface move that led here (``Move.value``), or None for
    #: the session-opening request.
    move: str | None = None
    #: Push-negotiated clients attach their push-cache digest (the tiles
    #: they already hold) so the server never re-streams a held tile.
    #: ``None`` — the default, and the only value a non-push client ever
    #: sends — is omitted from the wire form entirely, keeping the frame
    #: byte-identical to the pre-push protocol.
    held: tuple[TileRef, ...] | None = None

    def to_move(self) -> Move | None:
        if self.move is None:
            return None
        try:
            return Move(self.move)
        except ValueError:
            raise InvalidRequestError(
                f"unknown move {self.move!r}", session_id=self.session_id
            ) from None

    def to_dict(self) -> dict:
        data = {
            "session_id": self.session_id,
            "tile": self.tile.to_list(),
            "move": self.move,
        }
        if self.held is not None:
            data["held"] = [ref.to_list() for ref in self.held]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TileRequest":
        held = data.get("held")
        return cls(
            session_id=data["session_id"],
            tile=TileRef.from_list(data["tile"]),
            move=data.get("move"),
            held=(
                tuple(TileRef.from_list(ref) for ref in held)
                if held is not None
                else None
            ),
        )


@dataclass(frozen=True)
class TileResponse:
    """One server response on the wire.

    ``payload`` carries the tile's dense data when the transport ships
    tiles; metadata-only transports leave it None and resolve the
    ``tile`` reference out of band.
    """

    session_id: str
    tile: TileRef
    latency_seconds: float
    hit: bool
    phase: str | None = None
    prefetched: tuple[TileRef, ...] = field(default_factory=tuple)
    payload: TilePayload | None = None

    @classmethod
    def from_result(
        cls, session_id: str, result, include_payload: bool = True
    ) -> "TileResponse":
        """Build the wire form of an in-process ``TileResponse``."""
        return cls(
            session_id=session_id,
            tile=TileRef.from_key(result.tile.key),
            latency_seconds=result.latency_seconds,
            hit=result.hit,
            phase=result.phase.value if result.phase is not None else None,
            prefetched=tuple(TileRef.from_key(k) for k in result.prefetched),
            payload=(
                TilePayload.from_tile(result.tile) if include_payload else None
            ),
        )

    def to_phase(self) -> AnalysisPhase | None:
        return AnalysisPhase.from_string(self.phase) if self.phase else None

    def to_dict(self) -> dict:
        return {
            "session_id": self.session_id,
            "tile": self.tile.to_list(),
            "latency_seconds": self.latency_seconds,
            "hit": self.hit,
            "phase": self.phase,
            "prefetched": [ref.to_list() for ref in self.prefetched],
            "payload": self.payload.to_dict() if self.payload else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TileResponse":
        payload = data.get("payload")
        return cls(
            session_id=data["session_id"],
            tile=TileRef.from_list(data["tile"]),
            latency_seconds=data["latency_seconds"],
            hit=data["hit"],
            phase=data.get("phase"),
            prefetched=tuple(
                TileRef.from_list(ref) for ref in data.get("prefetched", [])
            ),
            payload=TilePayload.from_dict(payload) if payload else None,
        )


@dataclass(frozen=True)
class PushTile:
    """An unsolicited server→client frame: one predicted tile, streamed
    ahead of need (Khameleon-style continuous prefetch).

    Push frames only travel on connections that negotiated the ``push``
    capability, and always *precede* the reply to the request whose
    prediction round produced them — the strict request/reply pairing of
    every other message is untouched.
    """

    session_id: str
    tile: TileRef
    #: Position in the prediction round that produced this push (0 = the
    #: model's best guess).
    rank: int
    #: The server-side push round (generation) this frame belongs to; a
    #: newer request bumps it and cancels what the old round still had
    #: queued.
    generation: int
    #: The scheduler's computed utility for this tile (diagnostic).
    utility: float
    payload: TilePayload | None = None

    def to_dict(self) -> dict:
        return {
            "session_id": self.session_id,
            "tile": self.tile.to_list(),
            "rank": self.rank,
            "generation": self.generation,
            "utility": self.utility,
            "payload": self.payload.to_dict() if self.payload else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PushTile":
        payload = data.get("payload")
        return cls(
            session_id=data["session_id"],
            tile=TileRef.from_list(data["tile"]),
            rank=int(data["rank"]),
            generation=int(data["generation"]),
            utility=float(data["utility"]),
            payload=TilePayload.from_dict(payload) if payload else None,
        )


@dataclass(frozen=True)
class PushAck:
    """Client → server: the push-cache digest, optionally reporting a
    locally answered (push-hit) request.

    ``held`` is the authoritative list of tiles the client's push cache
    holds right now — the server clears its in-flight accounting from it
    and never re-streams a held tile.  When ``tile`` is set the client
    answered a request locally from the push cache: the server records
    the zero-latency hit, feeds its prediction engine, and replies with
    a payload-less :class:`TileResponse` (the client already holds the
    tile).  With ``tile`` unset the reply is the session's
    :class:`SessionInfo`.
    """

    session_id: str
    held: tuple[TileRef, ...] = field(default_factory=tuple)
    #: Move that led to the locally served tile (``Move.value``).
    move: str | None = None
    #: The locally served tile, when this ack reports a push hit.
    tile: TileRef | None = None

    def to_move(self) -> Move | None:
        if self.move is None:
            return None
        try:
            return Move(self.move)
        except ValueError:
            raise InvalidRequestError(
                f"unknown move {self.move!r}", session_id=self.session_id
            ) from None

    def to_dict(self) -> dict:
        return {
            "session_id": self.session_id,
            "held": [ref.to_list() for ref in self.held],
            "move": self.move,
            "tile": self.tile.to_list() if self.tile is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PushAck":
        tile = data.get("tile")
        return cls(
            session_id=data["session_id"],
            held=tuple(
                TileRef.from_list(ref) for ref in data.get("held", [])
            ),
            move=data.get("move"),
            tile=TileRef.from_list(tile) if tile is not None else None,
        )


@dataclass(frozen=True)
class SessionInfo:
    """A session's externally visible state and latency statistics."""

    session_id: str
    open: bool
    prefetch_mode: str
    requests: int
    hits: int
    hit_rate: float
    average_latency_seconds: float

    def to_dict(self) -> dict:
        return {
            "session_id": self.session_id,
            "open": self.open,
            "prefetch_mode": self.prefetch_mode,
            "requests": self.requests,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
            "average_latency_seconds": self.average_latency_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionInfo":
        return cls(
            session_id=data["session_id"],
            open=bool(data["open"]),
            prefetch_mode=data["prefetch_mode"],
            requests=int(data["requests"]),
            hits=int(data["hits"]),
            hit_rate=float(data["hit_rate"]),
            average_latency_seconds=float(data["average_latency_seconds"]),
        )


@dataclass(frozen=True)
class ErrorInfo:
    """A failure on the wire; re-raisable via :meth:`to_exception`."""

    code: str
    message: str
    session_id: str | None = None

    @classmethod
    def from_exception(cls, exc: BaseException) -> "ErrorInfo":
        if isinstance(exc, ProtocolError):
            return cls(
                code=exc.code, message=exc.message, session_id=exc.session_id
            )
        return cls(code=ProtocolError.code, message=str(exc))

    def to_exception(self) -> ProtocolError:
        return ERROR_TYPES.get(self.code, ProtocolError)(
            self.message, session_id=self.session_id
        )

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "session_id": self.session_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ErrorInfo":
        return cls(
            code=data["code"],
            message=data["message"],
            session_id=data.get("session_id"),
        )


# ----------------------------------------------------------------------
# control envelope (connection setup and session lifecycle)
# ----------------------------------------------------------------------
#: The protocol revision this build speaks natively.
PROTOCOL_VERSION = 1
#: Every revision this build can serve (negotiation picks the highest
#: revision both peers list).
SUPPORTED_VERSIONS: tuple[int, ...] = (1,)


@dataclass(frozen=True)
class Hello:
    """The client's first frame: who it is and what it speaks."""

    versions: tuple[int, ...] = SUPPORTED_VERSIONS
    client: str = ""
    #: Client opts into server-streamed ``push_tile`` frames.  Older
    #: peers simply omit the field (``from_dict`` defaults it off), so
    #: the capability degrades to plain pull without a version bump.
    push: bool = False

    def to_dict(self) -> dict:
        return {
            "versions": list(self.versions),
            "client": self.client,
            "push": self.push,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Hello":
        return cls(
            versions=tuple(int(v) for v in data["versions"]),
            client=data.get("client", ""),
            push=bool(data.get("push", False)),
        )


@dataclass(frozen=True)
class Welcome:
    """The server's handshake reply: the negotiated version and limits."""

    version: int
    server: str = ""
    max_frame_bytes: int = 0
    #: Push capability granted: True only when the client asked for it
    #: *and* this server runs with ``PrefetchPolicy.push="on"``.
    push: bool = False

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "server": self.server,
            "max_frame_bytes": self.max_frame_bytes,
            "push": self.push,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Welcome":
        return cls(
            version=int(data["version"]),
            server=data.get("server", ""),
            max_frame_bytes=int(data.get("max_frame_bytes", 0)),
            push=bool(data.get("push", False)),
        )


def negotiate_version(offered) -> int:
    """Pick the highest mutually supported protocol revision.

    Raises :class:`VersionMismatchError` when the peer offers nothing
    this build speaks.
    """
    common = set(SUPPORTED_VERSIONS) & {int(v) for v in offered}
    if not common:
        raise VersionMismatchError(
            f"no common protocol version: peer speaks {sorted(offered)}, "
            f"server speaks {sorted(SUPPORTED_VERSIONS)}"
        )
    return max(common)


@dataclass(frozen=True)
class OpenSession:
    """Open a server-side session (engine comes from the server's
    ``engine_factory``).  The reply is the new session's
    :class:`SessionInfo`."""

    session_id: str | None = None

    def to_dict(self) -> dict:
        return {"session_id": self.session_id}

    @classmethod
    def from_dict(cls, data: dict) -> "OpenSession":
        return cls(session_id=data.get("session_id"))


@dataclass(frozen=True)
class CloseSession:
    """Close an open session.  The reply is the session's final
    :class:`SessionInfo` snapshot (``open=False``)."""

    session_id: str

    def to_dict(self) -> dict:
        return {"session_id": self.session_id}

    @classmethod
    def from_dict(cls, data: dict) -> "CloseSession":
        return cls(session_id=data["session_id"])


# ----------------------------------------------------------------------
# envelope
# ----------------------------------------------------------------------
MESSAGE_TYPES: dict[str, type] = {
    "tile_request": TileRequest,
    "tile_response": TileResponse,
    "push_tile": PushTile,
    "push_ack": PushAck,
    "session_info": SessionInfo,
    "error": ErrorInfo,
    "hello": Hello,
    "welcome": Welcome,
    "open_session": OpenSession,
    "close_session": CloseSession,
}
_TYPE_NAMES = {cls: name for name, cls in MESSAGE_TYPES.items()}


def encode(message) -> str:
    """Serialize any wire message to a tagged JSON string."""
    name = _TYPE_NAMES.get(type(message))
    if name is None:
        raise TypeError(f"{type(message).__name__} is not a wire message")
    return json.dumps({"type": name, **message.to_dict()})


def decode(data: str):
    """Parse a tagged JSON string back into its wire message."""
    try:
        raw = json.loads(data)
    except json.JSONDecodeError as exc:
        raise InvalidRequestError(f"malformed JSON: {exc}") from None
    except RecursionError:
        # json.loads recurses per nesting level; a hostile deeply-nested
        # payload must be a typed rejection, not a server crash.
        raise InvalidRequestError("JSON nested too deeply") from None
    if not isinstance(raw, dict):
        raise InvalidRequestError("wire messages must be JSON objects")
    name = raw.pop("type", None)
    # A non-string tag (e.g. a list) is unhashable — guard the lookup.
    cls = MESSAGE_TYPES.get(name) if isinstance(name, str) else None
    if cls is None:
        raise InvalidRequestError(f"unknown message type {name!r}")
    try:
        return cls.from_dict(raw)
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidRequestError(
            f"malformed {name} message: {exc}"
        ) from None


# ----------------------------------------------------------------------
# framing (byte transports)
# ----------------------------------------------------------------------
#: Frame encodings a byte transport may speak: newline-delimited JSON
#: (``"lines"``, debuggable with netcat) or 4-byte big-endian
#: length-prefixed JSON (``"length"``, binary-safe and self-sizing).
FRAMINGS: tuple[str, ...] = ("lines", "length")

#: Default ceiling on one frame's size.  A 32x32 float64 tile payload is
#: ~25 KB of JSON; 8 MiB leaves room for much larger tiles while still
#: bounding what a misbehaving peer can make the server buffer.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

_LENGTH_HEADER = struct.Struct(">I")


def encode_frame(
    text: str,
    framing: str = "lines",
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """Wrap one encoded message for the byte stream.

    Refuses locally (with the same typed errors the server would send
    back) payloads the peer is guaranteed to reject: oversized frames,
    and — in ``"lines"`` framing — embedded newlines, which would split
    into two bogus frames on the wire.
    """
    if framing not in FRAMINGS:
        raise ValueError(f"framing must be one of {FRAMINGS}, got {framing!r}")
    payload = text.encode("utf-8")
    if len(payload) > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    if framing == "lines":
        if b"\n" in payload:
            raise FramingError(
                "newline-delimited framing cannot carry embedded newlines"
            )
        return payload + b"\n"
    return _LENGTH_HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame cutter for one connection's byte stream.

    Feed it whatever ``recv`` returned; it buffers partial frames and
    returns each completed frame's text.  Violations raise the typed
    :class:`FramingError` family — after which the stream is
    unrecoverable (the decoder refuses further input), matching the
    server's close-on-framing-error behavior.
    """

    def __init__(
        self,
        framing: str = "lines",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        if framing not in FRAMINGS:
            raise ValueError(
                f"framing must be one of {FRAMINGS}, got {framing!r}"
            )
        if max_frame_bytes < 1:
            raise ValueError(
                f"max_frame_bytes must be >= 1, got {max_frame_bytes}"
            )
        self.framing = framing
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        # Lines framing: everything before this offset is known to hold
        # no newline, so each feed scans only fresh bytes (keeps big
        # frames arriving in small reads linear, not quadratic).
        self._scanned = 0
        self._dead = False

    @property
    def buffered(self) -> int:
        """Bytes held waiting for their frame to complete."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[str]:
        """Add bytes; return the texts of every frame they completed."""
        if self._dead:
            raise FramingError("stream already failed; open a new connection")
        self._buffer.extend(data)
        try:
            if self.framing == "lines":
                return self._cut_lines()
            return self._cut_length_prefixed()
        except FramingError:
            self._dead = True
            raise

    def _decode_text(self, payload: bytes) -> str:
        try:
            return payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FramingError(f"frame is not valid UTF-8: {exc}") from None

    def _cut_lines(self) -> list[str]:
        frames = []
        while True:
            newline = self._buffer.find(b"\n", self._scanned)
            if newline < 0:
                self._scanned = len(self._buffer)
                if len(self._buffer) > self.max_frame_bytes:
                    raise FrameTooLargeError(
                        f"unterminated line exceeds the "
                        f"{self.max_frame_bytes}-byte frame limit"
                    )
                return frames
            if newline > self.max_frame_bytes:
                raise FrameTooLargeError(
                    f"frame of {newline} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            payload = bytes(self._buffer[:newline])
            del self._buffer[: newline + 1]
            self._scanned = 0
            # A bare "\r\n" or empty line is keepalive noise, not a frame.
            text = self._decode_text(payload).strip()
            if text:
                frames.append(text)

    def _cut_length_prefixed(self) -> list[str]:
        frames = []
        while len(self._buffer) >= _LENGTH_HEADER.size:
            (length,) = _LENGTH_HEADER.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise FrameTooLargeError(
                    f"frame of {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            if length == 0:
                raise FramingError("length-prefixed frame of 0 bytes")
            end = _LENGTH_HEADER.size + length
            if len(self._buffer) < end:
                return frames
            payload = bytes(self._buffer[_LENGTH_HEADER.size : end])
            del self._buffer[:end]
            frames.append(self._decode_text(payload))
        return frames
