"""The typed, JSON-serializable request/response protocol.

Everything that crosses the client/server boundary is one of the wire
messages defined here — plain frozen dataclasses whose fields are JSON
scalars, lists, or further wire messages, so any transport that can move
strings can carry the protocol.  The in-process objects (``DataTile``,
``Move``, ``AnalysisPhase``) stay server-side; the wire speaks tile
*references* (``level, x, y``), move names, and phase names, plus an
optional dense payload encoding for transports that ship tile data.

Messages are tagged with a ``type`` field by :func:`encode`;
:func:`decode` dispatches back to the right class.  Failures travel as
:class:`ErrorInfo`, which maps 1:1 onto the typed exception hierarchy
(:class:`SessionNotFoundError`, :class:`DuplicateSessionError`,
:class:`SessionClosedError`, :class:`InvalidRequestError`, and the
byte-level :class:`FramingError` family) so a client can re-raise
exactly what the server threw.

For transports that move *bytes* rather than strings (the socket
transport in :mod:`repro.middleware.net`), this module also defines the
framing layer: messages travel as newline-delimited (``"lines"``) or
4-byte-big-endian length-prefixed (``"length"``) UTF-8 JSON frames, cut
back out of the byte stream by the incremental :class:`FrameDecoder`.
A connection starts with a :class:`Hello`/:class:`Welcome`
version-negotiation handshake, then drives sessions with the
:class:`OpenSession`/:class:`CloseSession` control envelope (the reply
to both is a :class:`SessionInfo`).  The handshake also negotiates the
optional ``push`` capability: when both peers opt in, the server may
stream unsolicited :class:`PushTile` frames (always *before* the reply
they accompany) and the client reports its push-cache state via
:class:`PushAck` / ``TileRequest.held`` digests.

The handshake likewise negotiates the **payload encoding**
(:data:`PAYLOADS`).  The default, ``"json"``, is the wire format above.
With ``"binary"`` — granted only when the client's hello offers it and
the server's config allows it — the connection switches (right after
the welcome) to the binary framing: every frame is ``kind byte + u32
length + body``, where kind 0 carries an ordinary UTF-8 JSON message
and kind 1 carries a payload-bearing message (``tile_response``,
``push_tile``) as a small JSON header plus the attribute arrays' raw
bytes, concatenated via :class:`memoryview` (deflate-packed when that
wins — the dominant NDSI blocks compress far below their JSON form).
:func:`encode_wire` / :func:`decode_wire` pick the right form per
message; declining peers keep the byte-identical JSON protocol.

All ``from_dict`` constructors tolerate unknown fields (they extract
the fields they know and ignore the rest), so a newer peer can add
fields without breaking an older one.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field, replace

import numpy as np

from repro.phases.model import AnalysisPhase
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.tile import DataTile


# ----------------------------------------------------------------------
# error variants
# ----------------------------------------------------------------------
class ProtocolError(Exception):
    """Base of every typed serving-protocol failure."""

    code = "error"

    def __init__(self, message: str, session_id: str | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.session_id = session_id

    # KeyError subclasses would otherwise render str(exc) as
    # repr(message), double-quoting every log line and match= pattern.
    __str__ = Exception.__str__


class SessionNotFoundError(ProtocolError, KeyError):
    """The request named a session the service does not know."""

    code = "session_not_found"


class DuplicateSessionError(ProtocolError, ValueError):
    """``open_session`` asked for an id that is already live."""

    code = "duplicate_session"


class SessionClosedError(ProtocolError, RuntimeError):
    """The request arrived after the session (or service) closed."""

    code = "session_closed"


class InvalidRequestError(ProtocolError, ValueError):
    """The request was malformed or not legal for the pyramid."""

    code = "invalid_request"


class FramingError(ProtocolError, ValueError):
    """The byte stream could not be cut into frames."""

    code = "framing"


class FrameTooLargeError(FramingError):
    """A frame exceeded the transport's ``max_frame_bytes`` budget."""

    code = "frame_too_large"


class VersionMismatchError(ProtocolError, ValueError):
    """Hello/Welcome negotiation found no mutually supported version."""

    code = "version_mismatch"


class WorkerUnavailableError(ProtocolError, ConnectionError):
    """The cluster worker owning the requested tile is down.

    The router surfaces this instead of hanging the client; the request
    is safe to retry — the ring has already re-mapped the dead worker's
    partition onto the survivors.  Older clients that predate the code
    degrade to the base :class:`ProtocolError` via
    :meth:`ErrorInfo.to_exception`.
    """

    code = "worker_unavailable"


ERROR_TYPES: dict[str, type[ProtocolError]] = {
    cls.code: cls
    for cls in (
        ProtocolError,
        SessionNotFoundError,
        DuplicateSessionError,
        SessionClosedError,
        InvalidRequestError,
        FramingError,
        FrameTooLargeError,
        VersionMismatchError,
        WorkerUnavailableError,
    )
}


# ----------------------------------------------------------------------
# wire building blocks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TileRef:
    """A tile address on the wire: ``[level, x, y]``."""

    level: int
    x: int
    y: int

    @classmethod
    def from_key(cls, key: TileKey) -> "TileRef":
        return cls(level=key.level, x=key.x, y=key.y)

    def to_key(self) -> TileKey:
        return TileKey(self.level, self.x, self.y)

    def to_list(self) -> list[int]:
        return [self.level, self.x, self.y]

    @classmethod
    def from_list(cls, data) -> "TileRef":
        level, x, y = data
        return cls(level=int(level), x=int(x), y=int(y))


@dataclass(frozen=True, eq=False)
class AttributeBlock:
    """One attribute's dense block.

    JSON-born blocks carry ``values`` (the flattened scalar tuple);
    binary-born blocks skip the expensive ``tolist()`` round trip and
    carry the backing ``array`` instead (``values=None``).  Either form
    can produce the other, and equality compares the dense data — two
    blocks are equal iff their names, dtypes, shapes, and element values
    match, regardless of which carrier they arrived on.
    """

    name: str
    dtype: str
    shape: tuple[int, ...]
    values: tuple | None = None
    #: The dense array itself — always C-contiguous when set, so the
    #: binary encoder can take its bytes with a zero-copy memoryview.
    array: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.values is None and self.array is None:
            raise ValueError("AttributeBlock needs values or an array")

    def __eq__(self, other) -> bool:
        if not isinstance(other, AttributeBlock):
            return NotImplemented
        if (self.name, self.dtype, self.shape) != (
            other.name,
            other.dtype,
            other.shape,
        ):
            return False
        mine, theirs = self.to_array(), other.to_array()
        equal_nan = mine.dtype.kind == "f" and theirs.dtype.kind == "f"
        return bool(np.array_equal(mine, theirs, equal_nan=equal_nan))

    def __hash__(self) -> int:
        return hash((self.name, self.dtype, self.shape))

    @classmethod
    def from_array(
        cls, name: str, array: np.ndarray, *, binary: bool = False
    ) -> "AttributeBlock":
        array = np.ascontiguousarray(array)
        return cls(
            name=name,
            dtype=str(array.dtype),
            shape=tuple(array.shape),
            values=None if binary else tuple(array.ravel().tolist()),
            array=array,
        )

    def to_array(self) -> np.ndarray:
        if self.array is not None:
            return self.array
        return np.asarray(self.values, dtype=self.dtype).reshape(self.shape)

    def to_dict(self) -> dict:
        values = (
            list(self.values)
            if self.values is not None
            else self.array.ravel().tolist()
        )
        return {
            "name": self.name,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "values": values,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttributeBlock":
        return cls(
            name=data["name"],
            dtype=data["dtype"],
            shape=tuple(int(n) for n in data["shape"]),
            values=tuple(data["values"]),
        )


@dataclass(frozen=True)
class TilePayload:
    """A full tile on the wire: its address plus every attribute block."""

    tile: TileRef
    attributes: tuple[AttributeBlock, ...]

    @classmethod
    def from_tile(cls, tile: DataTile, *, binary: bool = False) -> "TilePayload":
        """Build the wire form; ``binary=True`` keeps the arrays as
        arrays (no per-scalar ``tolist()``) for the binary encoder."""
        return cls(
            tile=TileRef.from_key(tile.key),
            attributes=tuple(
                AttributeBlock.from_array(name, array, binary=binary)
                for name, array in sorted(tile.attributes.items())
            ),
        )

    def to_tile(self) -> DataTile:
        return DataTile(
            key=self.tile.to_key(),
            attributes={
                block.name: block.to_array() for block in self.attributes
            },
        )

    def to_dict(self) -> dict:
        return {
            "tile": self.tile.to_list(),
            "attributes": [block.to_dict() for block in self.attributes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TilePayload":
        return cls(
            tile=TileRef.from_list(data["tile"]),
            attributes=tuple(
                AttributeBlock.from_dict(block) for block in data["attributes"]
            ),
        )


# ----------------------------------------------------------------------
# messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TileRequest:
    """One client request: session, the move taken, the target tile."""

    session_id: str
    tile: TileRef
    #: The interface move that led here (``Move.value``), or None for
    #: the session-opening request.
    move: str | None = None
    #: Push-negotiated clients attach their push-cache digest (the tiles
    #: they already hold) so the server never re-streams a held tile.
    #: ``None`` — the default, and the only value a non-push client ever
    #: sends — is omitted from the wire form entirely, keeping the frame
    #: byte-identical to the pre-push protocol.
    held: tuple[TileRef, ...] | None = None

    def to_move(self) -> Move | None:
        if self.move is None:
            return None
        try:
            return Move(self.move)
        except ValueError:
            raise InvalidRequestError(
                f"unknown move {self.move!r}", session_id=self.session_id
            ) from None

    def to_dict(self) -> dict:
        data = {
            "session_id": self.session_id,
            "tile": self.tile.to_list(),
            "move": self.move,
        }
        if self.held is not None:
            data["held"] = [ref.to_list() for ref in self.held]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TileRequest":
        held = data.get("held")
        return cls(
            session_id=data["session_id"],
            tile=TileRef.from_list(data["tile"]),
            move=data.get("move"),
            held=(
                tuple(TileRef.from_list(ref) for ref in held)
                if held is not None
                else None
            ),
        )


@dataclass(frozen=True)
class TileResponse:
    """One server response on the wire.

    ``payload`` carries the tile's dense data when the transport ships
    tiles; metadata-only transports leave it None and resolve the
    ``tile`` reference out of band.

    ``fidelity`` is the linear resolution fraction of the carried tile
    (1.0 = full resolution).  It is omitted from the wire form when
    full — legacy and fidelity-off peers stay wire-byte-identical.
    """

    session_id: str
    tile: TileRef
    latency_seconds: float
    hit: bool
    phase: str | None = None
    prefetched: tuple[TileRef, ...] = field(default_factory=tuple)
    payload: TilePayload | None = None
    fidelity: float = 1.0

    @classmethod
    def from_result(
        cls,
        session_id: str,
        result,
        include_payload: bool = True,
        *,
        binary: bool = False,
    ) -> "TileResponse":
        """Build the wire form of an in-process ``TileResponse``."""
        return cls(
            session_id=session_id,
            tile=TileRef.from_key(result.tile.key),
            latency_seconds=result.latency_seconds,
            hit=result.hit,
            phase=result.phase.value if result.phase is not None else None,
            prefetched=tuple(TileRef.from_key(k) for k in result.prefetched),
            payload=(
                TilePayload.from_tile(result.tile, binary=binary)
                if include_payload
                else None
            ),
            fidelity=getattr(result, "fidelity", 1.0),
        )

    def to_phase(self) -> AnalysisPhase | None:
        return AnalysisPhase.from_string(self.phase) if self.phase else None

    def to_dict(self) -> dict:
        data = {
            "session_id": self.session_id,
            "tile": self.tile.to_list(),
            "latency_seconds": self.latency_seconds,
            "hit": self.hit,
            "phase": self.phase,
            "prefetched": [ref.to_list() for ref in self.prefetched],
            "payload": self.payload.to_dict() if self.payload else None,
        }
        # Omitted when full: absent -> 1.0, so fidelity-off replies are
        # byte-identical to the pre-fidelity protocol revision.
        if self.fidelity != 1.0:
            data["fidelity"] = self.fidelity
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TileResponse":
        payload = data.get("payload")
        return cls(
            session_id=data["session_id"],
            tile=TileRef.from_list(data["tile"]),
            latency_seconds=data["latency_seconds"],
            hit=data["hit"],
            phase=data.get("phase"),
            prefetched=tuple(
                TileRef.from_list(ref) for ref in data.get("prefetched", [])
            ),
            payload=TilePayload.from_dict(payload) if payload else None,
            fidelity=float(data.get("fidelity", 1.0)),
        )


@dataclass(frozen=True)
class PushTile:
    """An unsolicited server→client frame: one predicted tile, streamed
    ahead of need (Khameleon-style continuous prefetch).

    Push frames only travel on connections that negotiated the ``push``
    capability, and always *precede* the reply to the request whose
    prediction round produced them — the strict request/reply pairing of
    every other message is untouched.
    """

    session_id: str
    tile: TileRef
    #: Position in the prediction round that produced this push (0 = the
    #: model's best guess).
    rank: int
    #: The server-side push round (generation) this frame belongs to; a
    #: newer request bumps it and cancels what the old round still had
    #: queued.
    generation: int
    #: The scheduler's computed utility for this tile (diagnostic).
    utility: float
    payload: TilePayload | None = None
    #: Linear resolution fraction of the carried payload (1.0 = full);
    #: omitted on the wire when full, so fidelity-off push streams are
    #: byte-identical to the pre-fidelity revision.
    fidelity: float = 1.0

    def to_dict(self) -> dict:
        data = {
            "session_id": self.session_id,
            "tile": self.tile.to_list(),
            "rank": self.rank,
            "generation": self.generation,
            "utility": self.utility,
            "payload": self.payload.to_dict() if self.payload else None,
        }
        if self.fidelity != 1.0:
            data["fidelity"] = self.fidelity
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PushTile":
        payload = data.get("payload")
        return cls(
            session_id=data["session_id"],
            tile=TileRef.from_list(data["tile"]),
            rank=int(data["rank"]),
            generation=int(data["generation"]),
            utility=float(data["utility"]),
            payload=TilePayload.from_dict(payload) if payload else None,
            fidelity=float(data.get("fidelity", 1.0)),
        )


@dataclass(frozen=True)
class PushAck:
    """Client → server: the push-cache digest, optionally reporting a
    locally answered (push-hit) request.

    ``held`` is the authoritative list of tiles the client's push cache
    holds right now — the server clears its in-flight accounting from it
    and never re-streams a held tile.  When ``tile`` is set the client
    answered a request locally from the push cache: the server records
    the zero-latency hit, feeds its prediction engine, and replies with
    a payload-less :class:`TileResponse` (the client already holds the
    tile).  With ``tile`` unset the reply is the session's
    :class:`SessionInfo`.
    """

    session_id: str
    held: tuple[TileRef, ...] = field(default_factory=tuple)
    #: Move that led to the locally served tile (``Move.value``).
    move: str | None = None
    #: The locally served tile, when this ack reports a push hit.
    tile: TileRef | None = None

    def to_move(self) -> Move | None:
        if self.move is None:
            return None
        try:
            return Move(self.move)
        except ValueError:
            raise InvalidRequestError(
                f"unknown move {self.move!r}", session_id=self.session_id
            ) from None

    def to_dict(self) -> dict:
        return {
            "session_id": self.session_id,
            "held": [ref.to_list() for ref in self.held],
            "move": self.move,
            "tile": self.tile.to_list() if self.tile is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PushAck":
        tile = data.get("tile")
        return cls(
            session_id=data["session_id"],
            held=tuple(
                TileRef.from_list(ref) for ref in data.get("held", [])
            ),
            move=data.get("move"),
            tile=TileRef.from_list(tile) if tile is not None else None,
        )


@dataclass(frozen=True)
class SessionInfo:
    """A session's externally visible state and latency statistics."""

    session_id: str
    open: bool
    prefetch_mode: str
    requests: int
    hits: int
    hit_rate: float
    average_latency_seconds: float

    def to_dict(self) -> dict:
        return {
            "session_id": self.session_id,
            "open": self.open,
            "prefetch_mode": self.prefetch_mode,
            "requests": self.requests,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
            "average_latency_seconds": self.average_latency_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionInfo":
        return cls(
            session_id=data["session_id"],
            open=bool(data["open"]),
            prefetch_mode=data["prefetch_mode"],
            requests=int(data["requests"]),
            hits=int(data["hits"]),
            hit_rate=float(data["hit_rate"]),
            average_latency_seconds=float(data["average_latency_seconds"]),
        )


@dataclass(frozen=True)
class ErrorInfo:
    """A failure on the wire; re-raisable via :meth:`to_exception`."""

    code: str
    message: str
    session_id: str | None = None

    @classmethod
    def from_exception(cls, exc: BaseException) -> "ErrorInfo":
        if isinstance(exc, ProtocolError):
            return cls(
                code=exc.code, message=exc.message, session_id=exc.session_id
            )
        return cls(code=ProtocolError.code, message=str(exc))

    def to_exception(self) -> ProtocolError:
        return ERROR_TYPES.get(self.code, ProtocolError)(
            self.message, session_id=self.session_id
        )

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "session_id": self.session_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ErrorInfo":
        return cls(
            code=data["code"],
            message=data["message"],
            session_id=data.get("session_id"),
        )


# ----------------------------------------------------------------------
# control envelope (connection setup and session lifecycle)
# ----------------------------------------------------------------------
#: The protocol revision this build speaks natively.
PROTOCOL_VERSION = 1
#: Every revision this build can serve (negotiation picks the highest
#: revision both peers list).
SUPPORTED_VERSIONS: tuple[int, ...] = (1,)


@dataclass(frozen=True)
class Hello:
    """The client's first frame: who it is and what it speaks."""

    versions: tuple[int, ...] = SUPPORTED_VERSIONS
    client: str = ""
    #: Client opts into server-streamed ``push_tile`` frames.  Older
    #: peers simply omit the field (``from_dict`` defaults it off), so
    #: the capability degrades to plain pull without a version bump.
    push: bool = False
    #: Payload encodings the client can speak, best-preferred first.
    #: Serialized only when it says more than the default ``("json",)``,
    #: so a JSON-only client's hello stays byte-identical to older
    #: builds and older servers negotiate JSON implicitly.
    payloads: tuple[str, ...] = ("json",)

    def to_dict(self) -> dict:
        data = {
            "versions": list(self.versions),
            "client": self.client,
            "push": self.push,
        }
        if self.payloads != ("json",):
            data["payloads"] = list(self.payloads)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Hello":
        return cls(
            versions=tuple(int(v) for v in data["versions"]),
            client=data.get("client", ""),
            push=bool(data.get("push", False)),
            payloads=tuple(
                str(p) for p in data.get("payloads", ("json",))
            ),
        )


@dataclass(frozen=True)
class Welcome:
    """The server's handshake reply: the negotiated version and limits."""

    version: int
    server: str = ""
    max_frame_bytes: int = 0
    #: Push capability granted: True only when the client asked for it
    #: *and* this server runs with ``PrefetchPolicy.push="on"``.
    push: bool = False
    #: The payload encoding this connection will speak from the next
    #: frame on.  Omitted from the wire when it is the default
    #: ``"json"``, keeping declining handshakes byte-identical to older
    #: builds.
    payload: str = "json"

    def to_dict(self) -> dict:
        data = {
            "version": self.version,
            "server": self.server,
            "max_frame_bytes": self.max_frame_bytes,
            "push": self.push,
        }
        if self.payload != "json":
            data["payload"] = self.payload
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Welcome":
        return cls(
            version=int(data["version"]),
            server=data.get("server", ""),
            max_frame_bytes=int(data.get("max_frame_bytes", 0)),
            push=bool(data.get("push", False)),
            payload=str(data.get("payload", "json")),
        )


def negotiate_version(offered) -> int:
    """Pick the highest mutually supported protocol revision.

    Raises :class:`VersionMismatchError` when the peer offers nothing
    this build speaks.
    """
    common = set(SUPPORTED_VERSIONS) & {int(v) for v in offered}
    if not common:
        raise VersionMismatchError(
            f"no common protocol version: peer speaks {sorted(offered)}, "
            f"server speaks {sorted(SUPPORTED_VERSIONS)}"
        )
    return max(common)


#: Payload encodings a connection may negotiate.  ``"json"`` — scalars
#: inlined into the message JSON — is mandatory-to-implement and the
#: fallback; ``"binary"`` ships attribute arrays as raw (optionally
#: deflated) bytes under the binary framing.
PAYLOADS: tuple[str, ...] = ("json", "binary")


def negotiate_payload(offered, supported=PAYLOADS) -> str:
    """Pick the payload encoding for a connection.

    ``"binary"`` wins only when both the peer's hello and this server's
    ``supported`` list include it; anything else — including encodings
    neither side has heard of — falls back to the mandatory ``"json"``.
    Unlike version negotiation this can't fail: JSON is always common
    ground.
    """
    if "binary" in tuple(offered) and "binary" in tuple(supported):
        return "binary"
    return "json"


@dataclass(frozen=True)
class OpenSession:
    """Open a server-side session (engine comes from the server's
    ``engine_factory``).  The reply is the new session's
    :class:`SessionInfo`."""

    session_id: str | None = None

    def to_dict(self) -> dict:
        return {"session_id": self.session_id}

    @classmethod
    def from_dict(cls, data: dict) -> "OpenSession":
        return cls(session_id=data.get("session_id"))


@dataclass(frozen=True)
class CloseSession:
    """Close an open session.  The reply is the session's final
    :class:`SessionInfo` snapshot (``open=False``)."""

    session_id: str

    def to_dict(self) -> dict:
        return {"session_id": self.session_id}

    @classmethod
    def from_dict(cls, data: dict) -> "CloseSession":
        return cls(session_id=data["session_id"])


@dataclass(frozen=True)
class HotspotGossip:
    """A popularity snapshot travelling between cluster nodes.

    ``entries`` carries ``(level, x, y, weight)`` rows — a decayed
    weight per hot tile — and ``tick`` the decay epoch the weights are
    expressed at, so the receiver can bring both sides to a common tick
    before merging.  Sent worker → router as the reply to the router's
    own gossip frame (whose entries are the merged cluster view).  An
    empty-entry frame is a valid "nothing hot here yet" snapshot.
    Pre-cluster peers reject the unknown type with a typed
    ``invalid_request`` error rather than desyncing the stream.
    """

    entries: tuple[tuple[int, int, int, float], ...] = ()
    tick: int = 0

    def to_dict(self) -> dict:
        return {
            "entries": [list(entry) for entry in self.entries],
            "tick": self.tick,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HotspotGossip":
        return cls(
            entries=tuple(
                (int(lvl), int(x), int(y), float(w))
                for lvl, x, y, w in data.get("entries", [])
            ),
            tick=int(data.get("tick", 0)),
        )


# ----------------------------------------------------------------------
# envelope
# ----------------------------------------------------------------------
MESSAGE_TYPES: dict[str, type] = {
    "tile_request": TileRequest,
    "tile_response": TileResponse,
    "push_tile": PushTile,
    "push_ack": PushAck,
    "session_info": SessionInfo,
    "error": ErrorInfo,
    "hello": Hello,
    "welcome": Welcome,
    "open_session": OpenSession,
    "close_session": CloseSession,
    "hotspot_gossip": HotspotGossip,
}
_TYPE_NAMES = {cls: name for name, cls in MESSAGE_TYPES.items()}


def encode(message) -> str:
    """Serialize any wire message to a tagged JSON string."""
    name = _TYPE_NAMES.get(type(message))
    if name is None:
        raise TypeError(f"{type(message).__name__} is not a wire message")
    return json.dumps({"type": name, **message.to_dict()})


def decode(data: str):
    """Parse a tagged JSON string back into its wire message."""
    try:
        raw = json.loads(data)
    except json.JSONDecodeError as exc:
        raise InvalidRequestError(f"malformed JSON: {exc}") from None
    except RecursionError:
        # json.loads recurses per nesting level; a hostile deeply-nested
        # payload must be a typed rejection, not a server crash.
        raise InvalidRequestError("JSON nested too deeply") from None
    if not isinstance(raw, dict):
        raise InvalidRequestError("wire messages must be JSON objects")
    name = raw.pop("type", None)
    # A non-string tag (e.g. a list) is unhashable — guard the lookup.
    cls = MESSAGE_TYPES.get(name) if isinstance(name, str) else None
    if cls is None:
        raise InvalidRequestError(f"unknown message type {name!r}")
    try:
        return cls.from_dict(raw)
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidRequestError(
            f"malformed {name} message: {exc}"
        ) from None


# ----------------------------------------------------------------------
# framing (byte transports)
# ----------------------------------------------------------------------
#: Frame encodings a byte transport may speak: newline-delimited JSON
#: (``"lines"``, debuggable with netcat) or 4-byte big-endian
#: length-prefixed JSON (``"length"``, binary-safe and self-sizing).
FRAMINGS: tuple[str, ...] = ("lines", "length")

#: Default ceiling on one frame's size.  A 32x32 float64 tile payload is
#: ~25 KB of JSON; 8 MiB leaves room for much larger tiles while still
#: bounding what a misbehaving peer can make the server buffer.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

_LENGTH_HEADER = struct.Struct(">I")


def encode_frame(
    text: str,
    framing: str = "lines",
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """Wrap one encoded message for the byte stream.

    Refuses locally (with the same typed errors the server would send
    back) payloads the peer is guaranteed to reject: oversized frames,
    and — in ``"lines"`` framing — embedded newlines, which would split
    into two bogus frames on the wire.
    """
    if framing not in FRAMINGS:
        raise ValueError(f"framing must be one of {FRAMINGS}, got {framing!r}")
    payload = text.encode("utf-8")
    if len(payload) > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    if framing == "lines":
        if b"\n" in payload:
            raise FramingError(
                "newline-delimited framing cannot carry embedded newlines"
            )
        return payload + b"\n"
    return _LENGTH_HEADER.pack(len(payload)) + payload


# ----------------------------------------------------------------------
# binary payload encoding (negotiated; framing "binary")
# ----------------------------------------------------------------------
#: Binary-framing kind bytes: 0 = the body is an ordinary UTF-8 JSON
#: message; 1 = the body is a binary-encoded payload message.
_FRAME_KIND_JSON = 0x00
_FRAME_KIND_BINARY = 0x01
_BINARY_FRAME_HEADER = struct.Struct(">BI")

#: Message types whose payload may travel as a binary body.
_BINARY_MESSAGE_NAMES = frozenset({"tile_response", "push_tile"})

#: Blob codecs.  The encoder deflates when that shrinks the blob (the
#: NDSI attribute blocks are highly redundant — min/avg/max coincide at
#: fine zoom — so this usually wins big); level 1 keeps the encode cost
#: negligible next to the syscall it saves.
_BLOB_CODECS = ("raw", "zlib")
_COMPRESS_LEVEL = 1
_COMPRESS_MIN_BYTES = 64


def _payload_descriptor(payload: TilePayload) -> tuple[dict, bytes]:
    """Flatten a payload into its JSON descriptor and packed blob."""
    attrs = []
    views = []
    for block in payload.attributes:
        array = np.ascontiguousarray(block.to_array())
        view = memoryview(array).cast("B")
        attrs.append(
            {
                "name": block.name,
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "nbytes": view.nbytes,
            }
        )
        views.append(view)
    blob = b"".join(views)
    codec = "raw"
    if len(blob) >= _COMPRESS_MIN_BYTES:
        packed = zlib.compress(blob, _COMPRESS_LEVEL)
        if len(packed) < len(blob):
            codec, blob = "zlib", packed
    descriptor = {
        "tile": payload.tile.to_list(),
        "codec": codec,
        "attributes": attrs,
    }
    return descriptor, blob


def encode_binary_message(message) -> bytes:
    """Serialize a payload-bearing message to its binary body.

    The body is ``u32 header_len + JSON header + blob``: the header is
    the message's ordinary tagged dict with the payload replaced by a
    compact descriptor (tile ref, blob codec, per-attribute dtype/shape/
    byte counts), and the blob is every attribute array's raw bytes
    concatenated in descriptor order, deflated when that is smaller.
    """
    name = _TYPE_NAMES.get(type(message))
    if name not in _BINARY_MESSAGE_NAMES:
        raise TypeError(
            f"{type(message).__name__} cannot travel as a binary body"
        )
    payload = message.payload
    if payload is None:
        raise TypeError("message carries no payload; encode it as JSON")
    descriptor, blob = _payload_descriptor(payload)
    header = {"type": name, **replace(message, payload=None).to_dict()}
    header["payload"] = descriptor
    header_bytes = json.dumps(header).encode("utf-8")
    return b"".join(
        (_LENGTH_HEADER.pack(len(header_bytes)), header_bytes, blob)
    )


def _parse_attribute_specs(attrs) -> tuple[list, int]:
    """Validate descriptor attribute entries; return specs and blob size."""
    if not isinstance(attrs, list):
        raise InvalidRequestError("binary payload attributes must be a list")
    specs = []
    total = 0
    for item in attrs:
        if not isinstance(item, dict):
            raise InvalidRequestError(
                "binary payload attribute entries must be objects"
            )
        try:
            name = item["name"]
            dtype_name = item["dtype"]
            shape = tuple(int(n) for n in item["shape"])
            nbytes = int(item["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidRequestError(
                f"malformed binary attribute descriptor: {exc}"
            ) from None
        try:
            dtype = np.dtype(dtype_name)
        except (TypeError, ValueError):
            raise InvalidRequestError(
                f"unknown dtype {dtype_name!r} in binary payload"
            ) from None
        if dtype.hasobject:
            raise InvalidRequestError(
                f"object dtype {dtype_name!r} cannot travel on the wire"
            )
        if any(n < 0 for n in shape) or nbytes < 0:
            raise InvalidRequestError(
                "binary attribute shape/nbytes must be non-negative"
            )
        count = 1
        for n in shape:
            count *= n
        if count * dtype.itemsize != nbytes:
            raise InvalidRequestError(
                f"attribute {name!r} declares {nbytes} bytes but "
                f"shape {shape} x {dtype} needs {count * dtype.itemsize}"
            )
        specs.append((str(name), dtype, shape, count, nbytes))
        total += nbytes
    return specs, total


def _unpack_blob(codec, body: memoryview, total: int) -> "bytes | memoryview":
    if codec == "raw":
        if len(body) != total:
            raise InvalidRequestError(
                f"binary payload blob is {len(body)} bytes, expected {total}"
            )
        return body
    if codec == "zlib":
        # Bounded decompression: never inflate past what the descriptor
        # declares, and require the deflate stream to end exactly there
        # (a zlib bomb or truncated stream is a typed rejection, not an
        # allocation blow-up).
        decomp = zlib.decompressobj()
        try:
            raw = decomp.decompress(bytes(body), total)
        except zlib.error as exc:
            raise InvalidRequestError(
                f"binary payload blob failed to inflate: {exc}"
            ) from None
        if (
            len(raw) != total
            or not decomp.eof
            or decomp.unconsumed_tail
            or decomp.unused_data
        ):
            raise InvalidRequestError(
                "binary payload blob does not inflate to the declared size"
            )
        return raw
    raise InvalidRequestError(f"unknown binary payload codec {codec!r}")


def _decode_binary_payload(descriptor, body: memoryview) -> TilePayload:
    if not isinstance(descriptor, dict):
        raise InvalidRequestError("binary payload descriptor must be an object")
    try:
        tile = TileRef.from_list(descriptor["tile"])
        attrs = descriptor["attributes"]
        codec = descriptor.get("codec", "raw")
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidRequestError(
            f"malformed binary payload descriptor: {exc}"
        ) from None
    specs, total = _parse_attribute_specs(attrs)
    buffer = _unpack_blob(codec, body, total)
    blocks = []
    offset = 0
    for name, dtype, shape, count, nbytes in specs:
        try:
            array = np.frombuffer(
                buffer, dtype=dtype, count=count, offset=offset
            ).reshape(shape)
        except ValueError as exc:
            raise InvalidRequestError(
                f"attribute {name!r} bytes do not form its array: {exc}"
            ) from None
        blocks.append(
            AttributeBlock(
                name=name,
                dtype=str(dtype),
                shape=shape,
                values=None,
                array=array,
            )
        )
        offset += nbytes
    return TilePayload(tile=tile, attributes=tuple(blocks))


def decode_binary_message(data):
    """Parse a binary body back into its payload-bearing message."""
    view = memoryview(data)
    if view.ndim != 1 or view.format != "B":
        view = view.cast("B")
    if len(view) < _LENGTH_HEADER.size:
        raise InvalidRequestError("binary message truncated before header")
    (header_len,) = _LENGTH_HEADER.unpack_from(view)
    body_start = _LENGTH_HEADER.size + header_len
    if header_len == 0 or body_start > len(view):
        raise InvalidRequestError(
            f"binary message declares a {header_len}-byte header but "
            f"carries {len(view) - _LENGTH_HEADER.size} bytes"
        )
    try:
        header = json.loads(bytes(view[_LENGTH_HEADER.size : body_start]))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise InvalidRequestError(
            f"binary message header is not valid JSON: {exc}"
        ) from None
    except RecursionError:
        raise InvalidRequestError("JSON nested too deeply") from None
    if not isinstance(header, dict):
        raise InvalidRequestError("binary message header must be an object")
    name = header.pop("type", None)
    if not isinstance(name, str) or name not in _BINARY_MESSAGE_NAMES:
        raise InvalidRequestError(
            f"message type {name!r} cannot travel as a binary body"
        )
    descriptor = header.pop("payload", None)
    header["payload"] = None
    cls = MESSAGE_TYPES[name]
    try:
        message = cls.from_dict(header)
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidRequestError(f"malformed {name} message: {exc}") from None
    if descriptor is None:
        return message
    payload = _decode_binary_payload(descriptor, view[body_start:])
    return replace(message, payload=payload)


def encode_wire(
    message,
    framing: str = "lines",
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """Encode one message for the byte stream under any framing.

    Under the JSON framings this is exactly ``encode_frame(encode(m))``.
    Under ``"binary"`` framing, payload-bearing messages go out as kind-1
    binary bodies and everything else as kind-0 JSON, both behind the
    ``kind byte + u32 length`` header.
    """
    if framing != "binary":
        return encode_frame(encode(message), framing, max_frame_bytes)
    if (
        type(message) in _TYPE_NAMES
        and _TYPE_NAMES[type(message)] in _BINARY_MESSAGE_NAMES
        and message.payload is not None
    ):
        kind = _FRAME_KIND_BINARY
        body = encode_binary_message(message)
    else:
        kind = _FRAME_KIND_JSON
        body = encode(message).encode("utf-8")
    if len(body) > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame of {len(body)} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    return _BINARY_FRAME_HEADER.pack(kind, len(body)) + body


def decode_wire(frame):
    """Decode one frame as cut by :class:`FrameDecoder`.

    JSON framings yield ``str`` frames (dispatched to :func:`decode`);
    binary framing yields ``bytes`` for kind-1 frames (dispatched to
    :func:`decode_binary_message`).
    """
    if isinstance(frame, str):
        return decode(frame)
    return decode_binary_message(frame)


class FrameDecoder:
    """Incremental frame cutter for one connection's byte stream.

    Feed it whatever ``recv`` returned; it buffers partial frames and
    returns each completed frame's text.  Violations raise the typed
    :class:`FramingError` family — after which the stream is
    unrecoverable (the decoder refuses further input), matching the
    server's close-on-framing-error behavior.

    Besides the two JSON framings, the decoder can run (or be switched
    mid-stream, by :meth:`switch_to_binary`, once the handshake grants
    the binary payload encoding) in ``"binary"`` framing: each frame is
    ``kind byte + u32 length + body``, where kind-0 bodies come back as
    decoded text and kind-1 bodies as raw ``bytes`` for
    :func:`decode_binary_message`.
    """

    def __init__(
        self,
        framing: str = "lines",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        if framing not in (*FRAMINGS, "binary"):
            raise ValueError(
                f"framing must be one of {(*FRAMINGS, 'binary')}, "
                f"got {framing!r}"
            )
        if max_frame_bytes < 1:
            raise ValueError(
                f"max_frame_bytes must be >= 1, got {max_frame_bytes}"
            )
        self.framing = framing
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        # Lines framing: everything before this offset is known to hold
        # no newline, so each feed scans only fresh bytes (keeps big
        # frames arriving in small reads linear, not quadratic).
        self._scanned = 0
        self._dead = False

    @property
    def buffered(self) -> int:
        """Bytes held waiting for their frame to complete."""
        return len(self._buffer)

    def switch_to_binary(self) -> None:
        """Flip this stream to the negotiated binary framing.

        Called right after the handshake frame that granted
        ``payload="binary"``; the strict request/reply pairing means a
        well-behaved peer has nothing else in flight at that point, so
        any bytes already buffered are simply re-cut under the new
        framing.
        """
        self.framing = "binary"
        self._scanned = 0

    def feed(self, data: bytes) -> "list[str | bytes]":
        """Add bytes; return every frame they completed.

        JSON framings yield ``str`` frames; binary framing yields
        ``str`` for kind-0 (JSON) frames and ``bytes`` for kind-1
        (binary payload) frames.
        """
        if self._dead:
            raise FramingError("stream already failed; open a new connection")
        self._buffer.extend(data)
        try:
            if self.framing == "lines":
                return self._cut_lines()
            if self.framing == "binary":
                return self._cut_binary()
            return self._cut_length_prefixed()
        except FramingError:
            self._dead = True
            raise

    def _decode_text(self, payload: bytes) -> str:
        try:
            return payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FramingError(f"frame is not valid UTF-8: {exc}") from None

    def _cut_lines(self) -> list[str]:
        frames = []
        while True:
            newline = self._buffer.find(b"\n", self._scanned)
            if newline < 0:
                self._scanned = len(self._buffer)
                if len(self._buffer) > self.max_frame_bytes:
                    raise FrameTooLargeError(
                        f"unterminated line exceeds the "
                        f"{self.max_frame_bytes}-byte frame limit"
                    )
                return frames
            if newline > self.max_frame_bytes:
                raise FrameTooLargeError(
                    f"frame of {newline} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            payload = bytes(self._buffer[:newline])
            del self._buffer[: newline + 1]
            self._scanned = 0
            # A bare "\r\n" or empty line is keepalive noise, not a frame.
            text = self._decode_text(payload).strip()
            if text:
                frames.append(text)

    def _cut_length_prefixed(self) -> list[str]:
        frames = []
        while len(self._buffer) >= _LENGTH_HEADER.size:
            (length,) = _LENGTH_HEADER.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise FrameTooLargeError(
                    f"frame of {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            if length == 0:
                raise FramingError("length-prefixed frame of 0 bytes")
            end = _LENGTH_HEADER.size + length
            if len(self._buffer) < end:
                return frames
            payload = bytes(self._buffer[_LENGTH_HEADER.size : end])
            del self._buffer[:end]
            frames.append(self._decode_text(payload))
        return frames

    def _cut_binary(self) -> "list[str | bytes]":
        frames: "list[str | bytes]" = []
        while self._buffer:
            # Reject an unknown kind byte the instant it arrives —
            # don't wait for a bogus length header to fill in.
            kind = self._buffer[0]
            if kind not in (_FRAME_KIND_JSON, _FRAME_KIND_BINARY):
                raise FramingError(f"unknown binary frame kind {kind:#04x}")
            if len(self._buffer) < _BINARY_FRAME_HEADER.size:
                return frames
            _, length = _BINARY_FRAME_HEADER.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise FrameTooLargeError(
                    f"frame of {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            if length == 0:
                raise FramingError("binary frame of 0 bytes")
            end = _BINARY_FRAME_HEADER.size + length
            if len(self._buffer) < end:
                return frames
            payload = bytes(self._buffer[_BINARY_FRAME_HEADER.size : end])
            del self._buffer[:end]
            if kind == _FRAME_KIND_JSON:
                frames.append(self._decode_text(payload))
            else:
                frames.append(payload)
        return frames
