"""The typed, JSON-serializable request/response protocol.

Everything that crosses the client/server boundary is one of the wire
messages defined here — plain frozen dataclasses whose fields are JSON
scalars, lists, or further wire messages, so any transport that can move
strings can carry the protocol.  The in-process objects (``DataTile``,
``Move``, ``AnalysisPhase``) stay server-side; the wire speaks tile
*references* (``level, x, y``), move names, and phase names, plus an
optional dense payload encoding for transports that ship tile data.

Messages are tagged with a ``type`` field by :func:`encode`;
:func:`decode` dispatches back to the right class.  Failures travel as
:class:`ErrorInfo`, which maps 1:1 onto the typed exception hierarchy
(:class:`SessionNotFoundError`, :class:`DuplicateSessionError`,
:class:`SessionClosedError`, :class:`InvalidRequestError`) so a client
can re-raise exactly what the server threw.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.phases.model import AnalysisPhase
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.tile import DataTile


# ----------------------------------------------------------------------
# error variants
# ----------------------------------------------------------------------
class ProtocolError(Exception):
    """Base of every typed serving-protocol failure."""

    code = "error"

    def __init__(self, message: str, session_id: str | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.session_id = session_id

    # KeyError subclasses would otherwise render str(exc) as
    # repr(message), double-quoting every log line and match= pattern.
    __str__ = Exception.__str__


class SessionNotFoundError(ProtocolError, KeyError):
    """The request named a session the service does not know."""

    code = "session_not_found"


class DuplicateSessionError(ProtocolError, ValueError):
    """``open_session`` asked for an id that is already live."""

    code = "duplicate_session"


class SessionClosedError(ProtocolError, RuntimeError):
    """The request arrived after the session (or service) closed."""

    code = "session_closed"


class InvalidRequestError(ProtocolError, ValueError):
    """The request was malformed or not legal for the pyramid."""

    code = "invalid_request"


ERROR_TYPES: dict[str, type[ProtocolError]] = {
    cls.code: cls
    for cls in (
        ProtocolError,
        SessionNotFoundError,
        DuplicateSessionError,
        SessionClosedError,
        InvalidRequestError,
    )
}


# ----------------------------------------------------------------------
# wire building blocks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TileRef:
    """A tile address on the wire: ``[level, x, y]``."""

    level: int
    x: int
    y: int

    @classmethod
    def from_key(cls, key: TileKey) -> "TileRef":
        return cls(level=key.level, x=key.x, y=key.y)

    def to_key(self) -> TileKey:
        return TileKey(self.level, self.x, self.y)

    def to_list(self) -> list[int]:
        return [self.level, self.x, self.y]

    @classmethod
    def from_list(cls, data) -> "TileRef":
        level, x, y = data
        return cls(level=int(level), x=int(x), y=int(y))


@dataclass(frozen=True)
class AttributeBlock:
    """One attribute's dense block, flattened for JSON."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    values: tuple

    @classmethod
    def from_array(cls, name: str, array: np.ndarray) -> "AttributeBlock":
        return cls(
            name=name,
            dtype=str(array.dtype),
            shape=tuple(array.shape),
            values=tuple(array.ravel().tolist()),
        )

    def to_array(self) -> np.ndarray:
        return np.asarray(self.values, dtype=self.dtype).reshape(self.shape)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "values": list(self.values),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttributeBlock":
        return cls(
            name=data["name"],
            dtype=data["dtype"],
            shape=tuple(int(n) for n in data["shape"]),
            values=tuple(data["values"]),
        )


@dataclass(frozen=True)
class TilePayload:
    """A full tile on the wire: its address plus every attribute block."""

    tile: TileRef
    attributes: tuple[AttributeBlock, ...]

    @classmethod
    def from_tile(cls, tile: DataTile) -> "TilePayload":
        return cls(
            tile=TileRef.from_key(tile.key),
            attributes=tuple(
                AttributeBlock.from_array(name, array)
                for name, array in sorted(tile.attributes.items())
            ),
        )

    def to_tile(self) -> DataTile:
        return DataTile(
            key=self.tile.to_key(),
            attributes={
                block.name: block.to_array() for block in self.attributes
            },
        )

    def to_dict(self) -> dict:
        return {
            "tile": self.tile.to_list(),
            "attributes": [block.to_dict() for block in self.attributes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TilePayload":
        return cls(
            tile=TileRef.from_list(data["tile"]),
            attributes=tuple(
                AttributeBlock.from_dict(block) for block in data["attributes"]
            ),
        )


# ----------------------------------------------------------------------
# messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TileRequest:
    """One client request: session, the move taken, the target tile."""

    session_id: str
    tile: TileRef
    #: The interface move that led here (``Move.value``), or None for
    #: the session-opening request.
    move: str | None = None

    def to_move(self) -> Move | None:
        if self.move is None:
            return None
        try:
            return Move(self.move)
        except ValueError:
            raise InvalidRequestError(
                f"unknown move {self.move!r}", session_id=self.session_id
            ) from None

    def to_dict(self) -> dict:
        return {
            "session_id": self.session_id,
            "tile": self.tile.to_list(),
            "move": self.move,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TileRequest":
        return cls(
            session_id=data["session_id"],
            tile=TileRef.from_list(data["tile"]),
            move=data.get("move"),
        )


@dataclass(frozen=True)
class TileResponse:
    """One server response on the wire.

    ``payload`` carries the tile's dense data when the transport ships
    tiles; metadata-only transports leave it None and resolve the
    ``tile`` reference out of band.
    """

    session_id: str
    tile: TileRef
    latency_seconds: float
    hit: bool
    phase: str | None = None
    prefetched: tuple[TileRef, ...] = field(default_factory=tuple)
    payload: TilePayload | None = None

    @classmethod
    def from_result(
        cls, session_id: str, result, include_payload: bool = True
    ) -> "TileResponse":
        """Build the wire form of an in-process ``TileResponse``."""
        return cls(
            session_id=session_id,
            tile=TileRef.from_key(result.tile.key),
            latency_seconds=result.latency_seconds,
            hit=result.hit,
            phase=result.phase.value if result.phase is not None else None,
            prefetched=tuple(TileRef.from_key(k) for k in result.prefetched),
            payload=(
                TilePayload.from_tile(result.tile) if include_payload else None
            ),
        )

    def to_phase(self) -> AnalysisPhase | None:
        return AnalysisPhase.from_string(self.phase) if self.phase else None

    def to_dict(self) -> dict:
        return {
            "session_id": self.session_id,
            "tile": self.tile.to_list(),
            "latency_seconds": self.latency_seconds,
            "hit": self.hit,
            "phase": self.phase,
            "prefetched": [ref.to_list() for ref in self.prefetched],
            "payload": self.payload.to_dict() if self.payload else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TileResponse":
        payload = data.get("payload")
        return cls(
            session_id=data["session_id"],
            tile=TileRef.from_list(data["tile"]),
            latency_seconds=data["latency_seconds"],
            hit=data["hit"],
            phase=data.get("phase"),
            prefetched=tuple(
                TileRef.from_list(ref) for ref in data.get("prefetched", [])
            ),
            payload=TilePayload.from_dict(payload) if payload else None,
        )


@dataclass(frozen=True)
class SessionInfo:
    """A session's externally visible state and latency statistics."""

    session_id: str
    open: bool
    prefetch_mode: str
    requests: int
    hits: int
    hit_rate: float
    average_latency_seconds: float

    def to_dict(self) -> dict:
        return {
            "session_id": self.session_id,
            "open": self.open,
            "prefetch_mode": self.prefetch_mode,
            "requests": self.requests,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
            "average_latency_seconds": self.average_latency_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionInfo":
        return cls(**data)


@dataclass(frozen=True)
class ErrorInfo:
    """A failure on the wire; re-raisable via :meth:`to_exception`."""

    code: str
    message: str
    session_id: str | None = None

    @classmethod
    def from_exception(cls, exc: BaseException) -> "ErrorInfo":
        if isinstance(exc, ProtocolError):
            return cls(
                code=exc.code, message=exc.message, session_id=exc.session_id
            )
        return cls(code=ProtocolError.code, message=str(exc))

    def to_exception(self) -> ProtocolError:
        return ERROR_TYPES.get(self.code, ProtocolError)(
            self.message, session_id=self.session_id
        )

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "session_id": self.session_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ErrorInfo":
        return cls(**data)


# ----------------------------------------------------------------------
# envelope
# ----------------------------------------------------------------------
MESSAGE_TYPES: dict[str, type] = {
    "tile_request": TileRequest,
    "tile_response": TileResponse,
    "session_info": SessionInfo,
    "error": ErrorInfo,
}
_TYPE_NAMES = {cls: name for name, cls in MESSAGE_TYPES.items()}


def encode(message) -> str:
    """Serialize any wire message to a tagged JSON string."""
    name = _TYPE_NAMES.get(type(message))
    if name is None:
        raise TypeError(f"{type(message).__name__} is not a wire message")
    return json.dumps({"type": name, **message.to_dict()})


def decode(data: str):
    """Parse a tagged JSON string back into its wire message."""
    try:
        raw = json.loads(data)
    except json.JSONDecodeError as exc:
        raise InvalidRequestError(f"malformed JSON: {exc}") from None
    if not isinstance(raw, dict):
        raise InvalidRequestError("wire messages must be JSON objects")
    name = raw.pop("type", None)
    cls = MESSAGE_TYPES.get(name)
    if cls is None:
        raise InvalidRequestError(f"unknown message type {name!r}")
    try:
        return cls.from_dict(raw)
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidRequestError(
            f"malformed {name} message: {exc}"
        ) from None
