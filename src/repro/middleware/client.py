"""The lightweight client interface.

The front-end visualizer only ever talks to the back-end through tile
requests (Section 3).  :class:`BrowsingSession` models one user session:
it tracks the current tile, validates moves against the pyramid, and
forwards requests to the server.  It can also replay a recorded trace —
the workhorse of the latency experiments.
"""

from __future__ import annotations

from repro.middleware.server import ForeCacheServer, TileResponse
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.users.session import Trace


class BrowsingSession:
    """One user's live session against a ForeCache server."""

    def __init__(self, server: ForeCacheServer) -> None:
        self.server = server
        self.current: TileKey | None = None

    def start(self, at: TileKey | None = None) -> TileResponse:
        """Open the session at a tile (default: the root overview)."""
        if self.current is not None:
            raise RuntimeError("session already started")
        key = at if at is not None else self.server.pyramid.grid.root
        if not self.server.pyramid.grid.valid(key):
            raise ValueError(f"tile {key} is not in the pyramid")
        self.current = key
        return self.server.handle_request(None, key)

    def move(self, move: Move) -> TileResponse:
        """Apply one interface move and request the resulting tile."""
        if self.current is None:
            raise RuntimeError("session not started; call start() first")
        target = self.server.pyramid.grid.apply(self.current, move)
        if target is None:
            raise ValueError(f"move {move} is not legal from {self.current}")
        self.current = target
        return self.server.handle_request(move, target)

    @property
    def available_moves(self) -> list[Move]:
        """Moves legal from the current tile."""
        if self.current is None:
            return []
        return [
            move
            for move, _ in self.server.pyramid.grid.available_moves(self.current)
        ]

    def replay(self, trace: Trace) -> list[TileResponse]:
        """Replay a recorded trace through the server, returning every
        response.  The session must be fresh."""
        if self.current is not None:
            raise RuntimeError("replay requires a fresh session")
        responses = []
        for request in trace.requests:
            self.current = request.tile
            responses.append(
                self.server.handle_request(request.move, request.tile)
            )
        return responses
