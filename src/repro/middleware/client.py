"""The lightweight client interface.

The front-end visualizer only ever talks to the back-end through tile
requests (Section 3).  :class:`BrowsingSession` models one user session:
it tracks the current tile, validates moves against the pyramid, and
forwards requests to a *connection* — anything exposing ``.pyramid`` and
``.handle_request(move, key)``.  That contract is satisfied by the
legacy :class:`~repro.middleware.server.ForeCacheServer`, a facade
:class:`~repro.middleware.service.SessionHandle`, and a wire-speaking
:class:`~repro.middleware.transport.WireSessionClient`, so the same
client code drives every front end.  :class:`AsyncBrowsingSession` is
the identical client for the asyncio front end
(:class:`~repro.middleware.aio.AsyncSessionHandle`).

Both can replay a recorded trace — the workhorse of the latency
experiments.
"""

from __future__ import annotations

from repro.middleware.service import TileResponse
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.users.session import Trace


class _BrowsingState:
    """Position tracking and move validation shared by both clients."""

    def __init__(self, pyramid) -> None:
        self.pyramid = pyramid
        self.current: TileKey | None = None

    def _start_key(self, at: TileKey | None) -> TileKey:
        if self.current is not None:
            raise RuntimeError("session already started")
        key = at if at is not None else self.pyramid.grid.root
        if not self.pyramid.grid.valid(key):
            raise ValueError(f"tile {key} is not in the pyramid")
        return key

    def _move_target(self, move: Move) -> TileKey:
        if self.current is None:
            raise RuntimeError("session not started; call start() first")
        target = self.pyramid.grid.apply(self.current, move)
        if target is None:
            raise ValueError(f"move {move} is not legal from {self.current}")
        return target

    def _check_fresh_for_replay(self) -> None:
        if self.current is not None:
            raise RuntimeError("replay requires a fresh session")

    @property
    def available_moves(self) -> list[Move]:
        """Moves legal from the current tile."""
        if self.current is None:
            return []
        return [
            move for move, _ in self.pyramid.grid.available_moves(self.current)
        ]


class BrowsingSession(_BrowsingState):
    """One user's live session against any synchronous front end."""

    def __init__(self, server) -> None:
        super().__init__(server.pyramid)
        self.server = server

    def start(self, at: TileKey | None = None) -> TileResponse:
        """Open the session at a tile (default: the root overview)."""
        key = self._start_key(at)
        self.current = key
        return self.server.handle_request(None, key)

    def move(self, move: Move) -> TileResponse:
        """Apply one interface move and request the resulting tile."""
        target = self._move_target(move)
        self.current = target
        return self.server.handle_request(move, target)

    def replay(self, trace: Trace) -> list[TileResponse]:
        """Replay a recorded trace through the server, returning every
        response.  The session must be fresh."""
        self._check_fresh_for_replay()
        responses = []
        for request in trace.requests:
            self.current = request.tile
            responses.append(
                self.server.handle_request(request.move, request.tile)
            )
        return responses


class AsyncBrowsingSession(_BrowsingState):
    """The same client, for awaitable connections (asyncio front end).

    The connection must expose ``.pyramid`` and an awaitable
    ``.request(move, key)`` — an
    :class:`~repro.middleware.aio.AsyncSessionHandle` does.
    """

    def __init__(self, session) -> None:
        super().__init__(session.pyramid)
        self.session = session

    async def start(self, at: TileKey | None = None) -> TileResponse:
        """Open the session at a tile (default: the root overview)."""
        key = self._start_key(at)
        # Position advances only once the request succeeds, so a cancel
        # that lands before the request ran leaves the client fully
        # fresh and retryable.  A cancel *mid-flight* is weaker: the
        # worker thread finishes the request server-side (engine
        # observes it, the recorder logs it) while the client stays
        # put — callers who cancel mid-flight and care about exact
        # engine history should resync via the session's recorder/info
        # rather than blindly retrying the same move.
        response = await self.session.request(None, key)
        self.current = key
        return response

    async def move(self, move: Move) -> TileResponse:
        """Apply one interface move and request the resulting tile."""
        target = self._move_target(move)
        response = await self.session.request(move, target)
        self.current = target
        return response

    async def replay(self, trace: Trace) -> list[TileResponse]:
        """Replay a recorded trace, returning every response."""
        self._check_fresh_for_replay()
        responses = []
        for request in trace.requests:
            responses.append(
                await self.session.request(request.move, request.tile)
            )
            self.current = request.tile
        return responses
