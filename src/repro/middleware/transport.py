"""In-process transport: the wire protocol without a network.

Proves (and tests) transport independence: every request is serialized
to a JSON :class:`~repro.middleware.protocol.TileRequest`, handed to the
server side as a *string*, served by the facade, and the response comes
back as a JSON string that the client decodes — exactly the round trip
an HTTP or websocket transport would make, minus the socket.

    transport = InProcessTransport(service)
    conn = transport.connect(engine)          # opens a facade session
    BrowsingSession(conn).replay(trace)       # same client code as ever

:class:`WireSessionClient` satisfies the same connection contract as a
legacy server or a :class:`~repro.middleware.service.SessionHandle`
(``.pyramid`` + ``.handle_request(move, key)``), so the one
``BrowsingSession`` drives every front end.
"""

from __future__ import annotations

from repro.core.engine import PredictionEngine
from repro.middleware import protocol
from repro.middleware.protocol import (
    ErrorInfo,
    InvalidRequestError,
    ProtocolError,
    SessionNotFoundError,
    TileRef,
    TileRequest,
)
from repro.middleware.service import ForeCacheService, TileResponse
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TilePyramid


class InProcessTransport:
    """Moves protocol JSON strings between client stubs and a facade."""

    def __init__(
        self, service: ForeCacheService, include_payload: bool = True
    ) -> None:
        self.service = service
        #: Ship tile payloads in responses (a metadata-only transport
        #: would resolve tiles out of band).
        self.include_payload = include_payload

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def send(self, data: str) -> str:
        """Serve one encoded request; errors come back as ErrorInfo."""
        try:
            message = protocol.decode(data)
            if not isinstance(message, TileRequest):
                raise InvalidRequestError(
                    f"transport serves tile_request messages, got"
                    f" {type(message).__name__}"
                )
            result = self.service.request(
                message.session_id, message.to_move(), message.tile.to_key()
            )
            return protocol.encode(
                protocol.TileResponse.from_result(
                    message.session_id,
                    result,
                    include_payload=self.include_payload,
                )
            )
        except Exception as exc:
            return protocol.encode(ErrorInfo.from_exception(exc))

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def connect(
        self,
        engine: PredictionEngine | None = None,
        session_id: str | None = None,
    ) -> "WireSessionClient":
        """Open a facade session and return a wire-speaking client for it.

        Wire session ids are strings (they travel in JSON), so a
        non-string id is stringified *before* the session opens — the
        facade and the wire must agree on the key.
        """
        handle = self.service.open_session(
            engine, str(session_id) if session_id is not None else None
        )
        return WireSessionClient(self, str(handle.session_id))


class WireSessionClient:
    """One session's client stub: talks JSON, returns in-process responses."""

    def __init__(self, transport: InProcessTransport, session_id: str) -> None:
        self.transport = transport
        self.session_id = session_id
        self._closed = False

    @property
    def pyramid(self) -> TilePyramid:
        """Client-side pyramid knowledge (move validation, root tile)."""
        return self.transport.service.pyramid

    def handle_request(self, move: Move | None, key: TileKey) -> TileResponse:
        """Round-trip one request through the wire protocol."""
        raw = self.transport.send(
            protocol.encode(
                TileRequest(
                    session_id=self.session_id,
                    tile=TileRef.from_key(key),
                    move=move.value if move is not None else None,
                )
            )
        )
        message = protocol.decode(raw)
        if isinstance(message, ErrorInfo):
            raise message.to_exception()
        if not isinstance(message, protocol.TileResponse):
            raise ProtocolError(
                f"expected tile_response, got {type(message).__name__}"
            )
        if message.payload is None:
            raise ProtocolError(
                "transport returned no payload; client cannot materialize"
                f" tile {message.tile.to_key()}"
            )
        return TileResponse(
            tile=message.payload.to_tile(),
            latency_seconds=message.latency_seconds,
            hit=message.hit,
            phase=message.to_phase(),
            prefetched=tuple(ref.to_key() for ref in message.prefetched),
        )

    def close(self) -> None:
        """Close the underlying facade session.  Idempotent, matching
        the ``SessionHandle.close`` contract this client mirrors."""
        if self._closed:
            return
        self._closed = True
        try:
            self.transport.service.close_session(self.session_id)
        except SessionNotFoundError:
            pass  # already closed server-side (e.g. service.close())
