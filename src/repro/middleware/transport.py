"""Client-side transports: the wire protocol with and without a network.

:class:`Transport` is the contract every client-side transport
implements — ``connect()`` opens a session and returns a connection
satisfying the ``BrowsingSession`` interface (``.pyramid`` +
``.handle_request(move, key)``), so the one client drives every
transport.  Two implementations exist:

- :class:`InProcessTransport` (here) proves transport independence:
  every request is serialized to a JSON
  :class:`~repro.middleware.protocol.TileRequest`, handed to the server
  side as a *string*, served by the facade, and the response comes back
  as a JSON string that the client decodes — exactly the round trip a
  socket transport makes, minus the socket.  With ``payload="binary"``
  responses come back instead as the binary *message* encoding (JSON
  header + raw array bytes) that the socket transports negotiate,
  exercising the dense-payload codec without a socket.
- :class:`~repro.middleware.net.SocketTransport` speaks the same
  protocol as framed bytes over TCP.

    transport = InProcessTransport(service)
    conn = transport.connect(engine)          # opens a facade session
    BrowsingSession(conn).replay(trace)       # same client code as ever
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.engine import PredictionEngine
from repro.middleware import protocol
from repro.middleware.protocol import (
    ErrorInfo,
    InvalidRequestError,
    ProtocolError,
    SessionNotFoundError,
    TileRef,
    TileRequest,
)
from repro.middleware.service import ForeCacheService, TileResponse
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TilePyramid


class Transport(ABC):
    """What a client-side transport provides: sessions over the wire.

    ``connect()`` opens a server-side session and returns a connection
    exposing ``.pyramid``, ``.handle_request(move, key)`` and
    ``.close()``.  ``close()`` releases the transport itself (idempotent;
    the in-process transport holds nothing to release).
    """

    @abstractmethod
    def connect(
        self,
        engine: PredictionEngine | None = None,
        session_id: str | None = None,
    ):
        """Open a session; return its wire-speaking connection."""

    def close(self) -> None:
        """Release transport resources.  Idempotent."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def response_to_client(message) -> TileResponse:
    """Turn a decoded server reply into an in-process ``TileResponse``.

    The one materialization path every transport's client shares:
    errors re-raise as their typed exception, non-responses and
    payload-less responses are protocol violations.
    """
    if isinstance(message, ErrorInfo):
        raise message.to_exception()
    if not isinstance(message, protocol.TileResponse):
        raise ProtocolError(
            f"expected tile_response, got {type(message).__name__}"
        )
    if message.payload is None:
        raise ProtocolError(
            "transport returned no payload; client cannot materialize"
            f" tile {message.tile.to_key()}"
        )
    return TileResponse(
        tile=message.payload.to_tile(),
        latency_seconds=message.latency_seconds,
        hit=message.hit,
        phase=message.to_phase(),
        prefetched=tuple(ref.to_key() for ref in message.prefetched),
        fidelity=message.fidelity,
    )


class InProcessTransport(Transport):
    """Moves protocol JSON strings between client stubs and a facade.

    With ``payload="binary"`` responses travel as the binary message
    encoding instead (bytes: JSON header + packed array blob) — the
    same codec the socket transports negotiate, minus the framing.
    Requests stay JSON either way, as they do on the wire.
    """

    def __init__(
        self,
        service: ForeCacheService,
        include_payload: bool = True,
        *,
        payload: str = "json",
    ) -> None:
        if payload not in protocol.PAYLOADS:
            raise ValueError(
                f"payload must be one of {protocol.PAYLOADS}, got {payload!r}"
            )
        self.service = service
        #: Ship tile payloads in responses (a metadata-only transport
        #: would resolve tiles out of band).
        self.include_payload = include_payload
        #: Payload encoding for responses ("json" | "binary").
        self.payload = payload

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def send(self, data: str) -> str | bytes:
        """Serve one encoded request; errors come back as ErrorInfo."""
        binary = self.payload == "binary"
        try:
            message = protocol.decode(data)
            if not isinstance(message, TileRequest):
                raise InvalidRequestError(
                    f"transport serves tile_request messages, got"
                    f" {type(message).__name__}"
                )
            result = self.service.request(
                message.session_id, message.to_move(), message.tile.to_key()
            )
            response = protocol.TileResponse.from_result(
                message.session_id,
                result,
                include_payload=self.include_payload,
                binary=binary,
            )
            if binary and response.payload is not None:
                return protocol.encode_binary_message(response)
            return protocol.encode(response)
        except Exception as exc:
            # Errors carry no payload, so they stay JSON in both modes —
            # exactly as the binary wire framing sends them (kind-0).
            return protocol.encode(ErrorInfo.from_exception(exc))

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def connect(
        self,
        engine: PredictionEngine | None = None,
        session_id: str | None = None,
    ) -> "WireSessionClient":
        """Open a facade session and return a wire-speaking client for it.

        Wire session ids are strings (they travel in JSON), so a
        non-string id is stringified *before* the session opens — the
        facade and the wire must agree on the key.
        """
        handle = self.service.open_session(
            engine, str(session_id) if session_id is not None else None
        )
        return WireSessionClient(self, str(handle.session_id))


class WireSessionClient:
    """One session's client stub: talks JSON, returns in-process responses."""

    def __init__(self, transport: InProcessTransport, session_id: str) -> None:
        self.transport = transport
        self.session_id = session_id
        self._closed = False

    @property
    def pyramid(self) -> TilePyramid:
        """Client-side pyramid knowledge (move validation, root tile)."""
        return self.transport.service.pyramid

    def handle_request(self, move: Move | None, key: TileKey) -> TileResponse:
        """Round-trip one request through the wire protocol."""
        raw = self.transport.send(
            protocol.encode(
                TileRequest(
                    session_id=self.session_id,
                    tile=TileRef.from_key(key),
                    move=move.value if move is not None else None,
                )
            )
        )
        # decode_wire dispatches on type: str replies are JSON, bytes
        # replies are binary message bodies (payload="binary" mode).
        return response_to_client(protocol.decode_wire(raw))

    def close(self) -> None:
        """Close the underlying facade session.  Idempotent, matching
        the ``SessionHandle.close`` contract this client mirrors."""
        if self._closed:
            return
        self._closed = True
        try:
            self.transport.service.close_session(self.session_id)
        except SessionNotFoundError:
            pass  # already closed server-side (e.g. service.close())
