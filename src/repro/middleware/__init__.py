"""The ForeCache middleware: client/server glue (Section 3).

:class:`ForeCacheServer` wires the prediction engine, the cache manager,
and the backend DBMS together; :class:`BrowsingSession` is the
lightweight client the user (or a trace replay) drives;
:class:`PrefetchScheduler` runs prefetch lists on a background worker
pool so think-time overlap is physical, not just simulated.
"""

from repro.middleware.client import BrowsingSession
from repro.middleware.latency import (
    HIT_SECONDS,
    LatencyModel,
    LatencyRecorder,
    MISS_SECONDS,
)
from repro.middleware.multiuser import MultiUserResponse, MultiUserServer
from repro.middleware.scheduler import PrefetchJob, PrefetchScheduler
from repro.middleware.server import ForeCacheServer, TileResponse

__all__ = [
    "BrowsingSession",
    "ForeCacheServer",
    "HIT_SECONDS",
    "LatencyModel",
    "LatencyRecorder",
    "MISS_SECONDS",
    "MultiUserResponse",
    "MultiUserServer",
    "PrefetchJob",
    "PrefetchScheduler",
    "TileResponse",
]
