"""The ForeCache middleware: client/server glue (Section 3).

:class:`ForeCacheService` is the serving facade — sessions are
first-class (``open_session() -> SessionHandle``), construction is via
frozen configs (:class:`ServiceConfig`, :class:`PrefetchPolicy`,
:class:`CacheConfig`), and requests/responses have a typed,
JSON-serializable wire form (:mod:`repro.middleware.protocol`).
:class:`AsyncForeCacheService` is the asyncio front end;
:class:`InProcessTransport` runs the wire protocol without a network.
:class:`BrowsingSession` / :class:`AsyncBrowsingSession` are the
lightweight clients the user (or a trace replay) drives, against any
front end.  The legacy kwargs-constructed :class:`ForeCacheServer` and
:class:`MultiUserServer` remain as thin adapters over the facade.
"""

from repro.middleware.aio import AsyncForeCacheService, AsyncSessionHandle
from repro.middleware.client import AsyncBrowsingSession, BrowsingSession
from repro.middleware.cluster import (
    ConsistentHashRing,
    HotspotGossiper,
    ProcessCluster,
    ThreadedClusterServer,
    ThreadedRouter,
    TileServiceRouter,
    WorkerSpec,
)
from repro.middleware.config import (
    PREFETCH_MODES,
    SHARED_HOTSPOT_MODES,
    CacheConfig,
    PrefetchPolicy,
    ServiceConfig,
)
from repro.middleware.latency import (
    HIT_SECONDS,
    LatencyModel,
    LatencyRecorder,
    MISS_SECONDS,
)
from repro.middleware.multiuser import MultiUserResponse, MultiUserServer
from repro.middleware.net import (
    AsyncSocketSessionClient,
    AsyncSocketTransport,
    ForeCacheSocketServer,
    SocketSessionClient,
    SocketTransport,
    ThreadedSocketServer,
)
# The wire messages (protocol.TileRequest, protocol.TileResponse, ...)
# deliberately stay namespaced under ``repro.middleware.protocol``: the
# package root's ``TileResponse`` is the *in-process* response, and
# exporting a same-named wire twin (or its request half alone) here
# would invite wrong-class imports.
from repro.middleware.protocol import (
    DuplicateSessionError,
    ErrorInfo,
    FrameDecoder,
    FramingError,
    FrameTooLargeError,
    InvalidRequestError,
    ProtocolError,
    SessionClosedError,
    SessionInfo,
    SessionNotFoundError,
    VersionMismatchError,
    WorkerUnavailableError,
)
from repro.middleware.scheduler import (
    ADMISSION_MODES,
    PrefetchJob,
    PrefetchScheduler,
)
from repro.middleware.server import ForeCacheServer
from repro.middleware.service import (
    ForeCacheService,
    SessionHandle,
    TileResponse,
)
from repro.middleware.transport import (
    InProcessTransport,
    Transport,
    WireSessionClient,
)

__all__ = [
    "ADMISSION_MODES",
    "AsyncBrowsingSession",
    "AsyncForeCacheService",
    "AsyncSessionHandle",
    "AsyncSocketSessionClient",
    "AsyncSocketTransport",
    "BrowsingSession",
    "CacheConfig",
    "ConsistentHashRing",
    "DuplicateSessionError",
    "ErrorInfo",
    "ForeCacheServer",
    "ForeCacheService",
    "ForeCacheSocketServer",
    "FrameDecoder",
    "FramingError",
    "FrameTooLargeError",
    "HIT_SECONDS",
    "HotspotGossiper",
    "InProcessTransport",
    "InvalidRequestError",
    "LatencyModel",
    "LatencyRecorder",
    "MISS_SECONDS",
    "MultiUserResponse",
    "MultiUserServer",
    "PREFETCH_MODES",
    "PrefetchJob",
    "PrefetchPolicy",
    "PrefetchScheduler",
    "ProcessCluster",
    "ProtocolError",
    "SHARED_HOTSPOT_MODES",
    "SessionClosedError",
    "SessionHandle",
    "SessionInfo",
    "SessionNotFoundError",
    "ServiceConfig",
    "SocketSessionClient",
    "SocketTransport",
    "ThreadedClusterServer",
    "ThreadedRouter",
    "ThreadedSocketServer",
    "TileServiceRouter",
    "Transport",
    "VersionMismatchError",
    "TileResponse",
    "WireSessionClient",
    "WorkerSpec",
    "WorkerUnavailableError",
]
