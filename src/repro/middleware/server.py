"""The ForeCache middleware server.

Request lifecycle (Figure 5): the visualizer asks for a tile; the server
answers from the cache manager (hit) or the DBMS (miss); the prediction
engine then updates its state and emits an ordered prefetch list ``P``.

Two prefetch modes decide who executes ``P``:

- ``prefetch_mode="sync"`` (the seed behavior): the cache manager runs
  the whole list inside the request call.  Think-time overlap is
  accounted in *virtual* time only — the figure benchmarks reproduce the
  paper's arithmetic on this path.
- ``prefetch_mode="background"``: the list is handed to a
  :class:`~repro.middleware.scheduler.PrefetchScheduler`, whose worker
  pool fetches tiles during the user's real think time.  The next
  request supersedes any of its still-queued jobs, and concurrent
  misses on a tile already being prefetched coalesce onto that load.

A server instance serializes one user session: callers must not issue
two ``handle_request`` calls for the *same* server concurrently (the
prediction engine is stateful).  Many servers — or the
:class:`~repro.middleware.multiuser.MultiUserServer` — may share one
cache manager and one scheduler across threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.manager import CacheManager
from repro.core.engine import PredictionEngine
from repro.middleware.latency import LatencyModel, LatencyRecorder
from repro.middleware.scheduler import PrefetchScheduler
from repro.phases.model import AnalysisPhase
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TilePyramid
from repro.tiles.tile import DataTile

PREFETCH_MODES = ("sync", "background")


@dataclass(frozen=True)
class TileResponse:
    """What the client gets back for one request."""

    tile: DataTile
    latency_seconds: float
    hit: bool
    phase: AnalysisPhase | None
    prefetched: tuple[TileKey, ...] = field(default_factory=tuple)


class ForeCacheServer:
    """Prediction engine + cache manager + DBMS, behind one entry point."""

    def __init__(
        self,
        pyramid: TilePyramid,
        engine: PredictionEngine,
        cache_manager: CacheManager | None = None,
        latency_model: LatencyModel | None = None,
        prefetch_k: int = 5,
        prefetch_enabled: bool = True,
        prefetch_mode: str = "sync",
        scheduler: PrefetchScheduler | None = None,
        prefetch_workers: int = 2,
        session_id: int | None = None,
    ) -> None:
        if prefetch_k < 1:
            raise ValueError(f"prefetch_k must be >= 1, got {prefetch_k}")
        if prefetch_mode not in PREFETCH_MODES:
            raise ValueError(
                f"prefetch_mode must be one of {PREFETCH_MODES}, got"
                f" {prefetch_mode!r}"
            )
        self.pyramid = pyramid
        self.engine = engine
        if cache_manager is None:
            # A provided scheduler's manager IS the serving cache; building
            # a second one would silently prefetch into the wrong cache.
            cache_manager = (
                scheduler.cache_manager
                if scheduler is not None
                else CacheManager(pyramid)
            )
        elif scheduler is not None and scheduler.cache_manager is not cache_manager:
            raise ValueError(
                "scheduler and server must share one cache_manager; "
                "prefetched tiles would land in a cache requests never read"
            )
        self.cache_manager = cache_manager
        self.latency_model = (
            latency_model if latency_model is not None else LatencyModel()
        )
        self.prefetch_k = prefetch_k
        self.prefetch_enabled = prefetch_enabled
        self.prefetch_mode = prefetch_mode
        # Each server defaults to a distinct scheduler session, so two
        # servers sharing one scheduler supersede only their own rounds.
        self.session_id = session_id if session_id is not None else id(self)
        self._owns_scheduler = False
        if prefetch_mode == "background" and scheduler is None:
            scheduler = PrefetchScheduler(
                self.cache_manager, max_workers=prefetch_workers
            )
            self._owns_scheduler = True
        self.scheduler = scheduler
        self.recorder = LatencyRecorder()

    def handle_request(self, move: Move | None, key: TileKey) -> TileResponse:
        """Serve one tile request and prefetch for the next one."""
        outcome = self.cache_manager.fetch(key)
        latency = self.latency_model.response_seconds(
            outcome.hit, outcome.backend_seconds
        )
        self.recorder.record(latency, outcome.hit)

        self.engine.observe(move, key)
        phase: AnalysisPhase | None = None
        prefetched: tuple[TileKey, ...] = ()
        if self.prefetch_enabled:
            result = self.engine.predict(self.prefetch_k)
            phase = result.phase
            if self.prefetch_mode == "background":
                self.scheduler.schedule(result, session_id=self.session_id)
            else:
                self.cache_manager.prefetch(result.attributed_tiles())
            prefetched = tuple(result.tiles)
        return TileResponse(
            tile=outcome.tile,
            latency_seconds=latency,
            hit=outcome.hit,
            phase=phase,
            prefetched=prefetched,
        )

    def drain(self, timeout: float | None = None) -> bool:
        """Wait for outstanding background prefetch work (tests/benchmarks).

        Synchronous servers are always drained; returns False only if a
        timeout expired with jobs still queued.
        """
        if self.scheduler is None:
            return True
        return self.scheduler.wait_idle(timeout)

    def close(self) -> None:
        """Release scheduler resources.  Idempotent.

        On a shared scheduler, this server's queued jobs are cancelled
        and its session entry dropped; a scheduler this server created
        is shut down outright.
        """
        if self.scheduler is None:
            return
        if self._owns_scheduler:
            self.scheduler.shutdown()
        else:
            self.scheduler.cancel_session(self.session_id)

    def __enter__(self) -> "ForeCacheServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def reset_session(self, drain_timeout: float = 10.0) -> None:
        """Start a fresh user session (engine state and cache cleared).

        Queued background jobs for this session are cancelled.  The
        worker pool is drained (bounded by ``drain_timeout``) only when
        this server owns it — on a shared scheduler other sessions'
        traffic keeps the pool busy indefinitely and their work is not
        ours to wait on.
        """
        if self.scheduler is not None:
            self.scheduler.cancel_session(self.session_id)
            if self._owns_scheduler:
                self.scheduler.wait_idle(drain_timeout)
        self.engine.reset()
        self.cache_manager.cache.clear()
        self.cache_manager.reset_stats()
        self.recorder = LatencyRecorder()
