"""The ForeCache middleware server.

Request lifecycle (Figure 5): the visualizer asks for a tile; the server
answers from the cache manager (hit) or the DBMS (miss); the prediction
engine then updates its state and emits an ordered prefetch list, which
the cache manager executes during the user's think time.  Prefetch work
therefore never counts toward response latency — exactly the overlap the
paper's design exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.manager import CacheManager
from repro.core.engine import PredictionEngine
from repro.middleware.latency import LatencyModel, LatencyRecorder
from repro.phases.model import AnalysisPhase
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TilePyramid
from repro.tiles.tile import DataTile


@dataclass(frozen=True)
class TileResponse:
    """What the client gets back for one request."""

    tile: DataTile
    latency_seconds: float
    hit: bool
    phase: AnalysisPhase | None
    prefetched: tuple[TileKey, ...] = field(default_factory=tuple)


class ForeCacheServer:
    """Prediction engine + cache manager + DBMS, behind one entry point."""

    def __init__(
        self,
        pyramid: TilePyramid,
        engine: PredictionEngine,
        cache_manager: CacheManager | None = None,
        latency_model: LatencyModel | None = None,
        prefetch_k: int = 5,
        prefetch_enabled: bool = True,
    ) -> None:
        if prefetch_k < 1:
            raise ValueError(f"prefetch_k must be >= 1, got {prefetch_k}")
        self.pyramid = pyramid
        self.engine = engine
        self.cache_manager = (
            cache_manager if cache_manager is not None else CacheManager(pyramid)
        )
        self.latency_model = (
            latency_model if latency_model is not None else LatencyModel()
        )
        self.prefetch_k = prefetch_k
        self.prefetch_enabled = prefetch_enabled
        self.recorder = LatencyRecorder()

    def handle_request(self, move: Move | None, key: TileKey) -> TileResponse:
        """Serve one tile request and prefetch for the next one."""
        outcome = self.cache_manager.fetch(key)
        latency = self.latency_model.response_seconds(
            outcome.hit, outcome.backend_seconds
        )
        self.recorder.record(latency, outcome.hit)

        self.engine.observe(move, key)
        phase: AnalysisPhase | None = None
        prefetched: tuple[TileKey, ...] = ()
        if self.prefetch_enabled:
            result = self.engine.predict(self.prefetch_k)
            phase = result.phase
            self.cache_manager.prefetch(result.attributed_tiles())
            prefetched = tuple(result.tiles)
        return TileResponse(
            tile=outcome.tile,
            latency_seconds=latency,
            hit=outcome.hit,
            phase=phase,
            prefetched=prefetched,
        )

    def reset_session(self) -> None:
        """Start a fresh user session (engine state and cache cleared)."""
        self.engine.reset()
        self.cache_manager.cache.clear()
        self.cache_manager.reset_stats()
        self.recorder = LatencyRecorder()
