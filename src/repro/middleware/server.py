"""The legacy single-session server, now a thin facade adapter.

.. deprecated::
    Direct ``ForeCacheServer(**kwargs)`` construction is the PR-1 API,
    kept working for the figure benchmarks and existing callers.  New
    code should build a :class:`~repro.middleware.service.ForeCacheService`
    from a :class:`~repro.middleware.config.ServiceConfig` and call
    ``open_session()`` — see README "Serving architecture" for the
    kwarg → config migration table.

Request lifecycle (Figure 5) is unchanged: the visualizer asks for a
tile; the facade answers from the cache manager (hit) or the DBMS
(miss); the prediction engine then updates its state and emits an
ordered prefetch list ``P``, executed inline (``prefetch_mode="sync"``,
the paper's virtual-time arithmetic) or on the scheduler's worker pool
(``"background"``).  A server instance wraps exactly one facade session:
callers must not issue two ``handle_request`` calls for the *same*
server concurrently (the prediction engine is stateful).  Many servers —
or the :class:`~repro.middleware.multiuser.MultiUserServer` — may share
one cache manager and one scheduler across threads.
"""

from __future__ import annotations

from repro.cache.manager import CacheManager
from repro.core.engine import PredictionEngine
from repro.middleware.config import (
    PREFETCH_MODES,
    CacheConfig,
    PrefetchPolicy,
    ServiceConfig,
)
from repro.middleware.latency import LatencyModel, LatencyRecorder
from repro.middleware.scheduler import PrefetchScheduler
from repro.middleware.service import ForeCacheService, TileResponse
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TilePyramid

__all__ = ["PREFETCH_MODES", "ForeCacheServer", "TileResponse"]


class ForeCacheServer:
    """One user session over a private :class:`ForeCacheService`."""

    def __init__(
        self,
        pyramid: TilePyramid,
        engine: PredictionEngine,
        cache_manager: CacheManager | None = None,
        latency_model: LatencyModel | None = None,
        prefetch_k: int = 5,
        prefetch_enabled: bool = True,
        prefetch_mode: str = "sync",
        scheduler: PrefetchScheduler | None = None,
        prefetch_workers: int = 2,
        prefetch_admission: str = "priority",
        cache_shards: int = 1,
        shared_hotspots: str = "off",
        session_id: int | None = None,
    ) -> None:
        config = ServiceConfig(
            prefetch=PrefetchPolicy(
                k=prefetch_k,
                enabled=prefetch_enabled,
                mode=prefetch_mode,
                workers=prefetch_workers,
                admission=prefetch_admission,
                shared_hotspots=shared_hotspots,
            ),
            cache=CacheConfig(shards=cache_shards),
        )
        self._service = ForeCacheService(
            pyramid,
            config,
            cache_manager=cache_manager,
            scheduler=scheduler,
            latency_model=latency_model,
        )
        # Each server defaults to a distinct scheduler session, so two
        # servers sharing one scheduler supersede only their own rounds.
        self._handle = self._service.open_session(
            engine, session_id if session_id is not None else id(self)
        )

    # ------------------------------------------------------------------
    # legacy surface, delegated
    # ------------------------------------------------------------------
    @property
    def service(self) -> ForeCacheService:
        """The facade this server adapts (one open session)."""
        return self._service

    @property
    def pyramid(self) -> TilePyramid:
        return self._service.pyramid

    @property
    def engine(self) -> PredictionEngine:
        return self._handle.engine

    @property
    def cache_manager(self) -> CacheManager:
        return self._service.cache_manager

    @property
    def latency_model(self) -> LatencyModel:
        return self._service.latency_model

    @property
    def scheduler(self) -> PrefetchScheduler | None:
        return self._service.scheduler

    @property
    def hotspot_registry(self):
        """The shared popularity model (None with shared_hotspots="off")."""
        return self._service.hotspot_registry

    @property
    def recorder(self) -> LatencyRecorder:
        return self._handle.recorder

    @property
    def session_id(self):
        return self._handle.session_id

    @property
    def prefetch_k(self) -> int:
        return self._service.config.prefetch.k

    @property
    def prefetch_enabled(self) -> bool:
        return self._service.config.prefetch.enabled

    @property
    def prefetch_mode(self) -> str:
        return self._service.config.prefetch.mode

    def handle_request(self, move: Move | None, key: TileKey) -> TileResponse:
        """Serve one tile request and prefetch for the next one."""
        return self._handle.request(move, key)

    def drain(self, timeout: float | None = None) -> bool:
        """Wait for outstanding background prefetch work (tests/benchmarks).

        Synchronous servers are always drained; returns False only if a
        timeout expired with jobs still queued.
        """
        return self._service.drain(timeout)

    def close(self) -> None:
        """Release scheduler resources.  Idempotent.

        On a shared scheduler, this server's queued jobs are cancelled
        and its session entry dropped; a scheduler this server created
        is shut down outright.  (Legacy semantics: the session itself
        stays requestable — the facade's ``close_session`` is stricter.)
        """
        scheduler = self._service.scheduler
        if scheduler is None:
            return
        if self._service.owns_scheduler:
            scheduler.shutdown()
        else:
            scheduler.cancel_session(self.session_id)

    def __enter__(self) -> "ForeCacheServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def reset_session(self, drain_timeout: float = 10.0) -> None:
        """Start a fresh user session (engine state and cache cleared).

        Queued background jobs for this session are cancelled.  The
        worker pool is drained (bounded by ``drain_timeout``) only when
        this server owns it — on a shared scheduler other sessions'
        traffic keeps the pool busy indefinitely and their work is not
        ours to wait on.
        """
        self._handle.reset()
        if self._service.scheduler is not None and self._service.owns_scheduler:
            self._service.scheduler.wait_idle(drain_timeout)
        self.cache_manager.cache.clear()
        self.cache_manager.reset_stats()
