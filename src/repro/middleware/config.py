"""Frozen configuration for the serving layer.

The facade (:class:`~repro.middleware.service.ForeCacheService`) is
constructed from three small value objects instead of the ~10 positional
kwargs the original servers grew:

- :class:`CacheConfig` — shape of the two-region middleware cache, its
  lock striping (``shards``), and the emulated backend delay,
- :class:`PrefetchPolicy` — how the prediction engine's list ``P`` is
  executed (budget, sync vs. background, worker pool, queue admission
  discipline, fair sharing),
- :class:`ServiceConfig` — the two above plus the latency model's
  transfer overhead.

All three are frozen dataclasses: validation happens once, at
construction, and a config can be shared between services, logged, or
serialized without defensive copying.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.manager import CacheManager
from repro.cache.tile_cache import TileCache
from repro.middleware.latency import HIT_SECONDS, LatencyModel
from repro.middleware.protocol import DEFAULT_MAX_FRAME_BYTES, PAYLOADS
from repro.middleware.push import PUSH_UTILITIES
from repro.middleware.scheduler import ADMISSION_MODES
from repro.tiles.pyramid import TilePyramid

#: Who executes the prefetch list: the request call itself ("sync", the
#: paper's virtual-time arithmetic) or a background worker pool
#: ("background", physical think-time overlap).
PREFETCH_MODES = ("sync", "background")

#: Cross-session popularity sharing:
#: - "off"      — no shared registry at all (the default; replays and
#:   figure numerics are bit-identical to the isolated-prediction
#:   behavior),
#: - "observe"  — every session's requests feed one
#:   :class:`~repro.core.popularity.SharedHotspotRegistry`, but nothing
#:   consults it yet (collect the signal, change no behavior — a canary
#:   step, and the warm-up source for later "boost" services),
#: - "boost"    — observe, plus the signal is *acted on*: live
#:   :class:`~repro.recommenders.hotspot.HotspotRecommender` instances
#:   re-read the registry's top-N on every prediction, and the
#:   background scheduler boosts the queue rank of globally hot tiles.
SHARED_HOTSPOT_MODES = ("off", "observe", "boost")

#: Continuous push prefetch (Khameleon-style):
#: - "off" — pull-only; the wire protocol, replies, and figure numerics
#:   are bit-identical to the pre-push serving stack,
#: - "on"  — the socket server streams top-ranked predicted tiles as
#:   unsolicited ``push_tile`` frames into each negotiated client's
#:   :class:`~repro.middleware.push.PushCache`, budgeted by
#:   ``push_budget_bytes`` / ``push_max_inflight``.  In-process front
#:   ends ignore the knob (push is a transport-layer behavior).
PUSH_MODES = ("off", "on")

#: Progressive multi-resolution fidelity + overload load shedding:
#: - "off"         — every response is the full-resolution tile and no
#:   prefetch work is ever shed; replies, wire bytes, and figure
#:   numerics are bit-identical to the pre-fidelity serving stack,
#: - "progressive" — under overload (deep prefetch queue / a streak of
#:   in-flight backend misses) the service answers from a cached
#:   ancestor at reduced fidelity instead of queueing behind the
#:   backend, the background scheduler sheds low-rank prefetch jobs,
#:   and the push scheduler streams a coarse frame first and spends
#:   leftover round budget on full-fidelity refinement frames.
FIDELITY_MODES = ("off", "progressive")


@dataclass(frozen=True)
class CacheConfig:
    """Shape of the middleware tile cache (Section 3)."""

    #: LRU slots for tiles the user actually requested.
    recent_capacity: int = 10
    #: Slots refilled from the prediction engine's list ``P``.
    prefetch_capacity: int = 9
    #: Real seconds each backend query sleeps (throughput benchmarks).
    backend_delay_seconds: float = 0.0
    #: Hash-striped lock segments for the prefetch region and the
    #: manager's in-flight coalescing table.  1 (the default) keeps the
    #: single-lock semantics the sync figure benchmarks replay; raise it
    #: so many concurrent sessions stop serializing on one mutex.
    shards: int = 1

    def __post_init__(self) -> None:
        if self.recent_capacity < 1:
            raise ValueError(
                f"recent_capacity must be >= 1, got {self.recent_capacity}"
            )
        if self.prefetch_capacity < 1:
            raise ValueError(
                f"prefetch_capacity must be >= 1, got {self.prefetch_capacity}"
            )
        if self.backend_delay_seconds < 0:
            raise ValueError(
                "backend_delay_seconds must be >= 0, got"
                f" {self.backend_delay_seconds}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")

    def build_cache_manager(self, pyramid: TilePyramid) -> CacheManager:
        """Materialize a cache manager of this shape over ``pyramid``."""
        return CacheManager(
            pyramid,
            TileCache(
                recent_capacity=self.recent_capacity,
                prefetch_capacity=self.prefetch_capacity,
                shards=self.shards,
            ),
            backend_delay_seconds=self.backend_delay_seconds,
            shards=self.shards,
        )


@dataclass(frozen=True)
class PrefetchPolicy:
    """How prefetching behaves for every session of a service."""

    #: Total prefetch budget ``k`` (tiles per prediction round).
    k: int = 5
    #: Master switch; a disabled policy observes but never predicts.
    enabled: bool = True
    #: "sync" or "background" (:data:`PREFETCH_MODES`).
    mode: str = "sync"
    #: Worker threads when ``mode == "background"``.
    workers: int = 2
    #: Queue discipline for the background scheduler: "priority" (rank-
    #: aware deficit-round-robin fair admission, the default) or "fifo"
    #: (plain arrival order, the pre-priority baseline).
    admission: str = "priority"
    #: Split ``k`` fairly across open sessions (the multi-user scheme of
    #: Section 6.2) instead of granting each session the full budget.
    share_budget: bool = False
    #: Cross-session popularity sharing: "off", "observe", or "boost"
    #: (:data:`SHARED_HOTSPOT_MODES`).
    shared_hotspots: str = "off"
    #: Per-tick decay factor of the shared registry's counts (1.0 keeps
    #: counts forever; lower values make hotspots track recent traffic).
    #: Ticks are virtual: set ``hotspot_tick_every`` (or call
    #: ``service.hotspot_registry.advance()`` yourself) or decay < 1
    #: never fires.
    hotspot_decay: float = 1.0
    #: How many globally hot tiles the scheduler's rank boost considers.
    hotspot_top_n: int = 8
    #: Queue-rank steps a globally hot tile jumps under "boost".
    hotspot_boost: int = 2
    #: Advance the registry's decay tick once every N served requests
    #: (0 = never; the owner drives the tick explicitly).  Request-count
    #: ticks keep replays deterministic where wall-clock ticks cannot.
    hotspot_tick_every: int = 0
    #: Registry counters whose decayed weight falls below this are
    #: dropped during lazy decay (0.0 = never prune, bit-identical
    #: legacy behavior).  Set together with ``hotspot_decay < 1`` so
    #: long adversarial workloads cannot grow the registry without
    #: bound.
    hotspot_prune_epsilon: float = 0.0
    #: Wall-clock decay ticking for the socket server's registry: the
    #: asyncio loop calls ``registry.advance()`` every this many real
    #: seconds, so long-idle deployments decay popularity without
    #: request traffic.  0 (default) = off; replays and tests stay on
    #: the deterministic virtual tick (``hotspot_tick_every``).
    hotspot_tick_seconds: float = 0.0
    #: Continuous push prefetch: "off" or "on" (:data:`PUSH_MODES`).
    #: Only the socket server acts on it — and only for clients that
    #: negotiated the ``push`` capability in their hello.
    push: str = "off"
    #: Shared downstream budget one push round may stream, split fairly
    #: across all live push sessions (bytes of encoded frames).
    push_budget_bytes: int = 256 * 1024
    #: Per-session cap on pushed-but-unacknowledged tiles in flight.
    push_max_inflight: int = 4
    #: Utility ordering for push jobs: "rank" or "density"
    #: (:data:`~repro.middleware.push.PUSH_UTILITIES`).
    push_utility: str = "rank"
    #: Progressive fidelity + load shedding: "off" or "progressive"
    #: (:data:`FIDELITY_MODES`).
    fidelity: str = "off"
    #: Linear downsampling factor of a coarse stand-in tile (per axis);
    #: must be a power of two >= 2 so a stand-in can be carved from the
    #: matching ancestor pyramid level.  4 = a 16x byte reduction.
    fidelity_reduction: int = 4
    #: Overload trips when the background prefetch queue depth plus the
    #: cache manager's in-flight backend loads reaches this many jobs.
    shed_queue_depth: int = 32
    #: Overload also trips after this many *consecutive* full-price
    #: backend misses on the request path (0 = disabled; the queue-depth
    #: signal alone decides).  Deterministic under ``settle`` replays,
    #: unlike physical queue occupancy.
    shed_miss_streak: int = 0
    #: Under shedding the scheduler keeps only prefetch jobs ranked
    #: better than this (rank 0 = the model's top prediction).
    shed_keep_k: int = 2

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"prefetch_k must be >= 1, got {self.k}")
        if self.mode not in PREFETCH_MODES:
            raise ValueError(
                f"prefetch_mode must be one of {PREFETCH_MODES}, got"
                f" {self.mode!r}"
            )
        if self.workers < 1:
            raise ValueError(
                f"prefetch_workers must be >= 1, got {self.workers}"
            )
        if self.admission not in ADMISSION_MODES:
            raise ValueError(
                f"prefetch_admission must be one of {ADMISSION_MODES}, got"
                f" {self.admission!r}"
            )
        if self.shared_hotspots not in SHARED_HOTSPOT_MODES:
            raise ValueError(
                f"shared_hotspots must be one of {SHARED_HOTSPOT_MODES}, "
                f"got {self.shared_hotspots!r}"
            )
        if not 0.0 < self.hotspot_decay <= 1.0:
            raise ValueError(
                f"hotspot_decay must be in (0, 1], got {self.hotspot_decay}"
            )
        if self.hotspot_top_n < 1:
            raise ValueError(
                f"hotspot_top_n must be >= 1, got {self.hotspot_top_n}"
            )
        if self.hotspot_boost < 0:
            raise ValueError(
                f"hotspot_boost must be >= 0, got {self.hotspot_boost}"
            )
        if self.hotspot_tick_every < 0:
            raise ValueError(
                f"hotspot_tick_every must be >= 0, got"
                f" {self.hotspot_tick_every}"
            )
        if self.hotspot_prune_epsilon < 0:
            raise ValueError(
                f"hotspot_prune_epsilon must be >= 0, got"
                f" {self.hotspot_prune_epsilon}"
            )
        if self.hotspot_tick_seconds < 0:
            raise ValueError(
                f"hotspot_tick_seconds must be >= 0, got"
                f" {self.hotspot_tick_seconds}"
            )
        if self.push not in PUSH_MODES:
            raise ValueError(
                f"push must be one of {PUSH_MODES}, got {self.push!r}"
            )
        if self.push_budget_bytes < 1024:
            # Below one small frame the budget can never stream anything.
            raise ValueError(
                f"push_budget_bytes must be >= 1024, got"
                f" {self.push_budget_bytes}"
            )
        if self.push_max_inflight < 1:
            raise ValueError(
                f"push_max_inflight must be >= 1, got"
                f" {self.push_max_inflight}"
            )
        if self.push_utility not in PUSH_UTILITIES:
            raise ValueError(
                f"push_utility must be one of {PUSH_UTILITIES}, got"
                f" {self.push_utility!r}"
            )
        if self.fidelity not in FIDELITY_MODES:
            raise ValueError(
                f"fidelity must be one of {FIDELITY_MODES}, got"
                f" {self.fidelity!r}"
            )
        reduction = self.fidelity_reduction
        if (
            not isinstance(reduction, int)
            or reduction < 2
            or reduction & (reduction - 1)
        ):
            raise ValueError(
                "fidelity_reduction must be a power of two >= 2, got"
                f" {self.fidelity_reduction!r}"
            )
        if self.shed_queue_depth < 1:
            raise ValueError(
                f"shed_queue_depth must be >= 1, got {self.shed_queue_depth}"
            )
        if self.shed_miss_streak < 0:
            raise ValueError(
                f"shed_miss_streak must be >= 0, got {self.shed_miss_streak}"
            )
        if self.shed_keep_k < 1:
            raise ValueError(
                f"shed_keep_k must be >= 1, got {self.shed_keep_k}"
            )

    @property
    def background(self) -> bool:
        return self.mode == "background"

    @property
    def push_enabled(self) -> bool:
        """True when the socket server should offer the push capability."""
        return self.push == "on"

    @property
    def fidelity_enabled(self) -> bool:
        """True when degraded serving / load shedding may kick in."""
        return self.fidelity == "progressive"

    @property
    def shares_hotspots(self) -> bool:
        """True when sessions feed the shared popularity registry."""
        return self.shared_hotspots != "off"

    @property
    def hotspots_live(self) -> bool:
        """True when the shared popularity signal steers behavior."""
        return self.shared_hotspots == "boost"


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`ForeCacheService` needs beyond the pyramid."""

    prefetch: PrefetchPolicy = field(default_factory=PrefetchPolicy)
    cache: CacheConfig = field(default_factory=CacheConfig)
    #: Fixed middleware/transfer overhead every response pays.
    transfer_seconds: float = HIT_SECONDS
    #: Socket transport: interface the socket server binds.
    bind_host: str = "127.0.0.1"
    #: Socket transport: port to bind (0 = ephemeral, OS-assigned).
    bind_port: int = 0
    #: Socket transport: per-frame size ceiling — bounds what one peer
    #: can make the server buffer before the frame is rejected.
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    #: Socket transport: payload encodings this server will grant in
    #: the hello/welcome handshake (:data:`~repro.middleware.protocol.
    #: PAYLOADS`).  The default offers both; drop "binary" to force
    #: every connection onto the JSON-compatible wire.  "json" is
    #: mandatory — it is the fallback every client can speak.
    payloads: tuple[str, ...] = ("json", "binary")
    #: Cluster mode: virtual ring points per worker on the consistent-
    #: hash ring.  More replicas smooth the partition (each worker owns
    #: many small arcs instead of one big one) at the cost of a larger
    #: sorted ring; 64 keeps the per-worker share within a few percent
    #: of 1/N.
    ring_replicas: int = 64
    #: Cluster mode: seed mixed into every ring hash.  The ring is a
    #: pure function of (seed, worker ids, replicas), so routers sharing
    #: a seed agree on tile ownership across processes and restarts.
    ring_seed: int = 0
    #: Cluster mode: real seconds between hotspot gossip rounds (router
    #: polls every worker's registry snapshot and rebroadcasts the
    #: merged view).  0 (default) = no timer; tests and replays drive
    #: rounds explicitly via ``TileServiceRouter.gossip_once()``.
    gossip_interval: float = 0.0

    def __post_init__(self) -> None:
        # Capacity-vs-budget fit is NOT checked here: the serving cache
        # may be an injected manager rather than one built from
        # ``cache``, so the service validates the cache actually in use.
        if self.transfer_seconds < 0:
            raise ValueError(
                f"transfer_seconds must be >= 0, got {self.transfer_seconds}"
            )
        if not 0 <= self.bind_port <= 65535:
            raise ValueError(
                f"bind_port must be in [0, 65535], got {self.bind_port}"
            )
        if self.max_frame_bytes < 4096:
            # Below this even a payload-less response cannot fit.
            raise ValueError(
                f"max_frame_bytes must be >= 4096, got {self.max_frame_bytes}"
            )
        payloads = tuple(self.payloads)
        if not payloads or any(p not in PAYLOADS for p in payloads):
            raise ValueError(
                f"payloads must be a non-empty subset of {PAYLOADS}, "
                f"got {self.payloads!r}"
            )
        if "json" not in payloads:
            raise ValueError(
                'payloads must include "json" (the mandatory fallback), '
                f"got {self.payloads!r}"
            )
        if self.ring_replicas < 1:
            raise ValueError(
                f"ring_replicas must be >= 1, got {self.ring_replicas}"
            )
        if self.gossip_interval < 0:
            raise ValueError(
                f"gossip_interval must be >= 0, got {self.gossip_interval}"
            )

    def build_latency_model(self) -> LatencyModel:
        return LatencyModel(transfer_seconds=self.transfer_seconds)
