"""Multi-process tile service: consistent-hash router over socket workers.

Topology
--------

::

                          +----------------------+
        clients  ----->   |   TileServiceRouter  |   (wire protocol,
       (unchanged         |  - hello/welcome     |    unchanged)
        protocol)         |  - consistent ring   |
                          |  - gossip merge      |
                          +----+----------+-----+
                               |          |
                     backend   |          |   backend
                     links     v          v   links
                     +------------+  +------------+
                     | worker 0   |  | worker 1   |  ... worker N-1
                     | ForeCache  |  | ForeCache  |
                     | SocketSrv  |  | SocketSrv  |
                     +------------+  +------------+

Each worker is today's :class:`~repro.middleware.net.ForeCacheSocketServer`
— full service stack, own cache, own hotspot registry — serving a
partition of the tile-key space.  The router is a thin asyncio front
end speaking the *existing* wire protocol to clients:

* ``hello``/``welcome`` terminate at the router.  The granted
  capability set is the **intersection** of what the client asked for
  and what every live worker granted on that client's backend links
  (push requires all workers push-capable; binary payloads require all
  workers to speak binary).
* Each ``tile_request`` maps to its owner worker through a seeded,
  deterministic :class:`ConsistentHashRing` over :class:`TileKey` —
  the same key always lands on the same worker, across runs and across
  processes, because the ring hashes with :func:`hashlib.blake2b`
  (no ``PYTHONHASHSEED`` dependence).
* ``push_tile`` frames stream back through the same backend link that
  served the request and are forwarded to the owning client verbatim;
  ``push_ack`` travels the reverse route by session ownership.
* A dead worker surfaces as a typed ``worker_unavailable`` error and
  is removed from the ring; a retry of the same key lands on a
  surviving worker (sessions open on every worker, so the survivor
  already has the session — no re-open round trip).

Backend links are **per client connection**: a client that negotiated
push gets push-capable links, a pull-only client gets pull-only links.
This keeps worker-side behaviour bit-identical to a direct connection
(a worker never runs push rounds — which populate its cache — for a
session whose real client did not ask for push).

Cross-node popularity travels as ``hotspot_gossip`` frames: each
worker snapshots its :class:`~repro.core.popularity.SharedHotspotRegistry`,
the router merges the snapshots tick-aligned with
:meth:`~repro.core.popularity.SharedHotspotRegistry.merge_max` and
rebroadcasts the merged view, so every worker converges on the
cluster-wide hot set within two gossip rounds.  ``merge_max`` is
idempotent and commutative, so rebroadcast loops cannot inflate
weights the way an additive merge would.

Run a local cluster from the command line::

    python -m repro.middleware.cluster --workers 4 --start-port 9500

which boots N spawn-context worker processes plus the router, replays
a deterministic trace through it, and prints a summary.
"""

from __future__ import annotations

import argparse
import asyncio
import bisect
import contextlib
import hashlib
import multiprocessing
import threading
import time
from collections import deque
from dataclasses import dataclass, replace

from repro.core.popularity import SharedHotspotRegistry
from repro.middleware.config import ServiceConfig
from repro.middleware.net import ForeCacheSocketServer, ThreadedSocketServer
from repro.middleware.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    CloseSession,
    DuplicateSessionError,
    ErrorInfo,
    FrameDecoder,
    Hello,
    HotspotGossip,
    InvalidRequestError,
    OpenSession,
    ProtocolError,
    PushAck,
    PushTile,
    SessionInfo,
    SessionNotFoundError,
    TileRequest,
    Welcome,
    WorkerUnavailableError,
    decode_wire,
    encode_wire,
    negotiate_payload,
    negotiate_version,
)
from repro.tiles.key import TileKey
from repro.tiles.moves import Move
from repro.tiles.pyramid import TilePyramid

_READ_CHUNK = 65536


# ----------------------------------------------------------------------
# consistent-hash ring
# ----------------------------------------------------------------------
def _hash64(data: str) -> int:
    """Seed-stable 64-bit hash (blake2b, not ``hash()``).

    Python's builtin ``hash`` is randomised per process by
    ``PYTHONHASHSEED``; the ring must place the same key on the same
    worker across independent processes, so it hashes through a real
    digest instead.
    """
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
    )


class ConsistentHashRing:
    """Deterministic consistent-hash ring over :class:`TileKey`.

    Each node contributes ``replicas`` points on the ring (more points
    smooth the partition toward 1/N per node); a key is owned by the
    first node point at or clockwise of the key's own point.  The ring
    is a pure function of ``(seed, node ids, replicas)`` — no process
    state leaks in — so every router instance, in any process, maps a
    given key to the same worker.

    Removing a node moves only the keys that node owned (~1/N of the
    space) to their next-clockwise survivors; everything else stays
    put.  That containment is what makes worker failover cheap.
    """

    def __init__(
        self,
        nodes: tuple[str, ...] | list[str] = (),
        *,
        replicas: int = 64,
        seed: int = 0,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self.seed = int(seed)
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    def _node_points(self, node: str) -> list[tuple[int, str]]:
        return [
            (_hash64(f"{self.seed}:{node}:{replica}"), node)
            for replica in range(self.replicas)
        ]

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for point in self._node_points(node):
            bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(node)
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]

    def owner(self, key: TileKey) -> str:
        """The node owning ``key`` — same answer in every process."""
        if not self._points:
            raise WorkerUnavailableError("no live workers on the ring")
        point = _hash64(f"{self.seed}:{key.level}/{key.x}/{key.y}")
        index = bisect.bisect_left(self._points, (point, ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)


# ----------------------------------------------------------------------
# backend links
# ----------------------------------------------------------------------
class _BackendLink:
    """One router→worker connection speaking the wire protocol.

    The router is a *client* of each worker.  A link dies the moment a
    stream operation fails; death is sticky and converts to the typed
    ``worker_unavailable`` error so the real client can retry (the ring
    will have re-mapped the key by then).
    """

    def __init__(
        self,
        node: str,
        host: str,
        port: int,
        *,
        framing: str = "lines",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.node = node
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self.dead = False
        self.push = False
        self.payload = "json"
        self.server_max_frame_bytes = 0
        self._wire = framing
        self._decoder = FrameDecoder(framing, max_frame_bytes)
        self._pending: deque = deque()
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    async def connect(
        self,
        *,
        push: bool = False,
        binary: bool = False,
        client_name: str = "forecache-router",
    ) -> Welcome:
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        except OSError as exc:
            self.dead = True
            raise WorkerUnavailableError(
                f"worker {self.node} is unreachable: {exc}"
            ) from exc
        hello = Hello(
            client=client_name,
            push=push,
            payloads=("json", "binary") if binary else ("json",),
        )
        welcome, pushes = await self.roundtrip(hello)
        if pushes or not isinstance(welcome, Welcome):
            self._die()
            raise WorkerUnavailableError(
                f"worker {self.node} sent a malformed handshake reply"
            )
        self.push = welcome.push
        self.payload = welcome.payload
        self.server_max_frame_bytes = welcome.max_frame_bytes
        if welcome.payload == "binary":
            # The worker switches to binary frames right after its
            # welcome; follow suit on our side of the link.
            self._wire = "binary"
            self._decoder.switch_to_binary()
        if welcome.max_frame_bytes > 0:
            # Never let a legitimate large worker reply trip our decoder.
            self._decoder.max_frame_bytes = max(
                self._decoder.max_frame_bytes, welcome.max_frame_bytes
            )
        return welcome

    async def roundtrip(self, message):
        """Send one message, return ``(reply, pushes)``.

        Push frames streamed ahead of the reply are collected and
        returned for forwarding.  Any stream failure marks the link
        dead and raises the typed worker-down error.  Encoding happens
        *before* the failure guard: an oversized outgoing frame is a
        local, recoverable error — not worker death.
        """
        if self.dead or self._writer is None:
            raise WorkerUnavailableError(f"worker {self.node} is down")
        data = encode_wire(message, self._wire, self.max_frame_bytes)
        pushes: list[PushTile] = []
        try:
            async with self._lock:
                self._writer.write(data)
                await self._writer.drain()
                while True:
                    reply = await self._recv_message()
                    if isinstance(reply, PushTile):
                        pushes.append(reply)
                        continue
                    return reply, pushes
        except (ConnectionError, OSError, ProtocolError) as exc:
            self._die()
            raise WorkerUnavailableError(
                f"worker {self.node} died mid-request: {exc}"
            ) from exc

    async def _recv_message(self):
        assert self._reader is not None
        while not self._pending:
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                raise ConnectionResetError("worker closed the connection")
            self._pending.extend(self._decoder.feed(chunk))
        return decode_wire(self._pending.popleft())

    def _die(self) -> None:
        self.dead = True
        if self._writer is not None:
            with contextlib.suppress(Exception):
                self._writer.close()
            self._writer = None

    async def aclose(self) -> None:
        if self._writer is not None:
            writer = self._writer
            self._writer = None
            was_dead = self.dead
            self.dead = True
            with contextlib.suppress(Exception):
                writer.close()
                if not was_dead:
                    # A dead peer (SIGKILLed worker) may never complete
                    # the close handshake; don't hang shutdown on it.
                    with contextlib.suppress(asyncio.CancelledError):
                        await asyncio.wait_for(writer.wait_closed(), 5)
        self.dead = True


class _RouterClientState:
    """Per-client-connection bookkeeping inside the router."""

    __slots__ = (
        "sessions",
        "negotiated",
        "push",
        "payload",
        "payload_pending",
        "links",
        "session_worker",
    )

    def __init__(self) -> None:
        self.sessions: set[str] = set()
        self.negotiated = False
        self.push = False
        self.payload = "json"
        self.payload_pending = False
        self.links: dict[str, _BackendLink] = {}
        self.session_worker: dict[str, str] = {}


# ----------------------------------------------------------------------
# the router
# ----------------------------------------------------------------------
class TileServiceRouter:
    """Thin asyncio router fronting N socket workers.

    Speaks the unchanged wire protocol to clients; owns no tile state
    of its own.  See the module docstring for the full contract.
    """

    def __init__(
        self,
        workers: dict[str, tuple[str, int]] | list[tuple[str, int]],
        config: ServiceConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        framing: str = "lines",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        payloads: tuple[str, ...] = ("json", "binary"),
        server_name: str = "forecache-router",
    ) -> None:
        if isinstance(workers, dict):
            self.worker_addrs = dict(workers)
        else:
            self.worker_addrs = {
                f"{whost}:{wport}": (whost, wport)
                for whost, wport in workers
            }
        if not self.worker_addrs:
            raise ValueError("a cluster needs at least one worker")
        self.config = config or ServiceConfig()
        self.host = host
        self.port = port
        self.framing = framing
        self.max_frame_bytes = max_frame_bytes
        self.payloads = tuple(payloads)
        self.server_name = server_name
        self.ring = ConsistentHashRing(
            replicas=self.config.ring_replicas, seed=self.config.ring_seed
        )
        #: Router-side merged view of the cluster's hot set.
        self.cluster_view = SharedHotspotRegistry(
            shards=1, decay=self.config.prefetch.hotspot_decay
        )
        self.gossip_rounds = 0
        self._alive: set[str] = set()
        self._control: dict[str, _BackendLink] = {}
        self._push_capable = False
        self._backend_binary = False
        self._server: asyncio.AbstractServer | None = None
        self._closing: asyncio.Event | None = None
        self._session_counter = 0
        self._gossiper: HotspotGossiper | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> tuple[str, int]:
        # One control link per worker: capability discovery (the worker
        # grants push/binary iff its policy allows) plus the gossip
        # channel.  No sessions ever open on a control link, so no push
        # frames flow on it even though push is offered.
        self._closing = asyncio.Event()
        for node, (host, port) in sorted(self.worker_addrs.items()):
            link = _BackendLink(
                node,
                host,
                port,
                framing=self.framing,
                max_frame_bytes=self.max_frame_bytes,
            )
            await link.connect(push=True, binary="binary" in self.payloads)
            self._control[node] = link
            self._alive.add(node)
            self.ring.add(node)
        self._push_capable = all(
            link.push for link in self._control.values()
        )
        self._backend_binary = all(
            link.payload == "binary" for link in self._control.values()
        )
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        if self.config.gossip_interval > 0:
            self._gossiper = HotspotGossiper(
                self, self.config.gossip_interval
            )
            self._gossiper.start()
        return (self.host, self.port)

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def alive_workers(self) -> tuple[str, ...]:
        return tuple(sorted(self._alive))

    async def aclose(self) -> None:
        if self._closing is not None:
            self._closing.set()
        if self._gossiper is not None:
            await self._gossiper.stop()
            self._gossiper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for link in list(self._control.values()):
            await link.aclose()
        self._control.clear()

    def _mark_worker_dead(self, node: str) -> None:
        """Idempotent: drop a worker from routing and the ring."""
        if node not in self._alive:
            return
        self._alive.discard(node)
        if node in self.ring:
            self.ring.remove(node)
        link = self._control.pop(node, None)
        if link is not None:
            link._die()

    # -- client serve loop (mirrors ForeCacheSocketServer) -------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        assert self._closing is not None
        state = _RouterClientState()
        decoder = FrameDecoder(self.framing, self.max_frame_bytes)
        closing_wait = asyncio.ensure_future(self._closing.wait())
        try:
            while not self._closing.is_set():
                read_task = asyncio.ensure_future(reader.read(_READ_CHUNK))
                await asyncio.wait(
                    {read_task, closing_wait},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not read_task.done():
                    read_task.cancel()
                    with contextlib.suppress(
                        asyncio.CancelledError, ConnectionError, OSError
                    ):
                        await read_task
                    break
                try:
                    data = read_task.result()
                except (ConnectionError, OSError):
                    break
                if not data:
                    break
                try:
                    frames = decoder.feed(data)
                except ProtocolError as exc:
                    with contextlib.suppress(ConnectionError, OSError):
                        writer.write(
                            self._encode_out(
                                ErrorInfo.from_exception(exc), state
                            )
                        )
                        await writer.drain()
                    break
                out = bytearray()
                fatal = False
                for frame in frames:
                    messages, fatal = await self._dispatch(frame, state)
                    for message in messages:
                        out += self._encode_out(message, state)
                    if state.payload_pending:
                        # The welcome granting "binary" went out in the
                        # pre-handshake framing; every frame after it —
                        # both directions — speaks binary.
                        state.payload_pending = False
                        state.payload = "binary"
                        decoder.switch_to_binary()
                    if fatal:
                        break
                if out:
                    try:
                        writer.write(bytes(out))
                        await writer.drain()
                    except (ConnectionError, OSError):
                        break
                if fatal:
                    break
        finally:
            closing_wait.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await closing_wait
            for link in state.links.values():
                await link.aclose()
            state.links.clear()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _wire_framing(self, state: _RouterClientState) -> str:
        return "binary" if state.payload == "binary" else self.framing

    def _encode_out(self, message, state: _RouterClientState) -> bytes:
        framing = self._wire_framing(state)
        try:
            return encode_wire(message, framing, self.max_frame_bytes)
        except ProtocolError as exc:
            # The response outgrew the frame budget — report that
            # instead of silently dropping it (mirrors the worker).
            return encode_wire(ErrorInfo.from_exception(exc), framing)

    async def _dispatch(self, frame, state: _RouterClientState):
        """Serve one client frame; returns ``(messages, fatal)``."""
        try:
            message = decode_wire(frame)
        except ProtocolError as exc:
            return [ErrorInfo.from_exception(exc)], False
        if not state.negotiated and not isinstance(message, Hello):
            error = InvalidRequestError(
                "connection must open with a hello frame, got "
                f"{type(message).__name__}"
            )
            return [ErrorInfo.from_exception(error)], True
        try:
            if isinstance(message, Hello):
                return await self._serve_hello(message, state)
            if isinstance(message, OpenSession):
                return await self._serve_open(message, state)
            if isinstance(message, CloseSession):
                return await self._serve_close(message, state)
            if isinstance(message, TileRequest):
                return await self._serve_request(message, state)
            if isinstance(message, PushAck):
                return await self._serve_ack(message, state)
            if isinstance(message, HotspotGossip):
                return self._serve_gossip(message)
            raise InvalidRequestError(
                f"unexpected message type "
                f"{type(message).__name__!r} from client"
            )
        except ProtocolError as exc:
            return [ErrorInfo.from_exception(exc)], isinstance(
                message, Hello
            )

    # -- handshake -----------------------------------------------------
    async def _serve_hello(self, message: Hello, state: _RouterClientState):
        if state.negotiated:
            raise InvalidRequestError("handshake already completed")
        version = negotiate_version(message.versions)
        push_wanted = bool(message.push) and self._push_capable
        offer_binary = "binary" in self.payloads and self._backend_binary
        # Per-client backend links: push is offered to the workers iff
        # this client asked for it, so workers never run push rounds
        # (which populate their caches) for pull-only clients.
        for node in sorted(self._alive):
            host, port = self.worker_addrs[node]
            link = _BackendLink(
                node,
                host,
                port,
                framing=self.framing,
                max_frame_bytes=self.max_frame_bytes,
            )
            try:
                await link.connect(push=push_wanted, binary=offer_binary)
            except WorkerUnavailableError:
                self._mark_worker_dead(node)
                continue
            state.links[node] = link
        if not state.links:
            return [
                ErrorInfo.from_exception(
                    WorkerUnavailableError("no live workers on the ring")
                )
            ], True
        push_granted = push_wanted and all(
            link.push for link in state.links.values()
        )
        payload = negotiate_payload(message.payloads, self.payloads)
        if payload == "binary" and not all(
            link.payload == "binary" for link in state.links.values()
        ):
            payload = "json"
        limits = [
            link.server_max_frame_bytes
            for link in state.links.values()
            if link.server_max_frame_bytes > 0
        ]
        max_frame = min([self.max_frame_bytes, *limits])
        state.negotiated = True
        state.push = push_granted
        state.payload = "json"
        state.payload_pending = payload == "binary"
        welcome = Welcome(
            version=version,
            server=self.server_name,
            max_frame_bytes=max_frame,
            push=push_granted,
            payload=payload,
        )
        return [welcome], False

    # -- session lifecycle ---------------------------------------------
    def _next_session_id(self) -> str:
        self._session_counter += 1
        return f"session-{self._session_counter}"

    async def _serve_open(
        self, message: OpenSession, state: _RouterClientState
    ):
        session_id = (
            str(message.session_id)
            if message.session_id is not None
            else self._next_session_id()
        )
        auto = message.session_id is None
        reply: SessionInfo | ErrorInfo | None = None
        opened: list[str] = []
        for _ in range(64):
            reply, opened = await self._broadcast_open(
                OpenSession(session_id=session_id), state
            )
            if (
                auto
                and isinstance(reply, ErrorInfo)
                and reply.code == DuplicateSessionError.code
            ):
                # Another client claimed the auto id first (each worker
                # numbers its own sessions); roll back and renumber.
                await self._rollback_open(session_id, opened, state)
                session_id = self._next_session_id()
                continue
            break
        if isinstance(reply, ErrorInfo):
            await self._rollback_open(session_id, opened, state)
            return [reply], False
        state.sessions.add(session_id)
        return [reply], False

    async def _broadcast_open(
        self, message: OpenSession, state: _RouterClientState
    ):
        """Open the session on every live worker; first success wins
        the reply.  Returns ``(reply, opened_nodes)``."""
        reply: SessionInfo | None = None
        opened: list[str] = []
        error: ErrorInfo | None = None
        for node in sorted(state.links):
            link = state.links[node]
            if link.dead:
                continue
            try:
                result, _ = await link.roundtrip(message)
            except WorkerUnavailableError:
                self._mark_worker_dead(node)
                continue
            if isinstance(result, ErrorInfo):
                error = error or result
                continue
            if isinstance(result, SessionInfo):
                opened.append(node)
                if reply is None:
                    reply = result
        if reply is not None:
            return reply, opened
        if error is not None:
            return error, opened
        return (
            ErrorInfo.from_exception(
                WorkerUnavailableError(
                    "no live workers on the ring",
                    session_id=message.session_id,
                )
            ),
            opened,
        )

    async def _rollback_open(
        self, session_id: str, opened: list[str], state: _RouterClientState
    ) -> None:
        close = CloseSession(session_id=session_id)
        for node in opened:
            link = state.links.get(node)
            if link is None or link.dead:
                continue
            with contextlib.suppress(WorkerUnavailableError):
                await link.roundtrip(close)

    async def _serve_close(
        self, message: CloseSession, state: _RouterClientState
    ):
        self._require_session(message.session_id, state)
        infos: list[SessionInfo] = []
        error: ErrorInfo | None = None
        for node in sorted(state.links):
            link = state.links[node]
            if link.dead:
                continue
            try:
                result, _ = await link.roundtrip(message)
            except WorkerUnavailableError:
                self._mark_worker_dead(node)
                continue
            if isinstance(result, ErrorInfo):
                error = error or result
                continue
            if isinstance(result, SessionInfo):
                infos.append(result)
        state.sessions.discard(message.session_id)
        state.session_worker.pop(message.session_id, None)
        if not infos:
            if error is not None:
                return [error], False
            return [
                ErrorInfo.from_exception(
                    WorkerUnavailableError(
                        "no live workers on the ring",
                        session_id=message.session_id,
                    )
                )
            ], False
        if len(infos) == 1:
            return [replace(infos[0], open=False)], False
        # Aggregate across partitions: requests/hits sum, latency is
        # the request-weighted mean.
        requests = sum(info.requests for info in infos)
        hits = sum(info.hits for info in infos)
        weighted = sum(
            info.average_latency_seconds * info.requests for info in infos
        )
        merged = replace(
            infos[0],
            requests=requests,
            hits=hits,
            hit_rate=(hits / requests) if requests else 0.0,
            average_latency_seconds=(
                (weighted / requests) if requests else 0.0
            ),
            open=False,
        )
        return [merged], False

    def _require_session(
        self, session_id: str | None, state: _RouterClientState
    ) -> str:
        if not session_id or session_id not in state.sessions:
            raise SessionNotFoundError(
                f"session {session_id!r} is not open on this connection",
                session_id=str(session_id) if session_id else None,
            )
        return session_id

    # -- the request path ----------------------------------------------
    async def _serve_request(
        self, message: TileRequest, state: _RouterClientState
    ):
        session_id = self._require_session(message.session_id, state)
        key = TileKey(message.tile.level, message.tile.x, message.tile.y)
        node = self.ring.owner(key)
        link = state.links.get(node)
        if link is None or link.dead:
            # The ring can briefly lag a death detected on another
            # connection; surface the same typed failure.
            self._mark_worker_dead(node)
            raise WorkerUnavailableError(
                f"worker {node} owning tile {key} is down "
                "(safe to retry: the ring has re-mapped the key)",
                session_id=session_id,
            )
        try:
            reply, pushes = await link.roundtrip(message)
        except WorkerUnavailableError as exc:
            self._mark_worker_dead(node)
            raise WorkerUnavailableError(
                str(exc), session_id=session_id
            ) from exc
        state.session_worker[session_id] = node
        messages: list = []
        if state.push:
            messages.extend(pushes)
        messages.append(reply)
        return messages, False

    async def _serve_ack(self, message: PushAck, state: _RouterClientState):
        session_id = self._require_session(message.session_id, state)
        if not state.push:
            raise InvalidRequestError(
                "push_ack without negotiated push support"
            )
        node = state.session_worker.get(session_id)
        if node is None and message.tile is not None:
            key = TileKey(
                message.tile.level, message.tile.x, message.tile.y
            )
            node = self.ring.owner(key)
        if node is None:
            live = sorted(
                n for n, link in state.links.items() if not link.dead
            )
            if not live:
                raise WorkerUnavailableError(
                    "no live workers on the ring", session_id=session_id
                )
            node = live[0]
        link = state.links.get(node)
        if link is None or link.dead:
            raise WorkerUnavailableError(
                f"worker {node} is down", session_id=session_id
            )
        try:
            reply, pushes = await link.roundtrip(message)
        except WorkerUnavailableError as exc:
            self._mark_worker_dead(node)
            raise WorkerUnavailableError(
                str(exc), session_id=session_id
            ) from exc
        messages: list = list(pushes)
        messages.append(reply)
        return messages, False

    def _serve_gossip(self, message: HotspotGossip):
        """Client-facing gossip: read-only view of the merged hot set."""
        tick, entries = self.cluster_view.gossip_snapshot()
        return [
            HotspotGossip(
                entries=tuple(
                    (key.level, key.x, key.y, weight)
                    for key, weight in entries
                ),
                tick=tick,
            )
        ], False

    # -- gossip --------------------------------------------------------
    async def gossip_once(self) -> SharedHotspotRegistry:
        """One gossip round: collect every worker's snapshot, merge
        tick-aligned, rebroadcast the merged view.

        Round 1 collects all local hot sets into the router's merged
        view; round 2's rebroadcast cross-pollinates that view back to
        every worker — disjoint hot sets converge within two rounds.
        ``merge_max`` keeps repeated rounds stable (idempotent).
        """
        tick, entries = self.cluster_view.gossip_snapshot()
        outbound = HotspotGossip(
            entries=tuple(
                (key.level, key.x, key.y, weight)
                for key, weight in entries
            ),
            tick=tick,
        )
        fresh = SharedHotspotRegistry(
            shards=1, decay=self.config.prefetch.hotspot_decay
        )
        for node in sorted(self._control):
            link = self._control[node]
            try:
                reply, _ = await link.roundtrip(outbound)
            except WorkerUnavailableError:
                self._mark_worker_dead(node)
                continue
            if isinstance(reply, HotspotGossip) and reply.entries:
                fresh.merge_max(
                    SharedHotspotRegistry.from_snapshot(
                        (
                            (TileKey(level, x, y), weight)
                            for level, x, y, weight in reply.entries
                        ),
                        tick=reply.tick,
                        decay=fresh.decay,
                    )
                )
            # An ErrorInfo reply (worker shares no registry) is skipped
            # silently: gossip degrades gracefully on mixed clusters.
        self.cluster_view = fresh
        self.gossip_rounds += 1
        return fresh


class HotspotGossiper:
    """Periodic driver for :meth:`TileServiceRouter.gossip_once`.

    Same shape as :class:`~repro.middleware.net.HotspotDecayTicker`:
    injectable sleep for tests, ``start``/``stop``; failures of a
    single round are suppressed (a dead worker already got marked).
    """

    def __init__(
        self,
        router: TileServiceRouter,
        interval_seconds: float,
        *,
        sleep=None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.router = router
        self.interval_seconds = interval_seconds
        self.rounds = 0
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._task: asyncio.Task | None = None

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    def start(self) -> None:
        if self.running:
            raise RuntimeError("gossiper already running")
        self._task = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        if self._task is None:
            return
        self._task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._task
        self._task = None

    async def _run(self) -> None:
        while True:
            await self._sleep(self.interval_seconds)
            with contextlib.suppress(Exception):
                await self.router.gossip_once()
                self.rounds += 1


# ----------------------------------------------------------------------
# threaded in-process harnesses (tests / sweep)
# ----------------------------------------------------------------------
class ThreadedRouter:
    """Run a :class:`TileServiceRouter` on a background thread.

    Mirrors :class:`~repro.middleware.net.ThreadedSocketServer`: sync
    callers get a live ``(host, port)`` after :meth:`start` and a
    blocking :meth:`stop`.
    """

    def __init__(
        self,
        workers: dict[str, tuple[str, int]] | list[tuple[str, int]],
        config: ServiceConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        framing: str = "lines",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        payloads: tuple[str, ...] = ("json", "binary"),
    ) -> None:
        self._workers = workers
        self._config = config
        self._host = host
        self._port = port
        self._framing = framing
        self._max_frame_bytes = max_frame_bytes
        self._payloads = payloads
        self.router: TileServiceRouter | None = None
        self.address: tuple[str, int] | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        if self._thread is not None:
            raise RuntimeError("threaded router already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="forecache-router",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._error is not None:
            error = self._error
            self._thread.join(timeout=5)
            self._thread = None
            raise error
        if self.address is None:
            raise RuntimeError("router thread failed to start")
        return self.address

    async def _main(self) -> None:
        router = TileServiceRouter(
            self._workers,
            self._config,
            host=self._host,
            port=self._port,
            framing=self._framing,
            max_frame_bytes=self._max_frame_bytes,
            payloads=self._payloads,
        )
        try:
            await router.start()
        except BaseException as exc:
            with contextlib.suppress(BaseException):
                await router.aclose()
            self._error = exc
            self._ready.set()
            return
        self.router = router
        self.address = router.address
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._ready.set()
        await self._stop_event.wait()
        await router.aclose()

    def gossip_once(self) -> SharedHotspotRegistry:
        """Drive one gossip round from sync code (tests, sweeps)."""
        assert self.router is not None and self._loop is not None
        future = asyncio.run_coroutine_threadsafe(
            self.router.gossip_once(), self._loop
        )
        return future.result(timeout=30)

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            stop_event = self._stop_event

            def _signal() -> None:
                stop_event.set()

            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(_signal)
        self._thread.join(timeout=30)
        self._thread = None

    def __enter__(self) -> "ThreadedRouter":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ThreadedClusterServer:
    """N in-process threaded workers plus a threaded router.

    The all-threads harness for tests and the parameter sweep: every
    worker is a :class:`~repro.middleware.net.ThreadedSocketServer`
    over a *shared* pyramid (shared backend, independent caches), and
    the router fronts them all.  ``workers[i].server.service.service``
    reaches worker *i*'s sync facade for draining.
    """

    def __init__(
        self,
        pyramid: TilePyramid,
        config: ServiceConfig | None = None,
        *,
        workers: int = 2,
        engine_factory=None,
        framing: str = "lines",
        include_payload: bool = True,
        max_workers: int = 4,
        payloads: tuple[str, ...] | None = None,
        host: str = "127.0.0.1",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.config = config or ServiceConfig()
        self.workers: list[ThreadedSocketServer] = [
            ThreadedSocketServer(
                pyramid,
                self.config,
                engine_factory=engine_factory,
                framing=framing,
                include_payload=include_payload,
                max_workers=max_workers,
                payloads=payloads,
                host=host,
            )
            for _ in range(workers)
        ]
        self._host = host
        self._framing = framing
        self._payloads = (
            payloads if payloads is not None else self.config.payloads
        )
        self.router: ThreadedRouter | None = None

    @property
    def address(self) -> tuple[str, int]:
        assert self.router is not None and self.router.address is not None
        return self.router.address

    def start(self) -> "ThreadedClusterServer":
        try:
            for worker in self.workers:
                worker.start()
            # Stable logical node names (not host:port): the ring hashes
            # the node id, and ephemeral ports would re-partition the key
            # space on every boot.
            self.router = ThreadedRouter(
                {
                    f"worker-{index}": worker.address
                    for index, worker in enumerate(self.workers)
                },
                self.config,
                host=self._host,
                framing=self._framing,
                payloads=self._payloads,
            )
            self.router.start()
        except BaseException:
            self.stop()
            raise
        return self

    def stop_worker(self, index: int) -> None:
        """Gracefully stop one worker — the router sees EOF on its
        links and converts subsequent requests for that partition into
        typed ``worker_unavailable`` errors."""
        self.workers[index].stop()

    def gossip_once(self) -> SharedHotspotRegistry:
        assert self.router is not None
        return self.router.gossip_once()

    def stop(self) -> None:
        if self.router is not None:
            with contextlib.suppress(Exception):
                self.router.stop()
            self.router = None
        for worker in self.workers:
            with contextlib.suppress(Exception):
                worker.stop()

    def __enter__(self) -> "ThreadedClusterServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# spawn-context multi-process cluster
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker process needs — picklable for spawn."""

    host: str = "127.0.0.1"
    port: int = 0
    size: int = 256
    tile_size: int = 32
    days: int = 1
    seed: int = 7
    framing: str = "lines"
    max_workers: int = 4
    config: ServiceConfig | None = None


async def _cluster_worker_serve(spec: WorkerSpec, port_queue, stop_event):
    from repro.core.allocation import SingleModelStrategy
    from repro.core.engine import PredictionEngine
    from repro.modis.dataset import MODISDataset
    from repro.recommenders.momentum import MomentumRecommender

    dataset = MODISDataset.build(
        size=spec.size,
        tile_size=spec.tile_size,
        days=spec.days,
        seed=spec.seed,
    )
    grid = dataset.pyramid.grid

    def engine_factory():
        model = MomentumRecommender()
        return PredictionEngine(
            grid=grid,
            recommenders={model.name: model},
            strategy=SingleModelStrategy(model.name),
        )

    server = ForeCacheSocketServer.build(
        dataset.pyramid,
        spec.config or ServiceConfig(),
        engine_factory=engine_factory,
        max_workers=spec.max_workers,
        framing=spec.framing,
        host=spec.host,
        port=spec.port,
    )
    _, port = await server.start()
    port_queue.put(("ok", port))
    loop = asyncio.get_running_loop()
    try:
        await loop.run_in_executor(None, stop_event.wait)
    finally:
        await server.aclose()


def _cluster_worker_main(spec: WorkerSpec, port_queue, stop_event) -> None:
    """Module-level entry point — picklable for the spawn context."""
    try:
        asyncio.run(_cluster_worker_serve(spec, port_queue, stop_event))
    except Exception as exc:  # pragma: no cover - surfaced via queue
        with contextlib.suppress(Exception):
            port_queue.put(("error", f"{type(exc).__name__}: {exc}"))


class ProcessCluster:
    """N spawn-context worker processes plus an in-process router.

    The real multi-process deployment shape: every worker is its own
    Python process (own GIL, own cache, own service stack) serving a
    :class:`ForeCacheSocketServer`; the router runs in the calling
    process on a background thread.  ``kill_worker`` hard-kills a
    process mid-flight (failure injection); ``stop_worker`` asks it to
    exit cleanly.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        config: ServiceConfig | None = None,
        size: int = 256,
        tile_size: int = 32,
        days: int = 1,
        seed: int = 7,
        start_port: int = 0,
        host: str = "127.0.0.1",
        framing: str = "lines",
        max_workers: int = 4,
        payloads: tuple[str, ...] = ("json", "binary"),
        boot_timeout: float = 180.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.num_workers = workers
        self.config = config or ServiceConfig()
        self._size = size
        self._tile_size = tile_size
        self._days = days
        self._seed = seed
        self._start_port = start_port
        self._host = host
        self._framing = framing
        self._max_workers = max_workers
        self._payloads = payloads
        self._boot_timeout = boot_timeout
        self._ctx = multiprocessing.get_context("spawn")
        self.processes: list = []
        self._stop_events: list = []
        self.worker_ports: list[int] = []
        self.router: ThreadedRouter | None = None

    @property
    def address(self) -> tuple[str, int]:
        assert self.router is not None and self.router.address is not None
        return self.router.address

    def start(self) -> "ProcessCluster":
        try:
            self._boot()
        except BaseException:
            self.stop()
            raise
        return self

    def _boot(self) -> None:
        queues = []
        for index in range(self.num_workers):
            port = self._start_port + index if self._start_port else 0
            spec = WorkerSpec(
                host=self._host,
                port=port,
                size=self._size,
                tile_size=self._tile_size,
                days=self._days,
                seed=self._seed,
                framing=self._framing,
                max_workers=self._max_workers,
                config=self.config,
            )
            queue = self._ctx.Queue()
            stop_event = self._ctx.Event()
            process = self._ctx.Process(
                target=_cluster_worker_main,
                args=(spec, queue, stop_event),
                daemon=True,
                name=f"forecache-worker-{index}",
            )
            process.start()
            self.processes.append(process)
            self._stop_events.append(stop_event)
            queues.append(queue)
        for index, queue in enumerate(queues):
            try:
                status, value = queue.get(timeout=self._boot_timeout)
            except Exception as exc:
                raise RuntimeError(
                    f"worker {index} did not report a port within "
                    f"{self._boot_timeout}s"
                ) from exc
            if status != "ok":
                raise RuntimeError(
                    f"worker {index} failed to boot: {value}"
                )
            self.worker_ports.append(int(value))
        # Stable logical node names: the ring hashes the node id, so
        # deriving it from the (ephemeral) port would re-partition the
        # key space on every boot.  ``worker-<i>`` keeps the partition a
        # pure function of (worker count, ring_replicas, ring_seed).
        self.router = ThreadedRouter(
            {
                f"worker-{index}": (self._host, port)
                for index, port in enumerate(self.worker_ports)
            },
            self.config,
            host=self._host,
            framing=self._framing,
            payloads=self._payloads,
        )
        self.router.start()

    def kill_worker(self, index: int) -> None:
        """Hard-kill one worker process (mid-request failure injection)."""
        process = self.processes[index]
        process.kill()
        process.join(timeout=30)

    def stop_worker(self, index: int) -> None:
        """Ask one worker to shut down cleanly."""
        if self.processes[index].is_alive():
            self._stop_events[index].set()
        self.processes[index].join(timeout=30)

    def gossip_once(self) -> SharedHotspotRegistry:
        assert self.router is not None
        return self.router.gossip_once()

    def stop(self) -> None:
        if self.router is not None:
            with contextlib.suppress(Exception):
                self.router.stop()
            self.router = None
        for process, event in zip(self.processes, self._stop_events):
            # Never touch a dead worker's event: setting it blocks on
            # an ack from the (SIGKILLed) waiter that will never come.
            if process.is_alive():
                with contextlib.suppress(Exception):
                    event.set()
        for process in self.processes:
            process.join(timeout=10)
        for process in self.processes:
            if process.is_alive():
                process.kill()
                process.join(timeout=10)
        self.processes.clear()
        self._stop_events.clear()
        self.worker_ports.clear()

    def __enter__(self) -> "ProcessCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _snake_walk(grid, start: TileKey, steps: int) -> list[tuple[Move, TileKey]]:
    """Deterministic walk: zoom to the deepest level, then snake."""
    walk: list[tuple[Move, TileKey]] = []
    key = start
    while key.level < grid.deepest_level and len(walk) < steps:
        nxt = grid.apply(key, Move.ZOOM_IN_NW)
        if nxt is None:
            break
        walk.append((Move.ZOOM_IN_NW, nxt))
        key = nxt
    horizontal = Move.PAN_RIGHT
    while len(walk) < steps:
        nxt = grid.apply(key, horizontal)
        if nxt is None:
            horizontal = (
                Move.PAN_LEFT
                if horizontal == Move.PAN_RIGHT
                else Move.PAN_RIGHT
            )
            nxt = grid.apply(key, Move.PAN_DOWN) or grid.apply(
                key, Move.PAN_UP
            )
            if nxt is None:
                break
            walk.append((Move.PAN_DOWN, nxt))
        else:
            walk.append((horizontal, nxt))
        key = nxt
    return walk


def main(argv=None) -> int:
    from repro.middleware.config import CacheConfig, PrefetchPolicy
    from repro.middleware.net import SocketTransport
    from repro.modis.dataset import MODISDataset

    parser = argparse.ArgumentParser(
        prog="repro.middleware.cluster",
        description="Boot a local multi-process ForeCache cluster and "
        "replay a deterministic trace through the router.",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--start-port", type=int, default=0)
    parser.add_argument("--size", type=int, default=256)
    parser.add_argument("--tile-size", type=int, default=32)
    parser.add_argument("--sessions", type=int, default=2)
    parser.add_argument("--steps", type=int, default=12)
    parser.add_argument(
        "--payload", choices=("json", "binary"), default="json"
    )
    parser.add_argument(
        "--framing", choices=("lines", "length"), default="lines"
    )
    parser.add_argument("--push", action="store_true")
    parser.add_argument(
        "--kill-worker",
        action="store_true",
        help="hard-kill worker 0 halfway through the replay and assert "
        "typed worker_unavailable errors surface cleanly",
    )
    parser.add_argument("--backend-delay", type=float, default=0.0)
    args = parser.parse_args(argv)

    config = ServiceConfig(
        prefetch=PrefetchPolicy(push="on" if args.push else "off"),
        cache=CacheConfig(backend_delay_seconds=args.backend_delay),
    )
    dataset = MODISDataset.build(
        size=args.size, tile_size=args.tile_size, days=1, seed=7
    )
    grid = dataset.pyramid.grid
    started = time.perf_counter()
    served = 0
    failures = 0
    with ProcessCluster(
        args.workers,
        config=config,
        size=args.size,
        tile_size=args.tile_size,
        start_port=args.start_port,
        framing=args.framing,
    ) as cluster:
        host, port = cluster.address
        print(
            f"cluster up: {args.workers} worker(s) on ports "
            f"{cluster.worker_ports}, router on {host}:{port}"
        )
        transport = SocketTransport(
            host,
            port,
            framing=args.framing,
            push=args.push,
            payload=args.payload,
        )
        try:
            print(
                f"negotiated: push={transport.push_enabled} "
                f"payload={transport.payload}"
            )
            clients = []
            walks = []
            for index in range(args.sessions):
                clients.append(
                    transport.connect(session_id=f"cli-user-{index + 1}")
                )
                walks.append(
                    _snake_walk(grid, TileKey(0, 0, 0), args.steps)
                )
            total = sum(len(walk) for walk in walks)
            half = total // 2
            step = 0
            for position in range(max(len(w) for w in walks)):
                for client, walk in zip(clients, walks):
                    if position >= len(walk):
                        continue
                    if args.kill_worker and step == half:
                        print("killing worker 0 mid-replay")
                        cluster.kill_worker(0)
                    move, key = walk[position]
                    try:
                        client.request(move, key)
                        served += 1
                    except WorkerUnavailableError as exc:
                        failures += 1
                        print(f"typed worker error (retrying): {exc}")
                        client.request(move, key)
                        served += 1
                    step += 1
            for client in clients:
                client.close()
        finally:
            transport.close()
    elapsed = time.perf_counter() - started
    print(
        f"served {served} requests across {args.sessions} session(s) "
        f"in {elapsed:.1f}s ({failures} typed worker error(s))"
    )
    if args.kill_worker and args.workers > 1 and failures == 0:
        print("expected at least one typed worker_unavailable error")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
