"""Asyncio front end over the serving facade.

The cache manager and prefetch scheduler are thread-based; this module
wraps them for event-loop callers via ``loop.run_in_executor``:

    async with AsyncForeCacheService.build(pyramid, config) as service:
        session = await service.open_session(engine)
        response = await session.request(move, key)

Each blocking facade call runs on a small dedicated thread pool, so an
asyncio server (or many concurrent coroutines) never blocks its loop on
a DBMS query.  Per-session ordering still holds: the facade serializes a
session's requests on its session lock, and background prefetch work
keeps flowing on the scheduler's own pool.

Cancellation follows asyncio rules: cancelling a task blocked on
``await session.request(...)`` raises ``CancelledError`` in the task
immediately; the underlying cache/DBMS work runs to completion on its
worker thread (populating the cache for later requests), and the
session remains usable.
"""

from __future__ import annotations

import asyncio
import functools
from collections.abc import Hashable
from concurrent.futures import ThreadPoolExecutor

from repro.core.engine import PredictionEngine
from repro.middleware.config import ServiceConfig
from repro.middleware.latency import LatencyRecorder
from repro.middleware.protocol import SessionClosedError, SessionInfo
from repro.middleware.service import (
    ForeCacheService,
    PushHitResult,
    SessionHandle,
    TileResponse,
)
from repro.tiles.key import TileKey
from repro.tiles.tile import DataTile
from repro.tiles.moves import Move
from repro.tiles.pyramid import TilePyramid


class AsyncSessionHandle:
    """Awaitable face of one open session."""

    def __init__(
        self, service: "AsyncForeCacheService", handle: SessionHandle
    ) -> None:
        self._service = service
        self._handle = handle

    @property
    def session_id(self) -> Hashable:
        return self._handle.session_id

    @property
    def recorder(self) -> LatencyRecorder:
        return self._handle.recorder

    @property
    def closed(self) -> bool:
        return self._handle.closed

    @property
    def pyramid(self) -> TilePyramid:
        return self._handle.pyramid

    async def request(self, move: Move | None, key: TileKey) -> TileResponse:
        """Serve one tile request without blocking the event loop."""
        return await self._service._call(self._handle.request, move, key)

    async def info(self) -> SessionInfo:
        return await self._service._call(self._handle.info)

    async def close(self) -> None:
        await self._service._call(self._handle.close)

    async def __aenter__(self) -> "AsyncSessionHandle":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


class AsyncForeCacheService:
    """``ForeCacheService`` for event-loop callers."""

    def __init__(
        self, service: ForeCacheService, *, max_workers: int = 8
    ) -> None:
        self.service = service
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="forecache-aio"
        )
        # _closing gates new calls from the moment aclose begins;
        # _closed flips only once teardown fully completed (so a
        # cancelled aclose can be retried).
        self._closing = False
        self._closed = False

    @classmethod
    def build(
        cls,
        pyramid: TilePyramid,
        config: ServiceConfig | None = None,
        *,
        max_workers: int = 8,
        **service_kwargs,
    ) -> "AsyncForeCacheService":
        """Construct the facade and its async front end in one call."""
        return cls(
            ForeCacheService(pyramid, config, **service_kwargs),
            max_workers=max_workers,
        )

    @property
    def pyramid(self) -> TilePyramid:
        return self.service.pyramid

    @property
    def config(self) -> ServiceConfig:
        return self.service.config

    @property
    def closed(self) -> bool:
        """True once :meth:`aclose` has fully completed."""
        return self._closed

    @property
    def session_count(self) -> int:
        return self.service.session_count

    async def _call(self, fn, *args):
        if self._closing or self._closed:
            # The bridge pool is down (or going down); surface the same
            # typed error the facade raises for its own lifecycle, so
            # transports report it over the wire instead of the opaque
            # "cannot schedule new futures after shutdown" RuntimeError
            # a request racing aclose() would otherwise hit.
            raise SessionClosedError("service is closed")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, functools.partial(fn, *args)
        )

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    async def open_session(
        self,
        engine: PredictionEngine | None = None,
        session_id: Hashable | None = None,
        *,
        reset_engine: bool = False,
    ) -> AsyncSessionHandle:
        handle = await self._call(
            functools.partial(
                self.service.open_session,
                engine,
                session_id,
                reset_engine=reset_engine,
            )
        )
        return AsyncSessionHandle(self, handle)

    async def close_session(self, session_id: Hashable) -> None:
        await self._call(self.service.close_session, session_id)

    async def request(
        self, session_id: Hashable, move: Move | None, key: TileKey
    ) -> TileResponse:
        return await self._call(self.service.request, session_id, move, key)

    async def info(self, session_id: Hashable) -> SessionInfo:
        return await self._call(self.service.info, session_id)

    # ------------------------------------------------------------------
    # push support (socket-server hooks)
    # ------------------------------------------------------------------
    async def local_hit(
        self, session_id: Hashable, move: Move | None, key: TileKey
    ) -> PushHitResult:
        """Absorb a client-side push-cache hit off the event loop."""
        return await self._call(self.service.local_hit, session_id, move, key)

    async def pending_predictions(
        self, session_id: Hashable
    ) -> list[tuple[TileKey, str]]:
        """The session's latest attributed prediction list (ranked)."""
        return await self._call(self.service.pending_predictions, session_id)

    async def load_tile(self, key: TileKey, model: str = "push") -> DataTile:
        """Materialize one tile for streaming (push path)."""
        return await self._call(self.service.load_tile, key, model)

    @property
    def hotspot_registry(self):
        """The facade's shared popularity registry (None when off)."""
        return self.service.hotspot_registry

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def drain(self, timeout: float | None = None) -> bool:
        """Wait for outstanding background prefetch work."""
        return await self._call(self.service.drain, timeout)

    async def aclose(self) -> None:
        """Close the facade and stop the bridge thread pool.  Idempotent.

        The closed flag is only set once both the facade and the bridge
        pool are down, so a cancelled ``aclose`` (e.g. under
        ``asyncio.wait_for``) can be retried instead of silently leaking
        the worker threads.  Both steps run on the loop's *default*
        executor — idempotent, and safe to re-run even after the bridge
        pool itself is already shut — and off-loop, so joining worker
        threads never stalls the event loop behind a slow in-flight
        backend query.
        """
        if self._closed:
            return
        self._closing = True
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.service.close)
        await loop.run_in_executor(
            None, functools.partial(self._executor.shutdown, True)
        )
        self._closed = True

    async def __aenter__(self) -> "AsyncForeCacheService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
