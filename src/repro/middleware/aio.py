"""Asyncio front end over the serving facade — native where it counts.

The request path is asyncio-native: a cache **hit** is probed and
served on the event loop itself
(:meth:`~repro.cache.manager.CacheManager.try_fetch` — the cache's
striped locks are only held for dict operations, never across a
backend query), so the common case pays no thread hop at all.  Only
genuinely blocking work leaves the loop: a cache miss (the DBMS query
plus its observe/predict round runs as one unit on the bridge pool),
sync-mode prefetch cycles, and lifecycle joins.  The loop-side faces of
the shared core are :class:`~repro.cache.manager.AsyncCacheManager` and
:class:`~repro.middleware.scheduler.AsyncPrefetchScheduler`, both
exposed as attributes:

    async with AsyncForeCacheService.build(pyramid, config) as service:
        session = await service.open_session(engine)
        response = await session.request(move, key)

The threaded :class:`~repro.middleware.service.ForeCacheService` stays
the sync front end over the very same core — same cache, same
scheduler, same numerics — so sync and async callers compose and every
replay front end stays bit-identical.

Cancellation follows asyncio rules: cancelling a task blocked on
``await session.request(...)`` raises ``CancelledError`` in the task
immediately; underlying cache/DBMS work already started runs to
completion on its worker thread (populating the cache *and* feeding
the prediction engine for later requests), and the session remains
usable.  Hits served inline on the loop are atomic — they cannot be
interrupted mid-round.
"""

from __future__ import annotations

import asyncio
import functools
from collections.abc import Hashable
from concurrent.futures import ThreadPoolExecutor

from repro.cache.manager import AsyncCacheManager
from repro.core.engine import PredictionEngine
from repro.middleware.config import ServiceConfig
from repro.middleware.latency import LatencyRecorder
from repro.middleware.protocol import SessionClosedError, SessionInfo
from repro.middleware.scheduler import AsyncPrefetchScheduler
from repro.middleware.service import (
    ForeCacheService,
    PushHitResult,
    SessionHandle,
    TileResponse,
)
from repro.tiles.key import TileKey
from repro.tiles.tile import DataTile
from repro.tiles.moves import Move
from repro.tiles.pyramid import TilePyramid


class AsyncSessionHandle:
    """Awaitable face of one open session."""

    def __init__(
        self, service: "AsyncForeCacheService", handle: SessionHandle
    ) -> None:
        self._service = service
        self._handle = handle

    @property
    def session_id(self) -> Hashable:
        return self._handle.session_id

    @property
    def recorder(self) -> LatencyRecorder:
        return self._handle.recorder

    @property
    def closed(self) -> bool:
        return self._handle.closed

    @property
    def pyramid(self) -> TilePyramid:
        return self._handle.pyramid

    async def request(self, move: Move | None, key: TileKey) -> TileResponse:
        """Serve one tile request without blocking the event loop.

        Cache hits are answered inline on the loop (no thread hop);
        only misses travel to the bridge pool for the DBMS query.
        """
        return await self._service._request_record(
            self._handle._record, move, key
        )

    async def info(self) -> SessionInfo:
        self._service._check_open()
        return self._handle.info()

    async def close(self) -> None:
        # Lifecycle is native: closing deregisters the session under the
        # facade's locks — dict bookkeeping, never a backend query — so
        # it runs inline on the loop (the cluster router closes sessions
        # on every failover, making this a hot path).
        self._service._check_open()
        self._handle.close()

    async def __aenter__(self) -> "AsyncSessionHandle":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


class AsyncForeCacheService:
    """``ForeCacheService`` for event-loop callers."""

    def __init__(
        self, service: ForeCacheService, *, max_workers: int = 8
    ) -> None:
        self.service = service
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="forecache-aio"
        )
        #: Loop-side face of the shared cache: hits inline, misses via
        #: the bridge pool.
        self.async_cache = AsyncCacheManager(
            service.cache_manager, executor=self._executor
        )
        #: Loop-side face of the background scheduler (None in sync
        #: mode): schedule/cancel inline, drain/shutdown off-loop.
        self.async_scheduler = (
            AsyncPrefetchScheduler(service.scheduler, executor=self._executor)
            if service.scheduler is not None
            else None
        )
        # Sync-mode prefetch runs the whole cycle inside the request's
        # post-fetch half — that half must stay off the loop.  In
        # background mode (or with prefetch disabled) it is pure
        # bookkeeping and runs inline.
        policy = service.config.prefetch
        self._post_blocking = policy.enabled and not policy.background
        # _closing gates new calls from the moment aclose begins;
        # _closed flips only once teardown fully completed (so a
        # cancelled aclose can be retried).
        self._closing = False
        self._closed = False

    @classmethod
    def build(
        cls,
        pyramid: TilePyramid,
        config: ServiceConfig | None = None,
        *,
        max_workers: int = 8,
        **service_kwargs,
    ) -> "AsyncForeCacheService":
        """Construct the facade and its async front end in one call."""
        return cls(
            ForeCacheService(pyramid, config, **service_kwargs),
            max_workers=max_workers,
        )

    @property
    def pyramid(self) -> TilePyramid:
        return self.service.pyramid

    @property
    def config(self) -> ServiceConfig:
        return self.service.config

    @property
    def closed(self) -> bool:
        """True once :meth:`aclose` has fully completed."""
        return self._closed

    @property
    def session_count(self) -> int:
        return self.service.session_count

    def _check_open(self) -> None:
        if self._closing or self._closed:
            # The bridge pool is down (or going down); surface the same
            # typed error the facade raises for its own lifecycle, so
            # transports report it over the wire instead of the opaque
            # "cannot schedule new futures after shutdown" RuntimeError
            # a request racing aclose() would otherwise hit.
            raise SessionClosedError("service is closed")

    async def _call(self, fn, *args):
        self._check_open()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, functools.partial(fn, *args)
        )

    async def _request_record(self, record, move, key) -> TileResponse:
        """Serve one request for an already-resolved session record.

        The native path: the hit probe runs right here on the loop.  A
        miss delegates the *whole* request — DBMS fetch plus the
        observe/predict round — to the bridge pool as one unit, so
        cancellation semantics match the threaded front end exactly
        (started work runs to completion; nothing half-observes).
        """
        self._check_open()
        if record.closed:
            raise SessionClosedError(
                f"session {record.session_id!r} is closed",
                session_id=str(record.session_id),
            )
        outcome = self.async_cache.try_fetch(key)
        if outcome is None:
            return await self._call(self.service._request, record, move, key)
        if self._post_blocking:
            return await self._call(
                self.service._complete_request, record, move, key, outcome
            )
        return self.service._complete_request(record, move, key, outcome)

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    async def open_session(
        self,
        engine: PredictionEngine | None = None,
        session_id: Hashable | None = None,
        *,
        reset_engine: bool = False,
    ) -> AsyncSessionHandle:
        # Native, no executor hop: registering a session is dict
        # bookkeeping under the facade's locks (never a backend query),
        # and the cluster router re-opens sessions on every failover —
        # lifecycle is a hot path there.
        self._check_open()
        handle = self.service.open_session(
            engine, session_id, reset_engine=reset_engine
        )
        return AsyncSessionHandle(self, handle)

    async def close_session(self, session_id: Hashable) -> None:
        # Native for the same reason as open_session: deregistration +
        # scheduler cancel are inline bookkeeping.
        self._check_open()
        self.service.close_session(session_id)

    async def request(
        self, session_id: Hashable, move: Move | None, key: TileKey
    ) -> TileResponse:
        self._check_open()
        return await self._request_record(
            self.service._record(session_id), move, key
        )

    async def info(self, session_id: Hashable) -> SessionInfo:
        self._check_open()
        return self.service.info(session_id)

    # ------------------------------------------------------------------
    # push support (socket-server hooks)
    # ------------------------------------------------------------------
    async def local_hit(
        self, session_id: Hashable, move: Move | None, key: TileKey
    ) -> PushHitResult:
        """Absorb a client-side push-cache hit.

        No cache fetch is involved; the observe/predict round runs
        inline unless sync-mode prefetch makes it blocking.
        """
        if self._post_blocking:
            return await self._call(
                self.service.local_hit, session_id, move, key
            )
        self._check_open()
        return self.service.local_hit(session_id, move, key)

    async def pending_predictions(
        self, session_id: Hashable
    ) -> list[tuple[TileKey, str]]:
        """The session's latest attributed prediction list (ranked)."""
        self._check_open()
        return self.service.pending_predictions(session_id)

    async def load_tile(self, key: TileKey, model: str = "push") -> DataTile:
        """Materialize one tile for streaming (push path).

        Resident tiles return inline; only a real load leaves the loop.
        """
        self._check_open()
        return await self.async_cache.prefetch_one(key, model)

    @property
    def hotspot_registry(self):
        """The facade's shared popularity registry (None when off)."""
        return self.service.hotspot_registry

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def drain(self, timeout: float | None = None) -> bool:
        """Wait for outstanding background prefetch work."""
        self._check_open()
        if self.async_scheduler is None:
            return True
        return await self.async_scheduler.wait_idle(timeout)

    async def aclose(self) -> None:
        """Close the facade and stop the bridge thread pool.  Idempotent.

        The closed flag is only set once both the facade and the bridge
        pool are down, so a cancelled ``aclose`` (e.g. under
        ``asyncio.wait_for``) can be retried instead of silently leaking
        the worker threads.  Both steps run on the loop's *default*
        executor — idempotent, and safe to re-run even after the bridge
        pool itself is already shut — and off-loop, so joining worker
        threads never stalls the event loop behind a slow in-flight
        backend query.
        """
        if self._closed:
            return
        self._closing = True
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.service.close)
        await loop.run_in_executor(
            None, functools.partial(self._executor.shutdown, True)
        )
        self._closed = True

    async def __aenter__(self) -> "AsyncForeCacheService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
