"""Figure 12: average response time is linear in prefetch accuracy.

Paper fit: latency(ms) = 961.33 - 939.08 * accuracy, adjusted R^2
0.99985.  Our calibrated substrate should land near intercept 984
(the miss cost) and slope -(miss - hit) = -964.5, with R^2 ~ 1.
"""

from conftest import print_report

from repro.experiments.latency import linear_fit
from repro.experiments.report import Comparison, Table

import pytest

pytestmark = pytest.mark.bench


def test_figure12_latency_regression(context, latency_points, benchmark):
    points, _ = latency_points
    table = Table(
        ["model", "k", "accuracy", "avg_latency_ms"],
        title="Figure 12: latency vs accuracy",
    )
    for p in points:
        table.add_row(p.model, p.k, p.accuracy, p.average_latency_ms)

    slope, intercept, r2 = benchmark.pedantic(
        lambda: linear_fit(points), rounds=1, iterations=1
    )
    comparison = Comparison("Figure 12 — regression latency(ms) ~ accuracy")
    comparison.add("intercept (ms)", 961.33, intercept)
    comparison.add("slope (ms / accuracy)", -939.08, slope)
    comparison.add("adjusted R^2", 0.99985, r2)
    print_report(table, comparison)

    # The paper's headline: a strong linear relationship.
    assert r2 > 0.99
    # Intercept ~ the miss cost; slope ~ -(miss - hit).
    assert 900 < intercept < 1050
    assert -1050 < slope < -850
