"""Figure 10c: the full two-level engine vs its best components.

Shape to reproduce: the hybrid matches the best individual model in
each phase — AB-level accuracy in Navigation/Foraging, SB-level in
Sensemaking — instead of being dragged down by either.
"""

from conftest import print_report

from repro.experiments.runner import HYBRID_SIGNATURE, run_figure10c

import pytest

pytestmark = pytest.mark.bench


def test_figure10c_hybrid_vs_components(context, benchmark):
    def compute():
        return run_figure10c(context)

    tables = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_report(*tables)

    by_phase = {t.title.split("— ")[-1]: t for t in tables}
    sb_name = f"sb:{HYBRID_SIGNATURE}"

    nav = {r[0]: [float(v) for v in r[1:]] for r in by_phase["navigation"].rows}
    sense = {r[0]: [float(v) for v in r[1:]] for r in by_phase["sensemaking"].rows}
    overall = {r[0]: [float(v) for v in r[1:]] for r in by_phase["overall"].rows}

    # Hybrid ~ AB in navigation (within a few points at k=5).
    assert nav["hybrid"][4] >= nav["markov3"][4] - 0.05
    # Hybrid matches the better component in sensemaking at k=5.
    assert sense["hybrid"][4] >= min(sense[sb_name][4], sense["markov3"][4]) - 0.05
    # Overall, the hybrid is far above the weaker component and within
    # a whisker of the stronger one at the paper's headline k=5.
    assert overall["hybrid"][4] >= overall[sb_name][4]
    assert overall["hybrid"][4] >= overall["markov3"][4] - 0.03
