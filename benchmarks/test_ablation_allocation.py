"""Allocation-strategy ablation (Section 4.4 vs Section 5.4.3).

Compares the paper's initial per-phase split, the tuned final strategy,
and single-model degenerate strategies.  Shape to reproduce: the tuned
strategy is at least as good as the initial split, and mixing models
never falls below the weaker single model.
"""

from conftest import print_report

from repro.experiments.runner import run_allocation_ablation

import pytest

pytestmark = pytest.mark.bench


def test_ablation_allocation(context, benchmark):
    table = benchmark.pedantic(
        lambda: run_allocation_ablation(context, ks=(2, 4, 5, 8)),
        rounds=1,
        iterations=1,
    )
    print_report(table)

    series = {r[0]: [float(v) for v in r[1:]] for r in table.rows}
    mean = {name: sum(vals) / len(vals) for name, vals in series.items()}

    # Our tuned strategy beats the paper's sensemaking-to-SB variant
    # (on our traces AB also wins Sensemaking) and the per-phase split.
    assert mean["tuned(ab4+sb)"] >= mean["paper-final(sb-sense)"] - 0.005
    assert mean["tuned(ab4+sb)"] >= mean["per-phase-split"] - 0.01
    # Any two-model strategy beats the SB-only degenerate case.
    assert mean["tuned(ab4+sb)"] > mean["sb-only"]
    # And is within a whisker of the best single model (Figure 10c).
    best_single = max(mean["ab-only"], mean["sb-only"])
    assert mean["tuned(ab4+sb)"] >= best_single - 0.02
