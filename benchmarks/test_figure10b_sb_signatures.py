"""Figure 10b: the four tile signatures' SB accuracy, per phase.

Shape to reproduce: denseSIFT trails SIFT (it matches whole images, so
two different mountain ranges never look alike to it — Section 5.4.2).
The paper found SIFT best overall on real MODIS imagery; on our
synthetic world the value-statistics signatures are competitive (see
EXPERIMENTS.md for the documented deviation).
"""

from conftest import is_full_scale, print_report

from repro.experiments.accuracy import replay_engine
from repro.experiments.runner import run_figure10b

import pytest

pytestmark = pytest.mark.bench


def test_figure10b_sb_signatures(context, benchmark):
    tables = run_figure10b(context)
    print_report(*tables)

    overall = next(t for t in tables if t.title.endswith("overall"))
    series = {row[0]: [float(v) for v in row[1:]] for row in overall.rows}
    means = {name: sum(vals) / len(vals) for name, vals in series.items()}

    if is_full_scale(context):
        # SIFT provides the best overall accuracy among the signatures
        # (Section 5.4.2), and denseSIFT trails it.  Which signature
        # wins on a downscaled world is noise (few tiles, few traces),
        # so the ranking claims are full-scale-only.
        assert means["sb:sift"] >= max(means.values()) - 0.02
        assert means["sb:densesift"] < means["sb:sift"]
        # SIFT's edge is sharpest at small budgets.
        assert series["sb:sift"][0] == max(
            vals[0] for vals in series.values()
        )

    # All signatures do real work: better than chance at k=1 (~1/9).
    for name, values in series.items():
        assert values[0] > 1 / 9, name

    # Unit of work: one user's replay through the SIFT SB model.
    engine = context.sb_engine("sift")
    benchmark.pedantic(
        lambda: replay_engine(engine, context.study.by_user(1), ks=(5,)),
        rounds=1,
        iterations=1,
    )
