"""Figure 8: move and phase distributions per task.

Shapes to reproduce: zooming-in takes the largest share of moves in
every task; task 1 (US) has the most requests; task 3 (South America)
favors panning over zooming out; Foraging's share shrinks in tasks 2-3.
"""

from conftest import is_full_scale, print_report

from repro.experiments.runner import run_figure8
from repro.users.study import run_study

import pytest

pytestmark = pytest.mark.bench


def test_figure8_distributions(context, benchmark):
    move_table, phase_table, user_table = run_figure8(context)
    print_report(move_table, phase_table)

    rows = {int(r[0]): [float(v) for v in r[1:]] for r in move_table.rows}
    # Task 3 favors panning over zooming out (Section 5.3.4).
    pan3, _, zoom_out3, _ = rows[3]
    assert pan3 > zoom_out3
    if is_full_scale(context):
        # Zoom-in is the dominant move category for tasks 1 and 2
        # (paper: "participants spent the most time zooming in").
        for task_id in (1, 2):
            pan, zoom_in, zoom_out, _ = rows[task_id]
            assert zoom_in >= max(pan, zoom_out) * 0.75
        # Task 1 is the longest (paper: 35 vs 25 vs 17 requests).
        assert rows[1][3] >= rows[3][3]

    # Unit of work: regenerating one user's three traces.
    benchmark.pedantic(
        lambda: run_study(context.dataset, num_users=1, seed=99),
        rounds=1,
        iterations=1,
    )
