"""Multi-user serving throughput: inline vs. background prefetch.

The serving-layer claim made physical: when prefetch work runs on the
scheduler's worker pool instead of inside the request call, concurrent
sessions stop paying for each other's (and their own) prefetch queries,
so tail latency drops.  Both modes replay identical seeded random walks
over a shared cache with a real per-query backend delay; the benchmark
reports wall-clock p50/p95 request latency and throughput per mode and
asserts the background scheduler wins at the tail.

The same driver loop runs against both serving front ends — the legacy
``MultiUserServer`` adapter and the ``ForeCacheService`` facade's
session handles — which must serve identical request counts (the
adapter is a thin shim over the facade).
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.cache.manager import CacheManager
from repro.cache.tile_cache import TileCache
from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.middleware.config import PrefetchPolicy, ServiceConfig
from repro.middleware.latency import nearest_rank_percentile as percentile
from repro.middleware.multiuser import MultiUserServer
from repro.middleware.service import ForeCacheService
from repro.modis.dataset import MODISDataset
from repro.recommenders.momentum import MomentumRecommender

pytestmark = pytest.mark.bench

NUM_USERS = 4
STEPS_PER_USER = 30
#: Real seconds each backend tile query sleeps (an in-process stand-in
#: for the paper's ~1s SciDB miss, scaled down to keep the run short).
BACKEND_DELAY = 0.004
PREFETCH_K = 8
FRONTENDS = ("legacy", "facade")


def make_engine(grid) -> PredictionEngine:
    model = MomentumRecommender()
    return PredictionEngine(grid, {model.name: model}, SingleModelStrategy(model.name))


def open_frontend(pyramid, manager, mode: str, frontend: str):
    """Returns (request_fn(user_id, move, key), closeable front end)."""
    if frontend == "legacy":
        server = MultiUserServer(
            pyramid,
            prefetch_k=PREFETCH_K,
            cache_manager=manager,
            prefetch_mode=mode,
            prefetch_workers=NUM_USERS,
        )
        for user_id in range(1, NUM_USERS + 1):
            server.register_user(user_id, make_engine(pyramid.grid))
        return server.handle_request, server
    # No cache= here: the injected manager IS the cache, and the
    # service validates the budget against its real capacity.
    service = ForeCacheService(
        pyramid,
        ServiceConfig(
            prefetch=PrefetchPolicy(
                k=PREFETCH_K,
                mode=mode,
                workers=NUM_USERS,
                share_budget=True,
            ),
        ),
        cache_manager=manager,
    )
    handles = {
        user_id: service.open_session(
            make_engine(pyramid.grid), user_id, reset_engine=True
        )
        for user_id in range(1, NUM_USERS + 1)
    }
    return (
        lambda user_id, move, key: handles[user_id].request(move, key),
        service,
    )


def run_mode(
    dataset: MODISDataset, mode: str, frontend: str
) -> tuple[list[float], float]:
    """Drive NUM_USERS concurrent sessions; return (latencies, wall seconds)."""
    pyramid = dataset.pyramid
    manager = CacheManager(
        pyramid,
        TileCache(recent_capacity=16, prefetch_capacity=PREFETCH_K),
        backend_delay_seconds=BACKEND_DELAY,
    )
    latencies: list[float] = []
    lock = threading.Lock()
    request, server = open_frontend(pyramid, manager, mode, frontend)
    with server:
        user_ids = list(range(1, NUM_USERS + 1))

        def drive(user_id: int) -> None:
            # Identical walks across modes: the seed depends only on the user.
            rng = random.Random(1000 + user_id)
            key = pyramid.grid.root
            moves = [(None, key)]
            for _ in range(STEPS_PER_USER):
                move, key = rng.choice(pyramid.grid.available_moves(key))
                moves.append((move, key))
            mine: list[float] = []
            for move, target in moves:
                start = time.perf_counter()
                request(user_id, move, target)
                mine.append(time.perf_counter() - start)
            with lock:
                latencies.extend(mine)

        started = time.perf_counter()
        threads = [
            threading.Thread(target=drive, args=(user_id,))
            for user_id in user_ids
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        server.drain(timeout=30)
    return latencies, elapsed


@pytest.mark.parametrize("frontend", FRONTENDS)
def test_background_prefetch_beats_inline_p95(frontend):
    dataset = MODISDataset.build(size=256, tile_size=32, days=1, seed=3)
    results = {}
    for mode in ("sync", "background"):
        latencies, elapsed = run_mode(dataset, mode, frontend)
        results[mode] = {
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "requests": len(latencies),
            "rps": len(latencies) / elapsed,
        }

    print()
    for mode, row in results.items():
        print(
            f"{frontend:>7}/{mode:<10}: p50 {row['p50'] * 1e3:7.2f} ms   "
            f"p95 {row['p95'] * 1e3:7.2f} ms   "
            f"{row['rps']:7.1f} req/s   ({row['requests']} requests)"
        )

    assert results["sync"]["requests"] == results["background"]["requests"]
    assert (
        results["sync"]["requests"] == NUM_USERS * (STEPS_PER_USER + 1)
    )
    # The headline: moving prefetch off the request path cuts tail latency.
    assert results["background"]["p95"] < results["sync"]["p95"]
    # Throughput follows (reported above); allow slack for CI timing noise.
    assert results["background"]["rps"] > 0.8 * results["sync"]["rps"]
