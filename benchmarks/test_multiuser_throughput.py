"""Multi-user serving throughput: inline vs. background prefetch.

The serving-layer claim made physical: when prefetch work runs on the
scheduler's worker pool instead of inside the request call, concurrent
sessions stop paying for each other's (and their own) prefetch queries,
so tail latency drops.  Both modes replay identical seeded random walks
over a shared cache with a real per-query backend delay; the benchmark
reports wall-clock p50/p95 request latency and throughput per mode and
asserts the background scheduler wins at the tail.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.cache.manager import CacheManager
from repro.cache.tile_cache import TileCache
from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.middleware.multiuser import MultiUserServer
from repro.modis.dataset import MODISDataset
from repro.recommenders.momentum import MomentumRecommender

pytestmark = pytest.mark.bench

NUM_USERS = 4
STEPS_PER_USER = 30
#: Real seconds each backend tile query sleeps (an in-process stand-in
#: for the paper's ~1s SciDB miss, scaled down to keep the run short).
BACKEND_DELAY = 0.004
PREFETCH_K = 8


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def make_engine(grid) -> PredictionEngine:
    model = MomentumRecommender()
    return PredictionEngine(grid, {model.name: model}, SingleModelStrategy(model.name))


def run_mode(dataset: MODISDataset, mode: str) -> tuple[list[float], float]:
    """Drive NUM_USERS concurrent sessions; return (latencies, wall seconds)."""
    pyramid = dataset.pyramid
    manager = CacheManager(
        pyramid,
        TileCache(recent_capacity=16, prefetch_capacity=PREFETCH_K),
        backend_delay_seconds=BACKEND_DELAY,
    )
    latencies: list[float] = []
    lock = threading.Lock()
    with MultiUserServer(
        pyramid,
        prefetch_k=PREFETCH_K,
        cache_manager=manager,
        prefetch_mode=mode,
        prefetch_workers=NUM_USERS,
    ) as server:
        user_ids = list(range(1, NUM_USERS + 1))
        for user_id in user_ids:
            server.register_user(user_id, make_engine(pyramid.grid))

        def drive(user_id: int) -> None:
            # Identical walks across modes: the seed depends only on the user.
            rng = random.Random(1000 + user_id)
            key = pyramid.grid.root
            moves = [(None, key)]
            for _ in range(STEPS_PER_USER):
                move, key = rng.choice(pyramid.grid.available_moves(key))
                moves.append((move, key))
            mine: list[float] = []
            for move, target in moves:
                start = time.perf_counter()
                server.handle_request(user_id, move, target)
                mine.append(time.perf_counter() - start)
            with lock:
                latencies.extend(mine)

        started = time.perf_counter()
        threads = [
            threading.Thread(target=drive, args=(user_id,))
            for user_id in user_ids
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        server.drain(timeout=30)
    return latencies, elapsed


def test_background_prefetch_beats_inline_p95():
    dataset = MODISDataset.build(size=256, tile_size=32, days=1, seed=3)
    results = {}
    for mode in ("sync", "background"):
        latencies, elapsed = run_mode(dataset, mode)
        results[mode] = {
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "requests": len(latencies),
            "rps": len(latencies) / elapsed,
        }

    print()
    for mode, row in results.items():
        print(
            f"{mode:>10}: p50 {row['p50'] * 1e3:7.2f} ms   "
            f"p95 {row['p95'] * 1e3:7.2f} ms   "
            f"{row['rps']:7.1f} req/s   ({row['requests']} requests)"
        )

    assert results["sync"]["requests"] == results["background"]["requests"]
    # The headline: moving prefetch off the request path cuts tail latency.
    assert results["background"]["p95"] < results["sync"]["p95"]
    # Throughput follows (reported above); allow slack for CI timing noise.
    assert results["background"]["rps"] > 0.8 * results["sync"]["rps"]
