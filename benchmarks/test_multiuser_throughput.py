"""Multi-user serving throughput: inline vs. background prefetch.

The serving-layer claim made physical: when prefetch work runs on the
scheduler's worker pool instead of inside the request call, concurrent
sessions stop paying for each other's (and their own) prefetch queries,
so tail latency drops.  Both modes replay identical seeded random walks
over a shared cache with a real per-query backend delay; the benchmark
reports wall-clock p50/p95 request latency and throughput per mode and
asserts the background scheduler wins at the tail.

The same driver loop runs against both serving front ends — the legacy
``MultiUserServer`` adapter and the ``ForeCacheService`` facade's
session handles — which must serve identical request counts (the
adapter is a thin shim over the facade).

The stress scenario scales to 8–16 sessions over a sharded cache and
compares the scheduler's two admission disciplines: rank-aware fair
priority (the default) versus plain FIFO (the pre-priority baseline).
It asserts the completion-order guarantee — every session's rank-1
predicted tile completes before any session's rank-≥5 job, and no
low-rank job from a superseded generation ever completes — and that
priority admission's tail latency is no worse than FIFO's.
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.cache.manager import CacheManager
from repro.cache.tile_cache import TileCache
from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.middleware.config import PrefetchPolicy, ServiceConfig
from repro.middleware.latency import nearest_rank_percentile as percentile
from repro.middleware.multiuser import MultiUserServer
from repro.middleware.scheduler import CANCELLED, DONE, PrefetchScheduler
from repro.middleware.service import ForeCacheService
from repro.modis.dataset import MODISDataset
from repro.recommenders.momentum import MomentumRecommender
from repro.tiles.key import TileKey

pytestmark = pytest.mark.bench

NUM_USERS = 4
STEPS_PER_USER = 30
#: Real seconds each backend tile query sleeps (an in-process stand-in
#: for the paper's ~1s SciDB miss, scaled down to keep the run short).
BACKEND_DELAY = 0.004
PREFETCH_K = 8
FRONTENDS = ("legacy", "facade")
#: Session count for the admission-discipline stress scenario, clamped
#: to the 8–16 band (REPRO_USERS scales it inside that band).
STRESS_USERS = max(8, min(16, int(os.environ.get("REPRO_USERS", "12"))))
#: Shard count for the stress scenario's striped cache layers.
STRESS_SHARDS = 8


def make_engine(grid) -> PredictionEngine:
    model = MomentumRecommender()
    return PredictionEngine(grid, {model.name: model}, SingleModelStrategy(model.name))


def open_frontend(
    pyramid,
    manager,
    mode: str,
    frontend: str,
    num_users: int = NUM_USERS,
    admission: str = "priority",
    workers: int | None = None,
):
    """Returns (request_fn(user_id, move, key), closeable front end)."""
    workers = num_users if workers is None else workers
    if frontend == "legacy":
        server = MultiUserServer(
            pyramid,
            prefetch_k=PREFETCH_K,
            cache_manager=manager,
            prefetch_mode=mode,
            prefetch_workers=workers,
            prefetch_admission=admission,
        )
        for user_id in range(1, num_users + 1):
            server.register_user(user_id, make_engine(pyramid.grid))
        return server.handle_request, server
    # No cache= here: the injected manager IS the cache, and the
    # service validates the budget against its real capacity.
    service = ForeCacheService(
        pyramid,
        ServiceConfig(
            prefetch=PrefetchPolicy(
                k=PREFETCH_K,
                mode=mode,
                workers=workers,
                admission=admission,
                share_budget=True,
            ),
        ),
        cache_manager=manager,
    )
    handles = {
        user_id: service.open_session(
            make_engine(pyramid.grid), user_id, reset_engine=True
        )
        for user_id in range(1, num_users + 1)
    }
    return (
        lambda user_id, move, key: handles[user_id].request(move, key),
        service,
    )


def run_mode(
    dataset: MODISDataset,
    mode: str,
    frontend: str,
    num_users: int = NUM_USERS,
    admission: str = "priority",
    shards: int = 1,
    workers: int | None = None,
) -> tuple[list[float], float]:
    """Drive ``num_users`` concurrent sessions; return (latencies, wall seconds)."""
    pyramid = dataset.pyramid
    manager = CacheManager(
        pyramid,
        TileCache(
            recent_capacity=16, prefetch_capacity=PREFETCH_K, shards=shards
        ),
        backend_delay_seconds=BACKEND_DELAY,
        shards=shards,
    )
    latencies: list[float] = []
    lock = threading.Lock()
    request, server = open_frontend(
        pyramid, manager, mode, frontend, num_users, admission, workers
    )
    with server:
        user_ids = list(range(1, num_users + 1))

        def drive(user_id: int) -> None:
            # Identical walks across modes: the seed depends only on the user.
            rng = random.Random(1000 + user_id)
            key = pyramid.grid.root
            moves = [(None, key)]
            for _ in range(STEPS_PER_USER):
                move, key = rng.choice(pyramid.grid.available_moves(key))
                moves.append((move, key))
            mine: list[float] = []
            for move, target in moves:
                start = time.perf_counter()
                request(user_id, move, target)
                mine.append(time.perf_counter() - start)
            with lock:
                latencies.extend(mine)

        started = time.perf_counter()
        threads = [
            threading.Thread(target=drive, args=(user_id,))
            for user_id in user_ids
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        server.drain(timeout=30)
    return latencies, elapsed


@pytest.mark.parametrize("frontend", FRONTENDS)
def test_background_prefetch_beats_inline_p95(frontend):
    dataset = MODISDataset.build(size=256, tile_size=32, days=1, seed=3)
    results = {}
    for mode in ("sync", "background"):
        latencies, elapsed = run_mode(dataset, mode, frontend)
        results[mode] = {
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "requests": len(latencies),
            "rps": len(latencies) / elapsed,
        }

    print()
    for mode, row in results.items():
        print(
            f"{frontend:>7}/{mode:<10}: p50 {row['p50'] * 1e3:7.2f} ms   "
            f"p95 {row['p95'] * 1e3:7.2f} ms   "
            f"{row['rps']:7.1f} req/s   ({row['requests']} requests)"
        )

    assert results["sync"]["requests"] == results["background"]["requests"]
    assert (
        results["sync"]["requests"] == NUM_USERS * (STEPS_PER_USER + 1)
    )
    # The headline: moving prefetch off the request path cuts tail latency.
    assert results["background"]["p95"] < results["sync"]["p95"]
    # Throughput follows (reported above); allow slack for CI timing noise.
    assert results["background"]["rps"] > 0.8 * results["sync"]["rps"]


def test_stress_rank1_completes_before_stale_low_ranks():
    """8–16 sessions worth of queued rounds against one worker: pop
    order must honor rank across sessions, and superseded low-rank work
    must be dropped, never executed.

    The backend is gated so every round queues up before the worker
    drains anything — the worst case for FIFO, the designed case for
    rank-aware admission.
    """
    dataset = MODISDataset.build(size=256, tile_size=32, days=1, seed=3)
    pyramid = dataset.pyramid
    manager = CacheManager(
        pyramid,
        TileCache(
            recent_capacity=64,
            prefetch_capacity=PREFETCH_K,
            shards=STRESS_SHARDS,
        ),
        shards=STRESS_SHARDS,
    )
    gate_key = pyramid.grid.root
    started = threading.Event()
    release = threading.Event()
    original = manager._query_backend

    def gated(key):
        if key == gate_key:
            started.set()
            assert release.wait(30)
        return original(key)

    manager._query_backend = gated
    scheduler = PrefetchScheduler(manager, max_workers=1)
    try:
        scheduler.schedule([(gate_key, "m")], session_id="gate")
        assert started.wait(30)
        first_rounds = {
            s: scheduler.schedule(
                [
                    (TileKey(3, x, (s - 1) % 8), "m")
                    for x in range(PREFETCH_K)
                ],
                session_id=s,
            )
            for s in range(1, STRESS_USERS + 1)
        }
        # Half the sessions move on: their queued rounds go stale.
        superseded = list(range(1, STRESS_USERS // 2 + 1))
        fresh_rounds = {
            s: scheduler.schedule(
                [
                    (TileKey(2, x % 4, (s - 1) % 4), "m")
                    for x in range(PREFETCH_K)
                ],
                session_id=s,
            )
            for s in superseded
        }
        release.set()
        assert scheduler.wait_idle(60)

        stale_jobs = [
            job for s in superseded for job in first_rounds[s]
        ]
        live_jobs = [
            job
            for s, round_ in first_rounds.items()
            if s not in superseded
            for job in round_
        ] + [job for round_ in fresh_rounds.values() for job in round_]

        # Nothing is left pending; superseded rounds never executed.
        assert all(job.finished for job in stale_jobs + live_jobs)
        assert all(job.state == CANCELLED for job in stale_jobs)
        # Every session's top-ranked (rank-1) tile completed...
        rank1 = [job for job in live_jobs if job.rank == 0]
        assert all(job.state == DONE for job in rank1)
        # ...before any session's rank-≥5 job.
        low_rank_done = [
            job.finish_order
            for job in live_jobs
            if job.rank >= 4 and job.state == DONE
        ]
        assert low_rank_done, "expected some low-rank jobs to execute"
        assert max(j.finish_order for j in rank1) < min(low_rank_done)
        # And no stale low-rank job ever completed.
        assert not any(
            job.state == DONE for job in stale_jobs if job.rank >= 4
        )
    finally:
        release.set()
        scheduler.shutdown()


def test_stress_priority_admission_tail_no_worse_than_fifo():
    """The full 8–16-session random-walk stress over the sharded cache:
    rank-aware fair admission must serve a tail (p95) no worse than the
    FIFO baseline, with identical request counts.
    """
    dataset = MODISDataset.build(size=256, tile_size=32, days=1, seed=3)
    results = {}
    for admission in ("fifo", "priority"):
        latencies, elapsed = run_mode(
            dataset,
            "background",
            "facade",
            num_users=STRESS_USERS,
            admission=admission,
            shards=STRESS_SHARDS,
            # Scarce workers: the queue backs up, so the admission
            # discipline decides which tiles land in cache in time.
            workers=2,
        )
        results[admission] = {
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "requests": len(latencies),
            "rps": len(latencies) / elapsed,
        }

    print()
    for admission, row in results.items():
        print(
            f"{STRESS_USERS} users/{admission:<9}: "
            f"p50 {row['p50'] * 1e3:7.2f} ms   "
            f"p95 {row['p95'] * 1e3:7.2f} ms   "
            f"{row['rps']:7.1f} req/s   ({row['requests']} requests)"
        )

    assert results["priority"]["requests"] == results["fifo"]["requests"]
    assert (
        results["priority"]["requests"] == STRESS_USERS * (STEPS_PER_USER + 1)
    )
    # Rank-aware admission must not regress the tail (generous slack
    # for CI timing noise; typically it wins outright).
    assert results["priority"]["p95"] <= results["fifo"]["p95"] * 1.25
