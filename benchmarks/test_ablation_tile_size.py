"""Tile-size ablation (Section 2.3's future-work question).

Bigger tiles mean fewer tiles fit in a fixed-size cache (smaller
effective k) but each fetch moves more data; smaller tiles allow more
prefetch slots.  With a fixed memory budget, accuracy per budget should
favor smaller tiles, while per-tile fetch cost grows with tile size.
"""

from conftest import print_report

from repro.experiments.report import Table
from repro.modis.dataset import MODISDataset, NDSI_ATTRIBUTES

import pytest

pytestmark = pytest.mark.bench


def test_ablation_tile_size(benchmark):
    size = 256
    budget_bytes = 9 * (32 * 32 * len(NDSI_ATTRIBUTES) * 8)  # 9 tiles at 32px

    table = Table(
        ["tile_size", "levels", "total_tiles", "bytes_per_tile", "tiles_in_budget"],
        title="Ablation: tile size vs cache capacity (fixed memory budget)",
    )
    reports = {}
    for tile_size in (16, 32, 64):
        dataset = MODISDataset.build(
            size=size, tile_size=tile_size, days=1, seed=7
        )
        sample = dataset.pyramid.fetch_tile(
            dataset.pyramid.grid.root, charge=False
        )
        tiles_in_budget = budget_bytes // sample.nbytes
        reports[tile_size] = (
            dataset.num_levels,
            dataset.pyramid.grid.total_tiles(),
            sample.nbytes,
            tiles_in_budget,
        )
        table.add_row(tile_size, *reports[tile_size])
    print_report(table)

    # Halving the tile size adds a level and quadruples the tile count.
    assert reports[16][0] == reports[32][0] + 1 == reports[64][0] + 2
    # Smaller tiles -> more prefetch slots under the same memory budget.
    assert reports[16][3] > reports[32][3] > reports[64][3]
    # The k=9 guarantee needs 9 slots: only feasible at 16/32px here.
    assert reports[32][3] >= 9
    assert reports[64][3] < 9

    # Unit of work: building a small pyramid at the default tile size.
    benchmark.pedantic(
        lambda: MODISDataset.build(size=128, tile_size=32, days=1, seed=11),
        rounds=1,
        iterations=1,
    )
