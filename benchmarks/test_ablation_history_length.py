"""Section 5.4.2 ablation: Markov chain history length n = 2..10.

Shape to reproduce: n=2 is slightly worse; beyond n=3 the gains are
negligible — n=3 ("Markov3") is the efficient choice.
"""

from conftest import print_report

from repro.experiments.runner import run_history_ablation

import pytest

pytestmark = pytest.mark.bench


def test_ablation_history_length(context, benchmark):
    table = benchmark.pedantic(
        lambda: run_history_ablation(context, orders=(2, 3, 4, 6, 10), ks=(1, 2, 4)),
        rounds=1,
        iterations=1,
    )
    print_report(table)

    series = {int(r[0]): [float(v) for v in r[1:]] for r in table.rows}
    mean = {order: sum(vals) / len(vals) for order, vals in series.items()}
    # n=3 is at least as good as n=2.
    assert mean[3] >= mean[2] - 0.01
    # No improvement beyond n=3 (paper: "negligible improvements for
    # lengths beyond n=3"); very long orders may degrade slightly as
    # contexts get sparse.
    for order in (4, 6, 10):
        assert mean[order] <= mean[3] + 0.015
    assert abs(mean[4] - mean[3]) < 0.03
