"""Figure 9 / Section 5.3.5: the zoom-level sawtooth and model fit.

Shapes to reproduce: users alternate between coarse (Foraging) and
detailed (Sensemaking) strata — most users show the sawtooth in 2+
tasks — and nearly all requests fit the three-phase model (paper:
1333/1390 ≈ 96%).
"""

from conftest import is_full_scale, print_report

from repro.experiments.runner import run_figure9
from repro.phases.labeler import model_fit_fraction

import pytest

pytestmark = pytest.mark.bench


def test_figure9_zoom_trace(context, benchmark):
    table, comparison = run_figure9(context)
    print_report(table, comparison)

    if is_full_scale(context):
        sawtooth = comparison.rows[0][2]
        matched, total = sawtooth.split("/")
        # Paper: 16/18 users in 2+ tasks.  Our tasks resolve in fewer
        # descents (smaller pyramid), so the bar is proportionally lower.
        assert int(matched) >= int(total) * 0.45

    fitting = comparison.rows[1][2]
    fit_count, fit_total = (int(v) for v in fitting.split("/"))
    assert fit_count / fit_total > 0.9

    # The featured trace (user 2, task 2) itself descends to detail.
    levels = [int(row[1]) for row in table.rows]
    assert levels[0] == 0
    assert max(levels) >= context.dataset.num_levels - 2

    # Unit of work: the model-fit scan across the whole corpus.
    benchmark.pedantic(
        lambda: [
            model_fit_fraction(t, context.dataset.num_levels)
            for t in context.study.traces
        ],
        rounds=1,
        iterations=1,
    )
