"""Shared benchmark fixtures.

The experiment context (world, study, signatures) is built once per
session at the canonical study scale — 2048-cell raster, 7 zoom levels,
18 users.  Set ``REPRO_SIZE`` / ``REPRO_USERS`` to downscale for quicker
runs; every result keeps its shape, absolute trace counts shrink.

Each benchmark prints the rows/series the paper's table or figure
reports (captured with ``-s`` or in the benchmark summary), and times a
representative unit of work with pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.experiments.context import ExperimentContext
from repro.experiments.runner import latency_points as compute_latency_points


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """The full experiment context (memoized across the session)."""
    return ExperimentContext.default()


@pytest.fixture(scope="session")
def latency_points(context):
    """(points, accuracy results) shared by Figures 12 and 13."""
    return compute_latency_points(context)


def print_report(*artifacts) -> None:
    """Print report objects with spacing (shown with ``pytest -s``)."""
    for artifact in artifacts:
        print()
        print(artifact)


def is_full_scale(context: ExperimentContext) -> bool:
    """True when running at the canonical study scale.

    Some of the paper's qualitative shapes (trace-length ordering across
    tasks, the multi-descent sawtooth) only emerge at the full 2048-cell
    world where the tasks have their calibrated difficulty; downscaled
    runs check the machinery but skip those assertions.
    """
    pyramid = context.pyramid
    world_side = pyramid.tile_size * (2 ** (pyramid.num_levels - 1))
    return world_side >= 2048 and len(context.study.user_ids) >= 12
