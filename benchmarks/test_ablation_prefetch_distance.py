"""Prefetch-distance ablation (Section 5.2.2).

The paper found that predicting more than one move ahead "did not
actually improve accuracy" — fetching d=2 candidates spends budget on
tiles two moves away while the user's next request is always one move
away.  Shape to reproduce: d=2 accuracy <= d=1 accuracy at equal k.
"""

from conftest import print_report

from repro.experiments.runner import run_prefetch_distance_ablation

import pytest

pytestmark = pytest.mark.bench


def test_ablation_prefetch_distance(context, benchmark):
    table = benchmark.pedantic(
        lambda: run_prefetch_distance_ablation(context, ks=(4, 8)),
        rounds=1,
        iterations=1,
    )
    print_report(table)

    series = {int(r[0]): [float(v) for v in r[1:]] for r in table.rows}
    for i in range(len(series[1])):
        assert series[2][i] <= series[1][i] + 0.01
