"""Acceptance bench for progressive fidelity under overload.

The regime: four zero-think-time users hammer a starved middleware
cache (a handful of slots against a working set an order of magnitude
larger), so the offered request rate is far beyond what the backend
can absorb at hit latency — with ``fidelity="off"`` virtually every
request pays the ~50x miss penalty, which *is* the offered-load >= 2x
capacity collapse the shedding ladder exists for.

Two claims:

1. With ``fidelity="progressive"`` the p99 client-observed latency
   stays bounded near the hit latency — strictly better than
   ``fidelity="off"`` under the same load — because once the
   deterministic miss-streak signal arms, requests whose pyramid
   ancestor is resident are answered as reduced-fidelity carves
   instead of queueing on the backend.  Every response is still
   well-formed at *some* fidelity: the right key, the full tile shape,
   a fidelity in (0, 1].

2. The machinery is invisible when off: with the default
   ``fidelity="off"`` the momentum figure replay is bit-identical on
   all four front ends (server, service, async, socket) to the pinned
   pre-fidelity value.
"""

from __future__ import annotations

import pytest

from repro.core.allocation import SingleModelStrategy
from repro.core.engine import PredictionEngine
from repro.experiments.context import ExperimentContext
from repro.experiments.runner import REPLAY_FRONTENDS, replay_model_latency
from repro.middleware.config import CacheConfig, PrefetchPolicy, ServiceConfig
from repro.middleware.latency import LatencyRecorder
from repro.middleware.net import SocketTransport, ThreadedSocketServer
from repro.modis.dataset import MODISDataset
from repro.recommenders.base import PredictionContext, Recommender
from repro.tiles.key import TileKey

pytestmark = pytest.mark.bench

NUM_USERS = 4
K = 2
#: Children each user cycles through (under one level-1 anchor tile).
CHILD_CYCLE = 8
#: Full cycles per user: 15 * 8 children + 1 anchor = 121 requests per
#: user, so the handful of warm-up misses is well under 1% of the total
#: and the p99 genuinely reflects steady-state serving.
CYCLES = 15

#: Momentum LOO latency average at size=256/users=4, k=5 — pinned when
#: the figure suite first went green, must survive the fidelity ladder.
MOMENTUM_AVG_PIN = 0.22686750000000075


@pytest.fixture(scope="module")
def world() -> MODISDataset:
    # 256px world, 32px tiles: levels 0..3, 8 tiles per dim at level 3.
    return MODISDataset.build(size=256, tile_size=32, days=1, seed=7)


class TeleportBlindRecommender(Recommender):
    """Predicts nothing.

    The overload walk teleports between non-adjacent descendants, a
    pattern history-based recommenders cannot learn; modelling that as
    a null predictor keeps the replay fully deterministic (no stray
    prefetch hits resetting the miss-streak overload signal).
    """

    name = "blind"

    def predict(self, context: PredictionContext) -> list[TileKey]:
        return []


def engine_factory(pyramid):
    def factory() -> PredictionEngine:
        model = TeleportBlindRecommender()
        return PredictionEngine(
            pyramid.grid, {model.name: model}, SingleModelStrategy(model.name)
        )

    return factory


def overload_config(fidelity: str) -> ServiceConfig:
    return ServiceConfig(
        prefetch=PrefetchPolicy(
            k=K,
            fidelity=fidelity,
            # Two consecutive misses arm degraded serving — the replay
            # arms during warm-up and stays armed (degraded serves never
            # clear the streak; only a real cache hit does).
            shed_miss_streak=2,
            fidelity_reduction=4,
        ),
        # Starved on purpose: 4 recent slots + a k-sized prefetch region
        # against a 36-tile working set guarantees continuous eviction
        # churn — the collapse regime.
        cache=CacheConfig(recent_capacity=4, prefetch_capacity=K),
    )


def overload_walks(grid) -> list[list]:
    """One walk per user: a level-1 anchor, then cycles over 8 of its
    level-3 descendants.

    The anchor is each user's only *cacheable* fetch; every descendant
    sits two levels below it (within the reduction budget), so under
    progressive fidelity the steady state serves carved stand-ins with
    zero backend traffic — while under ``off`` the 32 distinct
    descendants thrash the starved cache and miss forever.
    """
    walks = []
    anchors = [(0, 0), (1, 0), (0, 1), (1, 1)]
    for ax, ay in anchors[:NUM_USERS]:
        anchor = TileKey(1, ax, ay)
        descendants = [
            TileKey(3, (ax << 2) + dx, (ay << 2) + dy)
            for dx in range(4)
            for dy in range(4)
        ][:CHILD_CYCLE]
        walk = [(None, anchor)]
        for _ in range(CYCLES):
            walk.extend((None, key) for key in descendants)
        walks.append(walk)
    return walks


def replay_concurrent(world, fidelity: str):
    """Round-robin the walks across concurrent socket sessions.

    Returns (recorder, fidelities, bad_responses, degraded_served):
    the client-observed recorder, the per-response fidelity trail, the
    count of malformed responses, and the server-side degraded-serve
    counter read before shutdown.
    """
    pyramid = world.pyramid
    recorder = LatencyRecorder()
    fidelities = []
    bad = 0
    walks = overload_walks(pyramid.grid)
    with ThreadedSocketServer(
        pyramid,
        overload_config(fidelity),
        engine_factory=engine_factory(pyramid),
    ) as server:
        with SocketTransport(*server.address, pyramid=pyramid) as transport:
            clients = [
                transport.connect(session_id=f"user-{i + 1}")
                for i in range(len(walks))
            ]
            cursors = [0] * len(walks)
            remaining = sum(len(walk) for walk in walks)
            while remaining:
                for index, walk in enumerate(walks):
                    if cursors[index] >= len(walk):
                        continue
                    move, key = walk[cursors[index]]
                    response = clients[index].handle_request(move, key)
                    recorder.record(response.latency_seconds, response.hit)
                    fidelities.append(response.fidelity)
                    if (
                        response.tile.key != key
                        or response.tile.shape != (32, 32)
                        or not 0.0 < response.fidelity <= 1.0
                    ):
                        bad += 1
                    cursors[index] += 1
                    remaining -= 1
            for client in clients:
                client.close()
        degraded = server.server.service.service.degraded_served
    return recorder, fidelities, bad, degraded


class TestOverloadShedding:
    def test_progressive_bounds_p99_under_overload(self, world):
        off, off_fidelities, off_bad, off_degraded = replay_concurrent(
            world, "off"
        )
        prog, prog_fidelities, prog_bad, _ = replay_concurrent(
            world, "progressive"
        )
        assert prog.count == off.count
        hit_latency = overload_config("off").build_latency_model()
        hit_seconds = hit_latency.response_seconds(True, 0.0)
        print(
            f"\noverload: off p99={off.percentile(0.99) * 1000:.1f}ms "
            f"avg={off.average_seconds * 1000:.1f}ms | "
            f"progressive p99={prog.percentile(0.99) * 1000:.1f}ms "
            f"avg={prog.average_seconds * 1000:.1f}ms "
            f"(hit={hit_seconds * 1000:.1f}ms)"
        )
        # Off mode collapses: the offered load is >= 2x what the backend
        # absorbs, so the typical response pays the miss penalty.
        assert off.percentile(0.99) > 2 * hit_seconds
        # Progressive keeps the tail bounded near hit latency, and is
        # strictly better than off at the same offered load.
        assert prog.percentile(0.99) < off.percentile(0.99)
        assert prog.percentile(0.99) <= 2 * hit_seconds
        assert prog.average_seconds < off.average_seconds
        # Every response well-formed at some fidelity, on both ladders.
        assert off_bad == 0 and prog_bad == 0
        # Off never degrades; progressive actually did.
        assert off_degraded == 0
        assert set(off_fidelities) == {1.0}
        assert min(prog_fidelities) < 1.0

    def test_progressive_sheds_backend_traffic(self, world):
        _, _, _, degraded = replay_concurrent(world, "progressive")
        total = sum(len(walk) for walk in overload_walks(world.pyramid.grid))
        # The overwhelming majority of requests were answered from
        # resident ancestors without touching the backend.
        assert degraded > total * 0.9


class TestFidelityOffFigureNumerics:
    @pytest.fixture(scope="class")
    def context(self) -> ExperimentContext:
        return ExperimentContext.build(size=256, num_users=4)

    @pytest.mark.parametrize("frontend", REPLAY_FRONTENDS)
    def test_momentum_average_is_bit_identical(self, context, frontend):
        recorder = replay_model_latency(
            context,
            lambda train: context.momentum_engine(train),
            k=5,
            frontend=frontend,
        )
        assert recorder.average_seconds == MOMENTUM_AVG_PIN
