"""Acceptance bench for the multi-process cluster: aggregate
throughput must scale from one worker to four.

The workers are real spawned processes, each paying a real (small)
backend delay per cache miss, so serving capacity is genuinely bounded
per process; eight concurrent client threads drive the router hard
enough that a single worker saturates.  Four workers split the
tile-key space via the consistent-hash ring and serve their partitions
in parallel — aggregate requests/second must strictly exceed the
1-worker figure on both the convergent and flash-crowd workloads.
"""

from __future__ import annotations

import itertools
import threading
import time

import pytest

from repro.middleware.cluster import ProcessCluster
from repro.middleware.config import CacheConfig, PrefetchPolicy, ServiceConfig
from repro.middleware.net import SocketTransport
from repro.modis.dataset import MODISDataset
from repro.users.convergent import convergent_walks
from repro.users.flashcrowd import flash_crowd_walks

pytestmark = pytest.mark.bench

NUM_CLIENTS = 8
REQUESTS_PER_CLIENT = 50
#: Real per-miss backend latency inside each worker process.  With the
#: recent cache starved to one slot misses are frequent, so a worker's
#: miss-serving ceiling is (bridge threads / delay) and adding workers
#: adds real capacity.  The clients negotiate binary payloads — with
#: JSON tiles the eight client threads' decode work (one GIL) becomes
#: the bottleneck and masks the cluster's parallelism entirely.
BACKEND_DELAY_SECONDS = 0.01

CONFIG = ServiceConfig(
    prefetch=PrefetchPolicy(enabled=False),
    cache=CacheConfig(
        recent_capacity=1, backend_delay_seconds=BACKEND_DELAY_SECONDS
    ),
)


@pytest.fixture(scope="module")
def walks():
    # Same 256px world the worker processes build (size/tile_size/seed
    # match ProcessCluster defaults), so the walks are valid tile keys.
    grid = MODISDataset.build(size=256, tile_size=32, days=1, seed=7).pyramid.grid
    return {
        "convergent": convergent_walks(
            grid, num_users=NUM_CLIENTS, leg=3, dwell=2
        ),
        "flash_crowd": flash_crowd_walks(
            grid, num_users=NUM_CLIENTS, bursts=2, wander=4, dwell=2, seed=7
        ),
    }


def client_requests(walk):
    """A fixed-length request stream cycling one walk.

    The wrap-around step sends no move (the jump back to the walk's
    start is not a legal pan), which the protocol treats like a
    session-opening request.
    """
    stream = []
    previous = None
    for move, key in itertools.islice(
        itertools.cycle(walk), REQUESTS_PER_CLIENT
    ):
        stream.append((None if previous is None else move, key))
        previous = key
    return stream


def aggregate_rps(workers: int, walks: list) -> float:
    """Total requests/second across NUM_CLIENTS threads, wall clock."""
    with ProcessCluster(workers=workers, config=CONFIG, max_workers=2) as cluster:
        host, port = cluster.address
        barrier = threading.Barrier(NUM_CLIENTS + 1)
        done = [0] * NUM_CLIENTS
        errors: list[BaseException] = []

        def drive(index: int) -> None:
            try:
                with SocketTransport(host, port, payload="binary") as transport:
                    client = transport.connect(session_id=f"user-{index}")
                    stream = client_requests(walks[index % len(walks)])
                    barrier.wait()
                    for move, key in stream:
                        client.request(move, key)
                        done[index] += 1
                    client.close()
            except BaseException as exc:  # surfaced after join
                errors.append(exc)
                barrier.abort()

        threads = [
            threading.Thread(target=drive, args=(i,), daemon=True)
            for i in range(NUM_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join(timeout=120)
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]
        total = sum(done)
        assert total == NUM_CLIENTS * REQUESTS_PER_CLIENT
        return total / elapsed


class TestClusterThroughputScaling:
    @pytest.mark.parametrize("workload", ("convergent", "flash_crowd"))
    def test_four_workers_beat_one(self, walks, workload):
        rps_1 = aggregate_rps(1, walks[workload])
        rps_4 = aggregate_rps(4, walks[workload])
        print(
            f"\n{workload}: 1-worker {rps_1:.0f} rps | "
            f"4-worker {rps_4:.0f} rps ({rps_4 / rps_1:.2f}x)"
        )
        assert rps_4 > rps_1
